"""Learned top-k MoE router (Shazeer et al., 2017 style).

Tokens are projected to ``num_experts`` scores, softmax-normalized, and the
top-k experts are selected greedily.  The router also produces:

- per-assignment *weights* (the selected probabilities), differentiable so
  the final output scaling trains the router;
- the auxiliary *load-balancing loss* (Switch Transformer form):
  ``num_experts * sum_e f_e * P_e`` with ``f_e`` the dispatched token
  fraction and ``P_e`` the mean router probability for expert ``e``;
- optionally a *router z-loss* penalizing large logits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autograd import getitem, mean, softmax, sum_
from repro.autograd.graph import host as graph_host
from repro.autograd.tensor import Tensor, is_inference
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.resilience import counters
from repro.utils.rng import RngLike, get_rng


@dataclass
class RoutingResult:
    """Output of a router forward pass over ``num_tokens`` tokens.

    Attributes:
        expert_indices: ``(num_tokens, top_k)`` int array of expert ids,
            ordered best-first.
        expert_weights: ``(num_tokens, top_k)`` Tensor of assignment
            probabilities (differentiable).
        scores: ``(num_tokens, num_experts)`` full softmax scores Tensor.
        load_balancing_loss: scalar Tensor (already scaled by the loss
            coefficient), or None when the coefficient is zero.
        z_loss: scalar Tensor or None.
    """

    expert_indices: np.ndarray
    expert_weights: Tensor
    scores: Tensor
    load_balancing_loss: Optional[Tensor]
    z_loss: Optional[Tensor]

    @property
    def aux_loss(self) -> Optional[Tensor]:
        """Sum of the enabled auxiliary losses."""
        losses = [l for l in (self.load_balancing_loss, self.z_loss) if l is not None]
        if not losses:
            return None
        total = losses[0]
        for l in losses[1:]:
            total = total + l
        return total


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Greedy top-k expert ids per row, best-first, deterministic ties.

    Ties break toward the lower expert id (stable), so routing is
    reproducible across runs.
    """
    num_experts = scores.shape[-1]
    if not 1 <= k <= num_experts:
        raise ValueError(f"top_k={k} out of range for {num_experts} experts")
    # argsort on (-score, id): stable lexicographic tie-break.
    order = (-scores).argsort(axis=-1, kind="stable")
    return order[..., :k]


def _lb_fractions(expert_indices: np.ndarray, num_experts: int) -> np.ndarray:
    """Dispatch fraction per expert, ``f_e`` — a host computation so a
    captured graph recomputes it from the step's live routing."""
    counts = np.bincount(expert_indices.reshape(-1), minlength=num_experts)
    f = counts.astype(np.float64) / max(expert_indices.size, 1)
    return f.astype(np.float32)


def load_balancing_loss(
    scores: Tensor, expert_indices: np.ndarray, num_experts: int
) -> Tensor:
    """Switch-Transformer auxiliary loss: ``E * sum_e f_e * P_e``.

    ``f_e`` (dispatch fractions) is treated as a constant; gradients flow
    through the mean probabilities ``P_e`` only, as in the reference
    implementations.
    """
    f = graph_host(_lb_fractions, expert_indices, num_experts)
    p = mean(scores, axis=0)  # (num_experts,)
    return sum_(p * f) * float(num_experts)


def _jitter_noise(rng, eps: float, shape, dtype) -> np.ndarray:
    """Multiplicative jitter draw — host-recorded so replays advance the
    router RNG stream exactly like eager steps do."""
    return rng.uniform(1.0 - eps, 1.0 + eps, size=shape).astype(dtype)


def _logits_finite(logits: np.ndarray) -> bool:
    return bool(np.isfinite(logits).all())


def router_z_loss(logits: Tensor) -> Tensor:
    """Mean squared log-partition-function (ST-MoE z-loss)."""
    # logsumexp via stable composition of autograd primitives.
    m = logits.max(axis=-1, keepdims=True)
    lse = (logits - m).exp().sum(axis=-1).log() + m.reshape((logits.shape[0],))
    return mean(lse * lse)


class Router(Module):
    """Learned linear router with softmax normalization and top-k selection.

    Args:
        hidden_size: input feature width.
        num_experts: number of experts to score.
        top_k: experts per token (1-4 typical; the paper uses 1).
        load_balance_coef: multiplier on the auxiliary balancing loss
            (0 disables).
        z_loss_coef: multiplier on the router z-loss (0 disables).
        jitter_eps: multiplicative input jitter amplitude during training
            (Switch uses 1e-2; 0 disables).
        normalize_weights: renormalize the selected top-k probabilities
            to sum to 1 per token (common for top-2 MoEs; irrelevant for
            top-1 where Switch uses the raw probability).
    """

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        top_k: int = 1,
        load_balance_coef: float = 0.01,
        z_loss_coef: float = 0.0,
        jitter_eps: float = 0.0,
        normalize_weights: bool = False,
        init_std: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if top_k < 1 or top_k > num_experts:
            raise ValueError(f"top_k={top_k} invalid for {num_experts} experts")
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.top_k = top_k
        self.load_balance_coef = load_balance_coef
        self.z_loss_coef = z_loss_coef
        self.jitter_eps = jitter_eps
        self.normalize_weights = normalize_weights
        self._rng = get_rng(rng)
        self.proj = Linear(hidden_size, num_experts, bias=False, init_std=init_std, rng=rng)

    def forward(self, x: Tensor) -> RoutingResult:
        """Route a flat batch of tokens ``x`` of shape (num_tokens, hidden)."""
        if x.ndim != 2:
            raise ValueError(f"router expects (tokens, hidden), got {x.shape}")
        if self.training and self.jitter_eps > 0 and not is_inference():
            noise = graph_host(
                _jitter_noise, self._rng, self.jitter_eps, x.shape, x.dtype
            )
            x = x * Tensor(noise)
        # Non-finite weights/inputs are handled by the fallback below, so
        # the projection is allowed to produce NaN/Inf without warning.
        with np.errstate(invalid="ignore", over="ignore"):
            logits = self.proj(x)
        # Guarded host check: a captured graph freezes this branch, so a
        # replay whose logits flip finiteness invalidates and recaptures.
        if not graph_host(_logits_finite, logits.data, guard=True):
            return self._uniform_fallback(x.shape[0], x.data.dtype)
        scores = softmax(logits, axis=-1)

        indices = graph_host(top_k_indices, scores.data, self.top_k)
        rows = np.arange(indices.shape[0])[:, None]
        weights = getitem(scores, (rows, indices))  # differentiable gather
        if self.normalize_weights and self.top_k > 1:
            weights = weights / sum_(weights, axis=-1, keepdims=True)

        lb = None
        zl = None
        if not is_inference():
            # Serving skips the auxiliary losses entirely: nothing trains,
            # and both reduce over the token batch, which would make the
            # (unused) result depend on decode-batch composition.
            if self.load_balance_coef > 0:
                lb = load_balancing_loss(scores, indices, self.num_experts) * float(
                    self.load_balance_coef
                )
            if self.z_loss_coef > 0:
                zl = router_z_loss(logits) * float(self.z_loss_coef)
        return RoutingResult(
            expert_indices=indices,
            expert_weights=weights,
            scores=scores,
            load_balancing_loss=lb,
            z_loss=zl,
        )

    def _uniform_fallback(self, num_tokens: int, dtype) -> RoutingResult:
        """Graceful degradation when router logits go non-finite.

        A poisoned projection (NaN/Inf logits) would otherwise propagate
        NaN through softmax into the topology build and the whole batch.
        Instead, tokens are spread round-robin across experts with
        constant ``1/num_experts`` weights — balanced, deterministic,
        and detached from the tape so no gradient trains the router from
        garbage.  The ``router_fallback`` counter records the event.
        """
        graph_host(counters.increment, "router_fallback")
        base = np.arange(num_tokens, dtype=np.int64)[:, None]
        offsets = np.arange(self.top_k, dtype=np.int64)[None, :]
        indices = (base + offsets) % self.num_experts
        uniform = 1.0 / self.num_experts
        weight_value = (
            1.0 / self.top_k
            if self.normalize_weights and self.top_k > 1
            else uniform
        )
        weights = Tensor(
            np.full((num_tokens, self.top_k), weight_value, dtype=dtype)
        )
        scores = Tensor(
            np.full((num_tokens, self.num_experts), uniform, dtype=dtype)
        )
        return RoutingResult(
            expert_indices=indices,
            expert_weights=weights,
            scores=scores,
            load_balancing_loss=None,
            z_loss=None,
        )

"""Alternative MoE routing algorithms (paper §7, "MoE Routing").

The paper positions dMoE as *complementary* to improved routing; these
implementations let the two be combined and compared:

- :class:`BaseLayerRouter` — BASE layers (Lewis et al., 2021): routing as
  a balanced linear assignment maximizing aggregate token-expert
  affinity; guaranteed no drops and perfect balance.
- :class:`SinkhornRouter` — the approximation of Clark et al. (2022):
  Sinkhorn-normalize the score matrix toward a balanced transport plan,
  then route greedily; balance is approximate, so it is typically paired
  with a capacity factor.
- :class:`HashRouter` — static hash-based assignment (Roller et al.,
  2021): no learned routing at all.
- :class:`ExpertChoiceRouter` — expert-choice routing (Zhou et al.,
  2022): each *expert* selects its top-``capacity`` tokens, guaranteeing
  balance but allowing a token to be chosen by several or zero experts.

All return the same :class:`~repro.moe.router.RoutingResult` contract as
the learned top-k router, so any of them can drive the dMoE layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.autograd import getitem, softmax
from repro.autograd.tensor import Tensor
from repro.moe.router import RoutingResult, load_balancing_loss
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.utils.rng import RngLike
from repro.utils.shapes import ceil_div


class BaseLayerRouter(Module):
    """BASE-layer routing: balanced linear assignment (Lewis et al. 2021).

    Tokens are assigned to experts so every expert receives an equal
    share (±1) while maximizing the total affinity, solved exactly with
    the Hungarian algorithm on a token x slot cost matrix.  Guaranteed
    dropless and perfectly balanced; cost is cubic in tokens, which is
    why Clark et al. (2022) sought the Sinkhorn approximation below.
    """

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        init_std: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.top_k = 1
        self.proj = Linear(
            hidden_size, num_experts, bias=False, init_std=init_std, rng=rng
        )

    def forward(self, x: Tensor) -> RoutingResult:
        if x.ndim != 2:
            raise ValueError(f"router expects (tokens, hidden), got {x.shape}")
        num_tokens = x.shape[0]
        logits = self.proj(x)
        scores = softmax(logits, axis=-1)

        # Expand experts into per-slot columns so assignment is balanced:
        # slot j serves expert j % num_experts.
        slots = ceil_div(num_tokens, self.num_experts) * self.num_experts
        slot_expert = np.arange(slots) % self.num_experts
        affinity = scores.data[:, slot_expert]  # (tokens, slots)
        rows, cols = linear_sum_assignment(-affinity)
        indices = slot_expert[cols][np.argsort(rows)][:, None].astype(np.int64)

        token_rows = np.arange(num_tokens)[:, None]
        weights = getitem(scores, (token_rows, indices))
        return RoutingResult(
            expert_indices=indices,
            expert_weights=weights,
            scores=scores,
            load_balancing_loss=None,  # balance is structural
            z_loss=None,
        )


def sinkhorn(scores: np.ndarray, iterations: int = 8, eps: float = 1e-9) -> np.ndarray:
    """Sinkhorn normalization toward a doubly-"stochastic" plan.

    Rows (tokens) normalize to 1; columns (experts) to tokens/experts —
    the balanced marginals of Clark et al. (2022).
    """
    plan = np.asarray(scores, dtype=np.float64).copy()
    if plan.ndim != 2:
        raise ValueError("sinkhorn expects a 2-D score matrix")
    num_tokens, num_experts = plan.shape
    col_target = num_tokens / num_experts
    for _ in range(iterations):
        plan /= plan.sum(axis=1, keepdims=True) + eps
        plan *= col_target / (plan.sum(axis=0, keepdims=True) + eps)
    return plan


class SinkhornRouter(Module):
    """Approximately balanced routing via Sinkhorn (Clark et al. 2022).

    Greedy top-1 on the Sinkhorn-normalized plan; the result is *close*
    to balanced but not guaranteed, so Clark et al. pair it with a
    capacity factor of 2 — or, here, with the dropless dMoE.
    """

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        iterations: int = 8,
        load_balance_coef: float = 0.0,
        init_std: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.top_k = 1
        self.iterations = iterations
        self.load_balance_coef = load_balance_coef
        self.proj = Linear(
            hidden_size, num_experts, bias=False, init_std=init_std, rng=rng
        )

    def forward(self, x: Tensor) -> RoutingResult:
        if x.ndim != 2:
            raise ValueError(f"router expects (tokens, hidden), got {x.shape}")
        logits = self.proj(x)
        scores = softmax(logits, axis=-1)
        plan = sinkhorn(scores.data, iterations=self.iterations)
        indices = plan.argmax(axis=1)[:, None].astype(np.int64)

        rows = np.arange(x.shape[0])[:, None]
        weights = getitem(scores, (rows, indices))
        lb = None
        if self.load_balance_coef > 0:
            lb = load_balancing_loss(scores, indices, self.num_experts) * float(
                self.load_balance_coef
            )
        return RoutingResult(
            expert_indices=indices,
            expert_weights=weights,
            scores=scores,
            load_balancing_loss=lb,
            z_loss=None,
        )


class HashRouter(Module):
    """Static hash routing (Roller et al. 2021): expert = hash(token id).

    Needs the raw token ids, so it consumes ``(features, token_ids)``;
    assignment weights are constant 1 (nothing to learn).  Balance
    depends on the token distribution — skewed unigrams give skewed
    loads, which is exactly the behaviour Clark et al. observed
    underperforming learned routing.
    """

    def __init__(self, num_experts: int, seed: int = 0) -> None:
        super().__init__()
        self.num_experts = num_experts
        self.top_k = 1
        self.seed = seed
        # A fixed random permutation-based hash: reproducible, well mixed.
        self._mult = 0x9E3779B97F4A7C15 ^ (seed * 0xBF58476D1CE4E5B9)

    def assign(self, token_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(token_ids, dtype=np.uint64).reshape(-1)
        mixed = ids * np.uint64(self._mult % 2**64)
        mixed ^= mixed >> np.uint64(31)
        return (mixed % np.uint64(self.num_experts)).astype(np.int64)

    def forward(self, x: Tensor, token_ids: np.ndarray) -> RoutingResult:
        if x.ndim != 2:
            raise ValueError(f"router expects (tokens, hidden), got {x.shape}")
        indices = self.assign(token_ids)[:, None]
        num_tokens = x.shape[0]
        if len(indices) != num_tokens:
            raise ValueError("token_ids must align with the token batch")
        weights = Tensor(np.ones((num_tokens, 1), dtype=x.dtype))
        scores = Tensor(
            np.full((num_tokens, self.num_experts), 1.0 / self.num_experts, dtype=x.dtype)
        )
        return RoutingResult(
            expert_indices=indices,
            expert_weights=weights,
            scores=scores,
            load_balancing_loss=None,
            z_loss=None,
        )


class ExpertChoiceRouter(Module):
    """Expert-choice routing (Zhou et al. 2022): experts pick tokens.

    Each expert selects its top ``capacity = tokens * factor /
    num_experts`` scoring tokens.  Perfectly balanced by construction,
    but a token can be selected zero times (dropped) or several times —
    the residual token-dropping the paper notes this method retains.

    The result uses a variable top-k encoding: ``expert_indices`` has one
    row per (token, selection) pair padded to the max selections.
    """

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        capacity_factor: float = 1.0,
        init_std: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.capacity_factor = capacity_factor
        self.proj = Linear(
            hidden_size, num_experts, bias=False, init_std=init_std, rng=rng
        )

    def select(self, x: Tensor):
        """Returns ``(chosen (num_experts, capacity) token ids, scores)``."""
        if x.ndim != 2:
            raise ValueError(f"router expects (tokens, hidden), got {x.shape}")
        num_tokens = x.shape[0]
        scores = softmax(self.proj(x), axis=-1)
        capacity = max(
            int(num_tokens * self.capacity_factor / self.num_experts), 1
        )
        # Expert e takes its top-capacity tokens by score column e.
        order = np.argsort(-scores.data, axis=0, kind="stable")
        chosen = order[:capacity].T.astype(np.int64)  # (experts, capacity)
        return chosen, scores

    def coverage(self, chosen: np.ndarray, num_tokens: int) -> np.ndarray:
        """Selections per token: 0 means dropped, >1 means duplicated."""
        return np.bincount(chosen.reshape(-1), minlength=num_tokens)

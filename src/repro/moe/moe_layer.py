"""Token-dropping MoE layer (GShard / Switch Transformer formulation).

This is the prevalent baseline of paper §2 / Figure 1: tokens are routed,
permuted into a fixed ``(num_experts, capacity)`` buffer (dropping the
overflow, padding the slack), experts run as one batched matrix
multiplication (Figure 3A), and results are combined scaled by router
probabilities.  Dropped tokens output zero and survive through the
residual connection.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import dataclasses

from repro.autograd import ACTIVATIONS
from repro.autograd.graph import host as graph_host
from repro.autograd.ops_fused import bias_gelu, fusion_enabled
from repro.autograd.tensor import Tensor, is_inference
from repro.moe.capacity import expert_capacity
from repro.moe.experts import ExpertWeights
from repro.moe.inference import moe_inference_forward
from repro.moe.permute import (
    DroppingPlan,
    dropping_gather,
    dropping_scatter,
    make_dropping_plan,
    plan_flats,
)
from repro.moe.router import Router, RoutingResult
from repro.nn.module import Module
from repro.observability.tracing import span
from repro.utils.rng import RngLike


def _dropping_plan_host(mod: "MoELayer", expert_indices: np.ndarray, capacity: int):
    """Dispatch-plan build as a :func:`repro.autograd.graph.host` record.

    Returns the plan *and* its cached flat index views so a captured
    graph registers the exact arrays ``dropping_gather`` / ``_scatter``
    consume.  Also refreshes the module's ``last_*`` introspection state,
    which replays would otherwise leave stale.
    """
    plan = make_dropping_plan(expert_indices, mod.num_experts, capacity)
    flat_tokens, flat_copies = plan_flats(plan)
    mod.last_plan = plan
    lr = mod.last_routing
    if lr is not None and lr.expert_indices is not expert_indices:
        mod.last_routing = dataclasses.replace(lr, expert_indices=expert_indices)
    return plan, flat_tokens, flat_copies


def _dynamic_capacity(mod: "DynamicCapacityMoELayer", expert_indices: np.ndarray):
    """Tutel-style no-drop capacity — guarded under capture: the frozen
    dispatch-buffer shapes are only valid while this value is stable, so
    a shifted maximum invalidates the graph (transparent recapture)."""
    counts = np.bincount(expert_indices.reshape(-1), minlength=mod.num_experts)
    capacity = max(int(counts.max()), 1)
    mod.last_dynamic_capacity = capacity
    return capacity


class MoELayer(Module):
    """Fixed-capacity-factor MoE layer over 2-layer MLP experts.

    Args:
        hidden_size / ffn_hidden_size: expert MLP dimensions.
        num_experts: experts in the layer (64 in the paper's models).
        capacity_factor: multiplier on the uniform share (paper §2.2);
            tokens beyond ``num_tokens/num_experts * capacity_factor`` per
            expert are dropped.
        top_k: experts per token.
        activation: expert nonlinearity.
    """

    def __init__(
        self,
        hidden_size: int,
        ffn_hidden_size: int,
        num_experts: int,
        capacity_factor: float = 1.0,
        top_k: int = 1,
        activation: str = "gelu",
        load_balance_coef: float = 0.01,
        z_loss_coef: float = 0.0,
        init_std: float = 0.02,
        output_scale_layers: int = 1,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.ffn_hidden_size = ffn_hidden_size
        self.num_experts = num_experts
        self.capacity_factor = capacity_factor
        self.top_k = top_k
        self.activation = activation
        self.router = Router(
            hidden_size,
            num_experts,
            top_k=top_k,
            load_balance_coef=load_balance_coef,
            z_loss_coef=z_loss_coef,
            init_std=init_std,
            rng=rng,
        )
        self.experts = ExpertWeights(
            num_experts,
            hidden_size,
            ffn_hidden_size,
            init_std=init_std,
            output_scale_layers=output_scale_layers,
            rng=rng,
        )
        self.last_plan: Optional[DroppingPlan] = None
        self.last_routing: Optional[RoutingResult] = None

    # ------------------------------------------------------------------
    def _capacity(self, num_tokens: int) -> int:
        return expert_capacity(
            num_tokens, self.num_experts, self.capacity_factor, self.top_k
        )

    def _compute_experts(self, dispatched: Tensor) -> Tensor:
        """Batched-matmul expert MLP over (num_experts, capacity, hidden)."""
        e = self.experts
        if fusion_enabled() and self.activation == "gelu":
            h = bias_gelu(
                dispatched @ e.w1,
                e.b1.reshape((self.num_experts, 1, e.ffn_hidden_size)),
            )
            return h @ e.w2 + e.b2.reshape((self.num_experts, 1, e.hidden_size))
        act = ACTIVATIONS[self.activation]
        h = dispatched @ e.w1 + e.b1.reshape((self.num_experts, 1, e.ffn_hidden_size))
        h = act(h)
        return h @ e.w2 + e.b2.reshape((self.num_experts, 1, e.hidden_size))

    def forward(self, x: Tensor) -> Tuple[Tensor, Optional[Tensor]]:
        """Apply the layer; returns ``(output, aux_loss)``.

        ``x`` may be ``(tokens, hidden)`` or ``(batch, seq, hidden)``; the
        output matches the input shape.
        """
        if is_inference():
            # Serving: dropless padding-free dispatch — capacity-based
            # dropping would tie a token's output to the batch around it
            # (see repro.moe.inference).
            return moe_inference_forward(self, x)
        orig_shape = x.shape
        if x.ndim == 3:
            x = x.reshape((orig_shape[0] * orig_shape[1], orig_shape[2]))
        num_tokens = x.shape[0]

        with span("moe"):
            with span("route"):
                routing = self.router(x)
            capacity = self._capacity(num_tokens)
            with span("permute"):
                plan, _, _ = graph_host(
                    _dropping_plan_host, self, routing.expert_indices, capacity
                )
                self.last_routing = routing
                dispatched = dropping_gather(x, plan)
            with span("experts"):
                expert_out = self._compute_experts(dispatched)
            with span("unpermute"):
                out = dropping_scatter(
                    expert_out, plan, routing.expert_weights
                )

        if len(orig_shape) == 3:
            out = out.reshape(orig_shape)
        return out, routing.aux_loss


class DynamicCapacityMoELayer(MoELayer):
    """Tutel-style dMoE baseline: dynamic capacity factor (Hwang et al. 2022).

    Before each forward pass the capacity is raised to the smallest value
    that drops no tokens, so quality matches the dropless formulation but
    every expert still computes (and stores activations for) the *maximum*
    group size — the padding overhead MegaBlocks removes (paper §6.1).
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs.pop("capacity_factor", None)
        super().__init__(*args, capacity_factor=1.0, **kwargs)
        self.last_dynamic_capacity: Optional[int] = None

    def forward(self, x: Tensor) -> Tuple[Tensor, Optional[Tensor]]:
        if is_inference():
            return moe_inference_forward(self, x)
        orig_shape = x.shape
        if x.ndim == 3:
            x = x.reshape((orig_shape[0] * orig_shape[1], orig_shape[2]))

        with span("moe"):
            with span("route"):
                routing = self.router(x)
            capacity = graph_host(
                _dynamic_capacity, self, routing.expert_indices, guard=True
            )
            with span("permute"):
                plan, _, _ = graph_host(
                    _dropping_plan_host, self, routing.expert_indices, capacity
                )
                if plan.num_dropped:
                    raise AssertionError(
                        "dynamic capacity must never drop tokens"
                    )
                self.last_routing = routing
                dispatched = dropping_gather(x, plan)
            with span("experts"):
                expert_out = self._compute_experts(dispatched)
            with span("unpermute"):
                out = dropping_scatter(
                    expert_out, plan, routing.expert_weights
                )

        if len(orig_shape) == 3:
            out = out.reshape(orig_shape)
        return out, routing.aux_loss

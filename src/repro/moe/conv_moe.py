"""Convolutional MoE layer via grouped convolutions (paper §2.3).

"For convolutional experts, the layers can be computed with grouped
convolutions" — the conv analogue of Figure 3A's batched matmul.  Routing
is per *sequence* (a feature map is dispatched whole, as in conv MoEs):

1. the router scores each sequence from its mean-pooled features;
2. sequences dispatch into a fixed ``(num_experts, capacity)`` buffer
   (dropping the overflow, exactly like the token-dropping MLP MoE);
3. the buffer is reshaped to ``(capacity, num_experts * channels, L)`` so
   one **grouped conv** with ``groups=num_experts`` runs every expert's
   filters on its own slice in a single call;
4. outputs scatter back scaled by router confidence.

This inherits all the capacity-factor pathologies of §2.2 — the layer
exists as the conv baseline, and its tests double as evidence that the
grouped-conv formulation equals the per-expert loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import ACTIVATIONS, gather_rows, getitem, scatter_rows, softmax
from repro.autograd.ops_conv import conv1d
from repro.autograd.tensor import Tensor
from repro.moe.capacity import expert_capacity
from repro.moe.permute import DroppingPlan, make_dropping_plan
from repro.moe.router import top_k_indices
from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike


class ConvExpertWeights(Module):
    """Stacked 2-layer conv experts: C -> hidden_channels -> C."""

    def __init__(
        self,
        num_experts: int,
        channels: int,
        hidden_channels: int,
        kernel_size: int = 3,
        init_std: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd ('same' padding)")
        self.num_experts = num_experts
        self.channels = channels
        self.hidden_channels = hidden_channels
        self.kernel_size = kernel_size
        # Grouped layout: expert e owns output channels
        # [e*hidden : (e+1)*hidden] of w1 and [e*C : (e+1)*C] of w2.
        self.w1 = Parameter(
            init.normal(
                (num_experts * hidden_channels, channels, kernel_size),
                init_std,
                rng,
            )
        )
        self.b1 = Parameter(init.zeros(num_experts * hidden_channels))
        self.w2 = Parameter(
            init.normal(
                (num_experts * channels, hidden_channels, kernel_size),
                init_std,
                rng,
            )
        )
        self.b2 = Parameter(init.zeros(num_experts * channels))


class ConvMoELayer(Module):
    """Sequence-routed mixture of convolutional experts.

    Args:
        channels: input/output channels per sequence.
        hidden_channels: expert bottleneck width.
        num_experts / capacity_factor / top_k: routing setup (sequences,
            not tokens, are the routed unit here).
    """

    def __init__(
        self,
        channels: int,
        hidden_channels: int,
        num_experts: int,
        kernel_size: int = 3,
        capacity_factor: float = 1.0,
        top_k: int = 1,
        activation: str = "gelu",
        init_std: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.num_experts = num_experts
        self.top_k = top_k
        self.capacity_factor = capacity_factor
        self.activation = activation
        self.kernel_size = kernel_size
        self.router_proj = Linear(
            channels, num_experts, bias=False, init_std=init_std, rng=rng
        )
        self.experts = ConvExpertWeights(
            num_experts, channels, hidden_channels, kernel_size, init_std, rng
        )
        self.last_plan: Optional[DroppingPlan] = None

    # ------------------------------------------------------------------
    def _route(self, x: Tensor):
        """Mean-pool over length, then score like the token router."""
        pooled = x.mean(axis=2)  # (B, C)
        scores = softmax(self.router_proj(pooled), axis=-1)
        indices = top_k_indices(scores.data, self.top_k)
        rows = np.arange(indices.shape[0])[:, None]
        weights = getitem(scores, (rows, indices))
        return indices, weights

    def _grouped_expert_conv(self, buf: Tensor) -> Tensor:
        """(E, cap, C, L) -> (E, cap, C, L) through both conv layers.

        The (E, cap) leading dims fold into channels so a single grouped
        conv per layer computes every expert in parallel (§2.3).
        """
        e = self.experts
        E, cap = self.num_experts, buf.shape[1]
        L = buf.shape[3]
        pad = self.kernel_size // 2
        # -> (cap, E*C, L): group g holds expert g's dispatched sequences.
        x = buf.transpose((1, 0, 2, 3)).reshape((cap, E * self.channels, L))
        h = conv1d(x, e.w1, e.b1, padding=pad, groups=E)
        h = ACTIVATIONS[self.activation](h)
        y = conv1d(h, e.w2, e.b2, padding=pad, groups=E)
        return y.reshape((cap, E, self.channels, L)).transpose((1, 0, 2, 3))

    def forward(self, x: Tensor) -> Tuple[Tensor, None]:
        """``x``: (batch, channels, length) -> same shape.

        Dropped sequences output zero (residual carries them), matching
        the token-dropping MLP formulation.
        """
        batch, channels, length = x.shape
        if channels != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {channels}")
        indices, weights = self._route(x)
        capacity = expert_capacity(
            batch, self.num_experts, self.capacity_factor, self.top_k
        )
        plan = make_dropping_plan(indices, self.num_experts, capacity)
        self.last_plan = plan

        flat = x.reshape((batch, channels * length))
        dispatched = gather_rows(flat, plan.dispatch_tokens.reshape(-1))
        buf = dispatched.reshape(
            (self.num_experts, capacity, channels, length)
        )
        out_buf = self._grouped_expert_conv(buf)

        flat_out = out_buf.reshape(
            (self.num_experts * capacity, channels * length)
        )
        slot_weights = gather_rows(
            weights.reshape((batch * self.top_k, 1)),
            plan.dispatch_copies.reshape(-1),
        )
        combined = scatter_rows(
            flat_out * slot_weights, plan.dispatch_tokens.reshape(-1), batch
        )
        return combined.reshape((batch, channels, length)), None

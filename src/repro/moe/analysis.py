"""Routing analysis: load balance and expert specialization.

The paper conjectures MoE gains come from "experts specializing to
different parts of the data distribution" (§2).  The synthetic Pile has
explicit domain labels, so specialization is directly measurable here:
this module computes the expert-domain co-occurrence, its mutual
information, and the balance statistics (dynamic capacity factor over
time) that feed the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


def expert_domain_counts(
    expert_indices: np.ndarray,
    domain_labels: np.ndarray,
    num_experts: int,
    num_domains: int,
) -> np.ndarray:
    """``counts[e, d]`` = routed copies of domain-``d`` tokens at expert ``e``.

    ``expert_indices`` is ``(tokens, top_k)``; ``domain_labels`` is one
    label per token (broadcast over the top-k copies).
    """
    idx = np.asarray(expert_indices)
    if idx.ndim == 1:
        idx = idx[:, None]
    labels = np.asarray(domain_labels).reshape(-1)
    if len(labels) != idx.shape[0]:
        raise ValueError("one domain label per token required")
    counts = np.zeros((num_experts, num_domains), dtype=np.int64)
    flat_e = idx.reshape(-1)
    flat_d = np.repeat(labels, idx.shape[1])
    np.add.at(counts, (flat_e, flat_d), 1)
    return counts


def mutual_information(counts: np.ndarray) -> float:
    """Mutual information (nats) of the expert/domain joint distribution.

    Zero when routing ignores domains; up to ``min(log E, log D)`` for a
    perfect expert-per-domain specialization.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return 0.0
    joint = counts / total
    pe = joint.sum(axis=1, keepdims=True)
    pd = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (pe * pd), 1.0)
        mi = float((joint * np.log(ratio)).sum())
    return max(mi, 0.0)


def specialization_score(counts: np.ndarray) -> float:
    """Normalized MI in [0, 1]: MI / log(min(num_experts, num_domains))."""
    e, d = counts.shape
    cap = np.log(min(e, d))
    if cap <= 0:
        return 0.0
    return mutual_information(counts) / cap


def dominant_domain_per_expert(counts: np.ndarray) -> np.ndarray:
    """The domain each expert serves most (argmax over its row)."""
    return np.asarray(counts).argmax(axis=1)


@dataclass
class BalanceTimeline:
    """Dynamic capacity factor statistics across training steps."""

    steps: np.ndarray
    dynamic_capacity_factors: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.dynamic_capacity_factors.mean())

    @property
    def peak(self) -> float:
        return float(self.dynamic_capacity_factors.max())

    def spikes(self, threshold: float) -> np.ndarray:
        """Steps whose dynamic factor exceeded ``threshold`` — the
        unpredictable spikes Hwang et al. (2022) report."""
        mask = self.dynamic_capacity_factors > threshold
        return self.steps[mask]


def balance_timeline(routing_stats: Sequence) -> BalanceTimeline:
    """Build a :class:`BalanceTimeline` from Trainer.routing_stats."""
    steps = np.array([s.step for s in routing_stats])
    cfs = np.array([s.max_dynamic_capacity_factor for s in routing_stats])
    return BalanceTimeline(steps=steps, dynamic_capacity_factors=cfs)

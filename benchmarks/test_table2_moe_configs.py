"""Table 2 — MoE model configurations (64 experts, top-1)."""

from repro.configs import TABLE2, TABLE2_EXPECTED, moe_train_flops

from harness import print_header


def _rows():
    return [
        (
            cfg.name,
            cfg.num_experts,
            cfg.top_k,
            cfg.num_parameters / 1e6,
            moe_train_flops(cfg.base, cfg.top_k, 1.0) / 1e9,
        )
        for cfg in TABLE2.values()
    ]


def test_table2_reproduction(benchmark):
    rows = benchmark(_rows)
    print_header("Table 2: MoE Model Configurations")
    print(f"{'MoE':12} {'experts':>8} {'top_k':>6} "
          f"{'Weights(M)':>11} {'paper':>7} {'GFLOPs':>8} {'paper':>6}")
    for (name, e, k, w, g), key in zip(rows, TABLE2_EXPECTED):
        pw, pg = TABLE2_EXPECTED[key]
        print(f"{name:12} {e:>8} {k:>6} {w:>11.1f} {pw:>7} {g:>8.1f} {pg:>6}")
        assert abs(w - pw) / pw < 0.005
        assert abs(g - pg) / pg < 0.005

"""Wall-clock microbenchmarks of the NumPy kernels themselves.

Unlike the figure benchmarks (which model the A100), these time the
library's actual kernels on this machine — the numbers downstream users
of the NumPy implementation experience.  The structural assertions check
that cost scales with *occupied* blocks, not with the dense grid: the
algorithmic property the whole paper rests on.
"""

import numpy as np
import pytest

from repro.sparse import Topology, dsd, random_block_sparse, sdd
from repro.utils.timing import Timer

BS = 16
HIDDEN = 64


def _diag_topology(num_experts, blocks_per_expert, ffn_blocks=4):
    return Topology.block_diagonal(
        np.full(num_experts, blocks_per_expert),
        np.full(num_experts, ffn_blocks),
        BS,
    )


def _operands(topo, rng):
    x = rng.standard_normal((topo.shape[0], HIDDEN)).astype(np.float32)
    w = rng.standard_normal((HIDDEN, topo.shape[1])).astype(np.float32)
    return x, w


class TestSddScaling:
    def test_sdd_8_experts(self, benchmark):
        rng = np.random.default_rng(0)
        topo = _diag_topology(8, 8)
        x, w = _operands(topo, rng)
        out = benchmark(lambda: sdd(x, w, topo))
        assert out.nnz_blocks == topo.nnz_blocks

    def test_sdd_64_experts_same_work(self, benchmark):
        """64 experts with 1 block each = same nnz as 8 experts with 8:
        cost tracks nnz, not the (64x bigger) dense grid."""
        rng = np.random.default_rng(0)
        topo = _diag_topology(64, 1)
        x, w = _operands(topo, rng)
        out = benchmark(lambda: sdd(x, w, topo))
        assert out.nnz_blocks == _diag_topology(8, 8).nnz_blocks

    def test_cost_independent_of_dense_grid(self, benchmark):
        """Direct timing comparison (one benchmark round wraps it all)."""
        benchmark.pedantic(self._compare_grids, rounds=1, iterations=1)

    @staticmethod
    def _compare_grids():
        rng = np.random.default_rng(0)
        few = _diag_topology(8, 8)
        many = _diag_topology(64, 1)
        assert few.nnz_blocks == many.nnz_blocks
        assert many.block_cols == 8 * few.block_cols  # much bigger grid

        x1, w1 = _operands(few, rng)
        x2, w2 = _operands(many, rng)
        sdd(x1, w1, few), sdd(x2, w2, many)  # warmup
        t1, t2 = Timer(), Timer()
        for _ in range(5):
            with t1:
                sdd(x1, w1, few)
            with t2:
                sdd(x2, w2, many)
        # Equal nonzero work: within 3x despite a 64x denser grid being
        # "virtually" present (generous bound for CPU timer noise).
        assert t2.mean < 3 * t1.mean + 1e-3


class TestDsdScaling:
    def test_dsd_forward(self, benchmark):
        rng = np.random.default_rng(0)
        topo = _diag_topology(8, 8)
        s = random_block_sparse(topo, rng, dtype=np.float32)
        b = rng.standard_normal((topo.shape[1], HIDDEN)).astype(np.float32)
        out = benchmark(lambda: dsd(s, b))
        assert out.shape == (topo.shape[0], HIDDEN)

    def test_dsd_transposed_via_index(self, benchmark):
        rng = np.random.default_rng(0)
        topo = _diag_topology(8, 8)
        s = random_block_sparse(topo, rng, dtype=np.float32)
        b = rng.standard_normal((topo.shape[0], HIDDEN)).astype(np.float32)
        out = benchmark(lambda: dsd(s, b, trans_s=True))
        assert out.shape == (topo.shape[1], HIDDEN)


class TestTopologyConstruction:
    def test_make_topology_warm_cache(self, benchmark):
        """Steady-state cost: repeated routing layouts hit the LRU cache,
        so the per-step metadata cost is one key build + dict lookup."""
        from repro.core import make_topology
        from repro.core.topology_builder import clear_topology_cache
        from repro.moe import make_padded_plan
        from repro.sparse import stats

        rng = np.random.default_rng(0)
        indices = rng.integers(0, 64, (8192, 1))
        plan = make_padded_plan(indices, 64, 128)
        clear_topology_cache()
        stats.reset()

        topo = benchmark(lambda: make_topology(plan, 2048))
        topo.validate()
        snap = stats.snapshot()["cache"]
        assert snap["misses"] == 1 and snap["hits"] >= 1
        print(f"\ntopology cache: {snap['hits']} hits / {snap['misses']} miss")

    def test_make_topology_cold(self, benchmark):
        """§5.2: even uncached, metadata construction must be cheap (it
        amortizes over six matrix products)."""
        from repro.moe import make_padded_plan
        from repro.sparse import Topology

        rng = np.random.default_rng(0)
        indices = rng.integers(0, 64, (8192, 1))
        plan = make_padded_plan(indices, 64, 128)

        topo = benchmark(
            lambda: Topology.block_diagonal(
                plan.blocks_per_expert, np.full(64, 2048 // 128), 128
            )
        )
        topo.validate()

"""§6.1's dense-baseline series: Megatron-LM sustained throughput.

"Megatron-LM sustains between 21% and 48% of the 2.5 petaFLOP peak
throughput of this 8-GPU system with efficiency increasing with model
size."  The modeled step times reproduce the monotone increase (at a
higher absolute band — the model idealizes overlap; see EXPERIMENTS.md).
"""

from repro.configs import TABLE1, TABLE3_MICRO_BATCH_SIZES as T3
from repro.configs.flops import transformer_train_flops
from repro.gpu.training_cost import dense_step_time

from harness import print_header

PEAK_FLOPS = 8 * 312e12  # the paper's "2.5 petaFLOP" 8xA100 system


def _series():
    rows = []
    for name in ("XS", "Small", "Medium", "Large", "XL"):
        cfg = TABLE1[name]
        mbs = T3["Megatron-LM"][cfg.name]
        step = dense_step_time(cfg, mbs)
        sustained = transformer_train_flops(cfg, 512) / step.total_s / PEAK_FLOPS
        rows.append((cfg.name, mbs, step.total_s, sustained))
    return rows


def test_sustained_throughput_series(benchmark):
    rows = benchmark(_series)
    print_header(
        "§6.1: Megatron-LM sustained fraction of 2.5 PFLOP peak (modeled)"
    )
    print(f"{'model':22} {'mbs':>4} {'step':>10} {'sustained':>10}  paper: 21-48%, increasing")
    fracs = []
    for name, mbs, step_s, frac in rows:
        fracs.append(frac)
        print(f"{name:22} {mbs:>4} {step_s * 1e3:>8.1f}ms {frac * 100:>9.1f}%")
    # Shape claim: efficiency increases with model size.
    assert all(a < b for a, b in zip(fracs, fracs[1:]))
    assert all(0.15 < f < 0.75 for f in fracs)

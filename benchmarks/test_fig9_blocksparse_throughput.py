"""Figure 9 — block-sparse matmul vs cuBLAS batched matmul.

The paper benchmarks the 18 problem configurations of MoE-XS/Small/Medium
training (6 ops x 3 models, uniform token distribution, Table 3 micro
batch sizes) and reports 98.6% +- 4% of cuBLAS throughput (min 91%, max
104%).  Here the comparison runs on the A100 performance model, and a
*wall-clock* companion benchmark times the actual NumPy kernels against
an equivalent batched-matmul formulation.
"""

import numpy as np

from repro.gpu.blocksparse import block_sparse_op_time, moe_layer_problems
from repro.gpu.device import A100_SXM4_80GB as A100
from repro.gpu.matmul import batched_matmul_time
from repro.gpu.tiling import MEGABLOCKS_TILE
from repro.sparse import Topology, dds, dispatch_mode, dsd, sdd, stats
from repro.sparse.matrix import BlockSparseMatrix
from repro.sparse.topology import INDEX_DTYPE
from repro.utils.timing import Timer

from harness import SMOKE, print_header

OPS = ["fwd1", "fwd2", "bwd2_data", "bwd2_weight", "bwd1_data", "bwd1_weight"]
MODELS = {"XS": (512, 64), "Small": (768, 32), "Medium": (1024, 8)}
LOCAL_EXPERTS = 8  # 64 experts, 8-way expert parallel


def _relative_throughputs():
    rows = []
    for name, (h, mbs) in MODELS.items():
        f = 4 * h
        tokens_per_expert = mbs * 128  # uniform distribution per §6.3
        for op in OPS:
            p = moe_layer_problems([tokens_per_expert] * LOCAL_EXPERTS, h, f, op)[0]
            t_bs = block_sparse_op_time(
                [tokens_per_expert] * LOCAL_EXPERTS, h, f, op, A100
            ).total_s
            t_cb = batched_matmul_time(
                LOCAL_EXPERTS, p.m, p.n, p.k, MEGABLOCKS_TILE, A100
            ).total_s
            rows.append((name, op, t_cb / t_bs))
    return rows


def test_fig9_modeled_relative_throughput(benchmark):
    rows = benchmark(_relative_throughputs)
    print_header(
        "Figure 9: Block-Sparse Throughput Relative to cuBLAS (modeled A100)"
    )
    for name, op, rel in rows:
        print(f"MoE-{name:7} {op:12} {rel * 100:6.1f}%")
    rels = np.array([r for _, _, r in rows])
    print(
        f"\nmean {rels.mean()*100:.1f}% (paper 98.6%)  "
        f"std {rels.std()*100:.1f}% (paper 4%)  "
        f"min {rels.min()*100:.1f}% (paper 91%)  "
        f"max {rels.max()*100:.1f}% (paper 104%)"
    )
    assert len(rels) == 18
    assert 0.95 <= rels.mean() <= 1.02
    assert rels.min() >= 0.88
    assert rels.max() <= 1.06


def test_fig9_wallclock_numpy_kernels(benchmark):
    """Wall-clock companion: our NumPy SDD vs numpy batched matmul on a
    uniform block-diagonal problem (same math, CPU substrate)."""
    E, bs = 8, 16
    tokens, hidden, ffn = 16 * bs, 64, 8 * bs
    topo = Topology.block_diagonal(
        np.full(E, tokens // bs), np.full(E, ffn // bs), bs
    )
    x = np.random.default_rng(0).standard_normal((E * tokens, hidden)).astype(np.float32)
    w = np.random.default_rng(1).standard_normal((hidden, E * ffn)).astype(np.float32)

    stats.reset()
    result = benchmark(lambda: sdd(x, w, topo))
    snap = stats.snapshot()["ops"].get("sdd", {})
    print(
        f"\nsdd dispatch on block-diagonal MoE shape: "
        f"{snap.get('grouped', 0)} grouped / {snap.get('blocked', 0)} per-block calls"
    )
    # The dMoE topology must be served by the grouped-GEMM fast path.
    assert snap.get("grouped", 0) >= 1 and snap.get("blocked", 0) == 0
    # Correctness spot check against per-expert dense matmuls.
    xe = x.reshape(E, tokens, hidden)
    we = w.reshape(hidden, E, ffn).transpose(1, 0, 2)
    want = np.matmul(xe, we)
    got = result.to_dense().reshape(E, tokens, E, ffn)
    for e in range(E):
        np.testing.assert_allclose(got[e, :, e], want[e], rtol=2e-2, atol=1e-3)


# ----------------------------------------------------------------------
# Grouped-GEMM fast path vs per-block dispatch, full six-op MoE suite
# ----------------------------------------------------------------------
def _dmoe_kernel_suite(topo, x, w1, w2, dy):
    """The six products of one dMoE layer step (forward + backward)."""
    h = sdd(x, w1, topo)                                   # fwd1
    y = dsd(h, w2)                                         # fwd2
    dh = sdd(dy, w2, topo, trans_b=True)                   # bwd2 data (SDD^T)
    dw2 = dsd(h, dy, trans_s=True)                         # bwd2 weight (DS^TD)
    dhm = BlockSparseMatrix(topo, dh.values)
    dx = dsd(dhm, w1, trans_b=True)                        # bwd1 data (DSD^T)
    dw1 = dds(x, dhm, trans_a=True)                        # bwd1 weight (DD^TS)
    return y, dx, dw1, dw2


def test_fig9_wallclock_grouped_vs_blocked(benchmark):
    """Measured speedup of the grouped-GEMM dispatch over the per-block
    path on the block-diagonal dMoE shapes, across all six ops."""
    if SMOKE:
        E, bs, tok_blocks, hidden, ffn_blocks, iters = 4, 8, 4, 32, 4, 2
    else:
        E, bs, tok_blocks, hidden, ffn_blocks, iters = 8, 16, 16, 128, 8, 10
    topo = Topology.block_diagonal(
        np.full(E, tok_blocks), np.full(E, ffn_blocks), bs
    )
    T, n = topo.shape
    rng = np.random.default_rng(0)
    x = rng.standard_normal((T, hidden)).astype(np.float32)
    w1 = rng.standard_normal((hidden, n)).astype(np.float32)
    w2 = rng.standard_normal((n, hidden)).astype(np.float32)
    dy = rng.standard_normal((T, hidden)).astype(np.float32)

    def run(mode):
        with dispatch_mode(mode):
            return _dmoe_kernel_suite(topo, x, w1, w2, dy)

    # Equivalence of the two paths on this exact problem first (float32
    # tolerance: the paths sum partial products in different orders; the
    # bit-level equivalence tests run in float64 in tests/sparse).
    got = run("grouped")
    want = run("blocked")
    for g, w in zip(got, want):
        np.testing.assert_allclose(g, w, rtol=2e-2, atol=1e-3)

    t_grouped, t_blocked = Timer(), Timer()
    stats.reset()
    for _ in range(iters):
        with t_blocked:
            run("blocked")
        with t_grouped:
            run("grouped")
    snap = stats.snapshot()

    benchmark.pedantic(lambda: run("grouped"), rounds=1, iterations=1)
    speedup = t_blocked.mean / t_grouped.mean
    print_header(
        "Figure 9 companion: grouped-GEMM vs per-block dispatch "
        f"(E={E}, bs={bs}, tokens={T}, ffn={ffn_blocks * bs})"
    )
    print(
        f"six-op suite: per-block {t_blocked.mean * 1e3:8.2f} ms   "
        f"grouped {t_grouped.mean * 1e3:8.2f} ms   speedup {speedup:.2f}x"
    )
    print(stats.summary())
    # Every op must have taken both paths exactly `iters` times.
    for op, counts in snap["ops"].items():
        assert counts["grouped"] == counts["blocked"], op
    # The fast path must actually be faster on the MoE shapes (generous
    # margin: CPU wall-clock under CI noise).
    assert speedup > 1.0

"""Figure 9 — block-sparse matmul vs cuBLAS batched matmul.

The paper benchmarks the 18 problem configurations of MoE-XS/Small/Medium
training (6 ops x 3 models, uniform token distribution, Table 3 micro
batch sizes) and reports 98.6% +- 4% of cuBLAS throughput (min 91%, max
104%).  Here the comparison runs on the A100 performance model, and a
*wall-clock* companion benchmark times the actual NumPy kernels against
an equivalent batched-matmul formulation.
"""

import numpy as np

from repro.gpu.blocksparse import block_sparse_op_time, moe_layer_problems
from repro.gpu.device import A100_SXM4_80GB as A100
from repro.gpu.matmul import batched_matmul_time
from repro.gpu.tiling import MEGABLOCKS_TILE
from repro.sparse import Topology, sdd
from repro.sparse.topology import INDEX_DTYPE

from harness import print_header

OPS = ["fwd1", "fwd2", "bwd2_data", "bwd2_weight", "bwd1_data", "bwd1_weight"]
MODELS = {"XS": (512, 64), "Small": (768, 32), "Medium": (1024, 8)}
LOCAL_EXPERTS = 8  # 64 experts, 8-way expert parallel


def _relative_throughputs():
    rows = []
    for name, (h, mbs) in MODELS.items():
        f = 4 * h
        tokens_per_expert = mbs * 128  # uniform distribution per §6.3
        for op in OPS:
            p = moe_layer_problems([tokens_per_expert] * LOCAL_EXPERTS, h, f, op)[0]
            t_bs = block_sparse_op_time(
                [tokens_per_expert] * LOCAL_EXPERTS, h, f, op, A100
            ).total_s
            t_cb = batched_matmul_time(
                LOCAL_EXPERTS, p.m, p.n, p.k, MEGABLOCKS_TILE, A100
            ).total_s
            rows.append((name, op, t_cb / t_bs))
    return rows


def test_fig9_modeled_relative_throughput(benchmark):
    rows = benchmark(_relative_throughputs)
    print_header(
        "Figure 9: Block-Sparse Throughput Relative to cuBLAS (modeled A100)"
    )
    for name, op, rel in rows:
        print(f"MoE-{name:7} {op:12} {rel * 100:6.1f}%")
    rels = np.array([r for _, _, r in rows])
    print(
        f"\nmean {rels.mean()*100:.1f}% (paper 98.6%)  "
        f"std {rels.std()*100:.1f}% (paper 4%)  "
        f"min {rels.min()*100:.1f}% (paper 91%)  "
        f"max {rels.max()*100:.1f}% (paper 104%)"
    )
    assert len(rels) == 18
    assert 0.95 <= rels.mean() <= 1.02
    assert rels.min() >= 0.88
    assert rels.max() <= 1.06


def test_fig9_wallclock_numpy_kernels(benchmark):
    """Wall-clock companion: our NumPy SDD vs numpy batched matmul on a
    uniform block-diagonal problem (same math, CPU substrate)."""
    E, bs = 8, 16
    tokens, hidden, ffn = 16 * bs, 64, 8 * bs
    topo = Topology.block_diagonal(
        np.full(E, tokens // bs), np.full(E, ffn // bs), bs
    )
    x = np.random.default_rng(0).standard_normal((E * tokens, hidden)).astype(np.float32)
    w = np.random.default_rng(1).standard_normal((hidden, E * ffn)).astype(np.float32)

    result = benchmark(lambda: sdd(x, w, topo))
    # Correctness spot check against per-expert dense matmuls.
    xe = x.reshape(E, tokens, hidden)
    we = w.reshape(hidden, E, ffn).transpose(1, 0, 2)
    want = np.matmul(xe, we)
    got = result.to_dense().reshape(E, tokens, E, ffn)
    for e in range(E):
        np.testing.assert_allclose(got[e, :, e], want[e], rtol=2e-2, atol=1e-3)

"""Benchmark-suite configuration: make `harness` importable, default
pytest-benchmark options sensible for model-level (not nanosecond) runs,
and provide the ``--smoke`` flag (equivalent to ``REPRO_BENCH_SMOKE=1``)
that shrinks every sweep to CI-canary sizes."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run the benchmarks at tiny smoke-test sizes",
    )


def pytest_configure(config):
    # Must happen before any test module imports `harness`, which reads
    # the environment at import time.
    if config.getoption("--smoke", default=False):
        os.environ["REPRO_BENCH_SMOKE"] = "1"

"""Benchmark-suite configuration: make `harness` importable and default
pytest-benchmark options sensible for model-level (not nanosecond) runs."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

"""Figure 2 — MoEs trained on the (synthetic) Pile with different
capacity factors.

The paper's finding: validation loss improves as capacity factor grows,
the dropless ("max"/dynamic) MoE is best, and avoiding token dropping
roughly doubles the MoE's quality gain over the dense baseline.  Here the
sweep runs scaled-down models on the synthetic Pile; the assertions are
on the ordering (more capacity -> no worse loss; dropless best among
MoEs; every MoE beats dense at matched step budget).
"""

import numpy as np

from harness import print_header, run_training

CAPACITY_FACTORS = [0.5, 1.0, 1.5, 2.0]
STEPS = 120


def _sweep():
    results = {}
    for cf in CAPACITY_FACTORS:
        hist = run_training("moe", "XS", capacity_factor=cf, steps=STEPS)
        results[f"MoE cf={cf}"] = hist.final_val_loss()
    results["dMoE (max)"] = run_training("dmoe", "XS", steps=STEPS).final_val_loss()
    results["Transformer (dense)"] = run_training(
        "dense", "XS", steps=STEPS
    ).final_val_loss()
    return results


def test_fig2_capacity_factor_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_header("Figure 2: Validation Loss vs Capacity Factor (scaled models)")
    for name, loss in results.items():
        print(f"{name:24} val_loss={loss:.4f}")

    moe_losses = [results[f"MoE cf={cf}"] for cf in CAPACITY_FACTORS]
    dropless = results["dMoE (max)"]
    dense = results["Transformer (dense)"]

    # Shape 1: heavy dropping (cf=0.5) is the worst MoE configuration.
    assert moe_losses[0] >= max(moe_losses[1:]) - 0.02
    # Shape 2: the dropless model matches or beats every fixed factor.
    assert dropless <= min(moe_losses) + 0.02
    # Shape 3: MoEs beat the dense model of the same dimensions
    # (more parameters at equal step budget).
    assert dropless < dense
    print(
        f"\ndropless gain over dense: {dense - dropless:.3f} nats; "
        f"cf=0.5 gain: {dense - moe_losses[0]:.3f} nats "
        f"(paper: dropless gain 1.73x the cf=1 gain at full scale)"
    )

"""Table 3 — largest micro_batch_size fitting in 80GB, per framework.

The memory model (repro.gpu.memory) computes per-GPU training state +
activation + loss-head bytes; the benchmark searches powers of two and
compares against every row of the paper's table.
"""

from repro.configs import TABLE1, TABLE2, TABLE3_MICRO_BATCH_SIZES
from repro.gpu.memory import (
    TUTEL_PEAK_CAPACITY_FACTOR,
    dense_memory,
    max_micro_batch,
    megablocks_expansion,
    moe_memory,
    tutel_expansion,
)

from harness import print_header


def _compute_all():
    rows = []
    for cfg in TABLE1.values():
        rows.append(
            ("Megatron-LM", cfg.name, max_micro_batch(lambda b: dense_memory(cfg, b)))
        )
    for name, cfg in TABLE2.items():
        rows.append(
            (
                "MegaBlocks",
                cfg.name,
                max_micro_batch(
                    lambda b: moe_memory(cfg, b, megablocks_expansion(cfg.top_k))
                ),
            )
        )
    for name, cfg in TABLE2.items():
        exp = tutel_expansion(cfg.top_k, TUTEL_PEAK_CAPACITY_FACTOR[name])
        rows.append(
            ("Tutel", cfg.name, max_micro_batch(lambda b: moe_memory(cfg, b, exp)))
        )
    return rows


def test_table3_reproduction(benchmark):
    rows = benchmark(_compute_all)
    print_header("Table 3: Micro Batch Sizes Used for Model Training")
    print(f"{'Framework':12} {'Model':22} {'model':>6} {'paper':>6}")
    for framework, model, got in rows:
        want = TABLE3_MICRO_BATCH_SIZES[framework][model]
        print(f"{framework:12} {model:22} {got:>6} {want:>6}")
        assert got == want


def test_tutel_memory_pressure_reduces_micro_batch(benchmark):
    """§6.1: padding memory forces Tutel to 2x/4x/8x smaller batches."""

    def factors():
        out = []
        for name, cfg in TABLE2.items():
            mb = TABLE3_MICRO_BATCH_SIZES["MegaBlocks"][cfg.name]
            tu = TABLE3_MICRO_BATCH_SIZES["Tutel"][cfg.name]
            out.append((name, mb // tu))
        return out

    got = benchmark(factors)
    print_header("§6.1: MegaBlocks/Tutel micro-batch ratio")
    for (name, ratio), want in zip(got, (2, 4, 8)):
        print(f"dMoE-{name:8} ratio={ratio} (paper {want})")
        assert ratio == want

"""Native-code lowering: generated-C execution vs NumPy replay vs eager.

``TrainerConfig(backend="cc")`` lowers each captured
:class:`repro.autograd.StepGraph` to one generated C translation unit
(fused elementwise chains, specialized kernels, static buffer plan) and
swaps the compiled segments into the replay schedule; the fused Adam
and grad-clip kernels ride along.  This benchmark trains the Fig-7
*Small* dMoE configuration three ways — eager steady-state (PR 3),
NumPy replay (PR 5), lowered (this PR) — and measures post-warmup step
latency with interleaved min-of-``REPS`` repeats (single-shot timings
on shared CI machines swing by 1.5x+; the minimum of interleaved
rounds is the stable dispatch-cost estimate).

Lowering must be free (bit-identical losses across all three paths),
broad (>= 90% of replayable records executed natively now that the
grouped-GEMM and MoE-dispatch kernels run native), and faster both
than the NumPy replay interpreter and than the previous lowering PR's
recorded step time.  Results land in ``BENCH_lower.json`` next to this
file.
"""

import gc
import json
import os
import time

from repro.autograd import lower
from repro.observability import registry
from repro.training import Adam, Trainer, TrainerConfig
from repro.utils.rng import seed_all

from harness import (
    GLOBAL_BATCH,
    MICRO_BATCH,
    SMOKE,
    build_model,
    pile_data,
    print_header,
)

WARMUP_STEPS = 2
TIMED_STEPS = 3 if SMOKE else 10
REPS = 6 if SMOKE else 3

#: PR 5's recorded replay-backend step time for this exact configuration
#: (Fig7-Small dMoE, smoke sizes) — frozen from benchmarks/BENCH_replay
#: .json as committed by the captured-step-graph PR, since that file is
#: rewritten whenever test_step_replay runs.  The acceptance bar for
#: this PR is >= 1.3x over it at smoke sizes.
PR5_REPLAY_SMOKE_S = 0.03332935633333278

#: This config's *replay* step time measured by this very benchmark
#: (interleaved run) in the same session that recorded the committed
#: ``BENCH_lower.json`` — i.e. at the machine speed where ``lowered``
#: cleared the bar against ``PR5_REPLAY_SMOKE_S``.  Used to
#: load-compensate the canary below: this container's wall clock drifts
#: +-30% with invisible host contention, so a raw comparison of one
#: run's lowered time against a constant recorded weeks earlier flakes.
REF_REPLAY_SMOKE_S = 0.029653243333310953

#: Smoke-mode canary floor for the *load-compensated* speedup vs the
#: frozen PR-5 number: ``speedup_vs_replay * (PR5 / REF_REPLAY)``.  Both
#: factors are drift-free — the first is an interleaved same-process
#: ratio (ambient load hits both paths equally), the second is a frozen
#: constant — so this gates lowered-dispatch regressions specifically
#: without flaking on machine speed.  A shared-compute (all-path)
#: regression is the PR-5 benchmark's job (test_step_replay), not this
#: canary's.
MIN_COMPENSATED_SPEEDUP_VS_PR5 = 1.3

#: The lowered (backend="cc") step time recorded by PR 6's committed
#: ``BENCH_lower.json`` — the same session that recorded
#: ``REF_REPLAY_SMOKE_S``, so the pair forms one more drift-free frozen
#: ratio.  PR 6 kept GEMM and routing on the host; the grouped-GEMM /
#: MoE-dispatch kernels must beat it.
PR6_LOWERED_SMOKE_S = 0.025465328333666548

#: Smoke-mode floor for the load-compensated speedup of this PR's
#: lowered path over PR 6's: ``speedup_vs_replay * (PR6_LOWERED /
#: REF_REPLAY)``.  Same construction as the PR-5 canary — an
#: interleaved same-process ratio times a frozen same-session ratio —
#: so host contention cancels out of both factors.
MIN_COMPENSATED_SPEEDUP_VS_PR6_CC = 1.15

#: Floor on the fraction of replayable records executed natively on the
#: bench workload.  With the grouped-GEMM, dense-GEMM, softmax, and
#: router kernels native, only the dispatch-plan builders and a handful
#: of scalar reductions stay host by design.
MIN_LOWER_COVERAGE = 0.90


def _build_trainer(backend: str) -> Trainer:
    seed_all(0)
    train, _ = pile_data()
    model = build_model("dmoe", "Small")
    cfg = TrainerConfig(
        global_batch=GLOBAL_BATCH,
        micro_batch=MICRO_BATCH,
        max_steps=WARMUP_STEPS + REPS * TIMED_STEPS,
        eval_every=0,
        log_every=0,
        steady_state=True,
        backend=backend,
    )
    return Trainer(model, train, config=cfg, optimizer=Adam(model.parameters(), lr=3e-3))


def _measure():
    """Interleaved comparison: warm all three trainers, then alternate
    timed rounds so OS/cache noise hits every path equally; report the
    min per path."""
    arms = [
        ("eager", _build_trainer("eager")),
        ("replay", _build_trainer("replay")),
        ("lowered", _build_trainer("cc")),
    ]
    losses = {name: [] for name, _ in arms}
    step = 0
    for _ in range(WARMUP_STEPS):
        for name, tr in arms:
            losses[name].append(tr.train_step(step))
        step += 1

    times = {name: [] for name, _ in arms}
    # Timed rounds run with the cyclic GC off: a collection landing
    # inside one round skews a single path by several ms, which
    # min-of-reps cannot cancel.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPS):
            for name, tr in arms:
                t0 = time.perf_counter()
                for k in range(TIMED_STEPS):
                    losses[name].append(tr.train_step(step + k))
                times[name].append((time.perf_counter() - t0) / TIMED_STEPS)
            step += TIMED_STEPS
    finally:
        if gc_was_enabled:
            gc.enable()
    return dict(arms), losses, times


def test_step_lower(benchmark):
    if not lower.cc_available():
        import pytest

        pytest.skip("no C toolchain in this environment")
    reg = registry()
    names = (
        "graph_lowered",
        "lower_compile_ms",
        "lower_cache_hits",
        "lower_segment_fallbacks",
        "lower_toolchain_fallbacks",
    )
    before = {k: reg.counter(k).value for k in names}

    def _measure_retrying():
        """One retry on a below-floor compensated ratio: a single noisy
        epoch on this container can depress even the interleaved min
        (observed <1x swings across back-to-back runs); a genuine
        dispatch regression fails both rounds."""
        result = _measure()
        if SMOKE:
            _, _, t = result
            ratio = min(t["replay"]) / min(t["lowered"])
            comp5 = ratio * (PR5_REPLAY_SMOKE_S / REF_REPLAY_SMOKE_S)
            comp6 = ratio * (PR6_LOWERED_SMOKE_S / REF_REPLAY_SMOKE_S)
            if (
                comp5 < MIN_COMPENSATED_SPEEDUP_VS_PR5
                or comp6 < MIN_COMPENSATED_SPEEDUP_VS_PR6_CC
            ):
                result = _measure()
        return result

    arms, losses, times = benchmark.pedantic(
        _measure_retrying, rounds=1, iterations=1
    )
    counts = {k: reg.counter(k).value - before[k] for k in names}

    eager_s = min(times["eager"])
    replay_s = min(times["replay"])
    lowered_s = min(times["lowered"])
    speedup_vs_replay = replay_s / lowered_s
    speedup_vs_eager = eager_s / lowered_s
    speedup_vs_pr5 = PR5_REPLAY_SMOKE_S / lowered_s
    compensated_vs_pr5 = speedup_vs_replay * (
        PR5_REPLAY_SMOKE_S / REF_REPLAY_SMOKE_S
    )
    compensated_vs_pr6_cc = speedup_vs_replay * (
        PR6_LOWERED_SMOKE_S / REF_REPLAY_SMOKE_S
    )

    plan = arms["lowered"].step_graph._lowered
    assert plan is not None, "backend='cc' did not attach a lowered plan"
    coverage = plan.coverage

    print_header("Native lowering: generated C vs NumPy replay vs eager")
    print(f"{'path':18} {'step time':>12}")
    print(f"{'eager (PR 3)':18} {eager_s * 1e3:>10.2f}ms")
    print(f"{'replay (PR 5)':18} {replay_s * 1e3:>10.2f}ms")
    print(f"{'lowered (cc)':18} {lowered_s * 1e3:>10.2f}ms")
    print(
        f"speedup = {speedup_vs_replay:.2f}x vs interleaved replay, "
        f"{speedup_vs_pr5:.2f}x vs PR 5's recorded "
        f"{PR5_REPLAY_SMOKE_S * 1e3:.2f}ms "
        f"({compensated_vs_pr5:.2f}x load-compensated, "
        f"{compensated_vs_pr6_cc:.2f}x vs PR 6's lowered path)"
    )
    print(
        f"coverage: {plan.records_lowered}/{plan.records_total} replay "
        f"records native ({coverage:.1%}), "
        f"{counts['lower_segment_fallbacks']} segment fallbacks, "
        f"{counts['lower_compile_ms']}ms compiling "
        f"({counts['lower_cache_hits']} cache hits)"
    )

    result = {
        "config": "Fig7-Small dMoE (steady_state=True)",
        "smoke": SMOKE,
        "warmup_steps": WARMUP_STEPS,
        "timed_steps": TIMED_STEPS,
        "reps": REPS,
        "eager_step_s": eager_s,
        "replay_step_s": replay_s,
        "lowered_step_s": lowered_s,
        "speedup_vs_replay": speedup_vs_replay,
        "speedup_vs_eager": speedup_vs_eager,
        "pr5_replay_step_s": PR5_REPLAY_SMOKE_S,
        "speedup_vs_pr5": speedup_vs_pr5,
        "speedup_vs_pr5_load_compensated": compensated_vs_pr5,
        "pr6_lowered_step_s": PR6_LOWERED_SMOKE_S,
        "speedup_vs_pr6_cc_load_compensated": compensated_vs_pr6_cc,
        "records_total": plan.records_total,
        "records_lowered": plan.records_lowered,
        "coverage": coverage,
        "graph_lowered": counts["graph_lowered"],
        "lower_compile_ms": counts["lower_compile_ms"],
        "lower_cache_hits": counts["lower_cache_hits"],
        "lower_segment_fallbacks": counts["lower_segment_fallbacks"],
        "lower_toolchain_fallbacks": counts["lower_toolchain_fallbacks"],
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_lower.json")
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    # Lowering must be free: identical trajectories on all three paths.
    assert losses["eager"] == losses["replay"], "replay changed the math"
    assert losses["eager"] == losses["lowered"], "lowering changed the math"
    # Broad: the bench workload keeps GEMM/routing on the host, but the
    # elementwise/LayerNorm/scatter mass must run native.
    assert coverage >= MIN_LOWER_COVERAGE, (
        f"only {coverage:.1%} of replay records lowered "
        f"(floor {MIN_LOWER_COVERAGE:.0%})"
    )
    # Stable: the per-segment guards must hold across routing drift
    # (flat/flat2 segments re-read live shapes instead of falling back).
    assert counts["lower_segment_fallbacks"] == 0
    assert counts["graph_lowered"] >= 1
    assert counts["lower_toolchain_fallbacks"] == 0

    # Direction always (interleaved, so load cancels); the canary floor
    # vs PR 5's frozen number only applies at the sizes it measured, and
    # is load-compensated (see REF_REPLAY_SMOKE_S) so host-contention
    # epochs on shared CI machines cannot flake it.
    assert speedup_vs_replay > 1.0, (
        f"lowered slower than replay ({speedup_vs_replay:.2f}x)"
    )
    if SMOKE:
        assert compensated_vs_pr5 >= MIN_COMPENSATED_SPEEDUP_VS_PR5, (
            f"lowered {compensated_vs_pr5:.2f}x (load-compensated) vs PR 5 "
            f"replay, below the {MIN_COMPENSATED_SPEEDUP_VS_PR5}x floor"
        )
        assert compensated_vs_pr6_cc >= MIN_COMPENSATED_SPEEDUP_VS_PR6_CC, (
            f"lowered {compensated_vs_pr6_cc:.2f}x (load-compensated) vs "
            f"PR 6's lowered path, below the "
            f"{MIN_COMPENSATED_SPEEDUP_VS_PR6_CC}x floor"
        )

"""Inference serving: KV-cached decode vs full-window re-forward.

The uncached baseline (``TransformerLM.generate``) re-runs the whole
window every token: O(window) matmul work per generated token, O(window²)
per sequence.  The KV-cached :class:`repro.serving.InferenceEngine` pays
that cost once at prefill and then decodes each token against the cached
K/V — O(window) *attention* but O(1) *projection* work per token.  With
a long prompt the gap is the window length itself, so the acceptance bar
is a >=5x decode-throughput speedup.

Measured with the interleaved min-of-``REPS`` protocol the other step
benchmarks use (ambient host load hits both paths equally; the minimum
of interleaved rounds is the stable estimate).  Also measured here:

- continuous-batching scheduler latency percentiles (TTFT / per-token /
  per-step p50/p95/p99) under a mixed-length request stream, straight
  from the PR-4 metrics registry;
- int8 expert-weight quantization: the weight-byte ratio and the
  perplexity delta vs fp32 on a held-out token stream.

Results land in ``BENCH_serving.json`` next to this file.
"""

import gc
import json
import os
import time

import numpy as np

from repro.core import dMoE
from repro.nn import TransformerLM
from repro.autograd.tensor import inference_mode
from repro.observability import registry
from repro.serving import (
    ContinuousBatchingScheduler,
    InferenceEngine,
    Request,
    attach_quantized_experts,
    detach_quantized_experts,
)
from repro.utils.rng import seed_all

from harness import SMOKE, print_header

VOCAB = 256
HIDDEN = 64
HEADS = 4
LAYERS = 2
EXPERTS = 8
MAX_SEQ = 160
PROMPT_LEN = 96
BATCH = 4
NEW_TOKENS = 40 if SMOKE else 96
REPS = 3

#: Acceptance floor on cached-vs-uncached decode tokens/s.  Interleaved
#: same-process ratio, so host contention cancels; the theoretical gap
#: at these sizes (window ~100-190 re-encoded per uncached token) is far
#: larger, leaving headroom for the per-step Python dispatch the cached
#: path pays.
MIN_DECODE_SPEEDUP = 5.0

SCHED_REQUESTS = 8 if SMOKE else 24
PPL_TOKENS = 8 if SMOKE else 32  # eval rows for the int8 perplexity delta


def _build_model() -> TransformerLM:
    seed_all(0)
    return TransformerLM(
        vocab_size=VOCAB,
        hidden_size=HIDDEN,
        num_layers=LAYERS,
        num_heads=HEADS,
        max_seq_len=MAX_SEQ,
        ffn_factory=lambda i: dMoE(
            HIDDEN, 4 * HIDDEN, EXPERTS, top_k=1, block_size=8, rng=7
        ),
        rng=0,
    )


def _measure_decode(model, prompts):
    """Interleaved timing of uncached vs cached greedy generation."""
    engine = InferenceEngine(model)
    # Warmup both paths (arena pools, BLAS thread spin-up).
    uncached_tokens = model.generate(prompts, NEW_TOKENS, temperature=0.0)
    cached_tokens = engine.generate(prompts, NEW_TOKENS, temperature=0.0)

    times = {"uncached": [], "cached": []}
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPS):
            t0 = time.perf_counter()
            model.generate(prompts, NEW_TOKENS, temperature=0.0)
            times["uncached"].append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            engine.generate(prompts, NEW_TOKENS, temperature=0.0)
            times["cached"].append(time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return uncached_tokens, cached_tokens, times


def _scheduler_latencies(model):
    """Drain a mixed-length stream; return percentile summaries."""
    engine = InferenceEngine(model)
    gen = np.random.default_rng(11)
    requests = [
        Request(
            prompt=gen.integers(0, VOCAB, size=int(gen.integers(8, PROMPT_LEN))),
            max_new_tokens=int(gen.integers(4, NEW_TOKENS + 1)),
            temperature=0.8,
            top_k=20,
            seed=500 + i,
        )
        for i in range(SCHED_REQUESTS)
    ]
    reg = registry()
    before = {
        name: reg.histogram(name).summary()["count"]
        for name in ("serving/ttft_ms", "serving/token_latency_ms", "serving/step_ms")
    }
    sched = ContinuousBatchingScheduler(engine, max_batch_size=BATCH)
    t0 = time.perf_counter()
    results = sched.run(requests)
    wall = time.perf_counter() - t0
    table = sched.latency_table()
    sched.close()

    assert len(results) == SCHED_REQUESTS
    summaries = {}
    for name in before:
        s = reg.histogram(name).summary()
        assert s["count"] > before[name], f"{name} never observed"
        summaries[name.split("/", 1)[1]] = {
            k: s[k] for k in ("count", "p50", "p95", "p99", "mean")
        }
    generated = sum(r.new_tokens for r in results)
    return results, summaries, generated / wall, sched.peak_concurrency, table


def _perplexity(model, eval_ids) -> float:
    """Mean next-token perplexity under the inference kernels (f64 NLL)."""
    with inference_mode():
        logits = model.forward(eval_ids).logits.data
    logits = logits[:, :-1, :].astype(np.float64)
    targets = eval_ids[:, 1:]
    logits -= logits.max(axis=-1, keepdims=True)
    logz = np.log(np.exp(logits).sum(axis=-1))
    tok_logp = np.take_along_axis(logits, targets[..., None], axis=-1)[..., 0]
    return float(np.exp(-(tok_logp - logz).mean()))


def test_serving(benchmark):
    model = _build_model()
    gen = np.random.default_rng(3)
    prompts = gen.integers(0, VOCAB, size=(BATCH, PROMPT_LEN))

    uncached_tokens, cached_tokens, times = benchmark.pedantic(
        lambda: _measure_decode(model, prompts), rounds=1, iterations=1
    )

    total_new = BATCH * NEW_TOKENS
    uncached_s = min(times["uncached"])
    cached_s = min(times["cached"])
    speedup = uncached_s / cached_s
    uncached_tps = total_new / uncached_s
    cached_tps = total_new / cached_s

    # The cached path must be a drop-in: same greedy tokens.
    assert np.array_equal(uncached_tokens, cached_tokens), (
        "cached generation diverged from the uncached baseline"
    )

    results, latencies, sched_tps, peak_conc, table = _scheduler_latencies(model)

    # int8 expert weights: byte ratio and perplexity delta vs fp32.
    eval_ids = gen.integers(0, VOCAB, size=(PPL_TOKENS, MAX_SEQ))
    ppl_fp32 = _perplexity(model, eval_ids)
    quant_report = attach_quantized_experts(model)
    ppl_int8 = _perplexity(model, eval_ids)
    detach_quantized_experts(model)

    print_header("Serving: KV-cached decode vs full-window re-forward")
    print(f"{'path':18} {'total':>10} {'tokens/s':>12}")
    print(f"{'uncached':18} {uncached_s * 1e3:>8.1f}ms {uncached_tps:>12.1f}")
    print(f"{'KV-cached':18} {cached_s * 1e3:>8.1f}ms {cached_tps:>12.1f}")
    print(
        f"decode speedup = {speedup:.2f}x "
        f"(B={BATCH}, prompt={PROMPT_LEN}, new={NEW_TOKENS}, window<={MAX_SEQ})"
    )
    print(f"scheduler: {sched_tps:.1f} tok/s, peak concurrency {peak_conc}")
    print(table)
    print(
        f"int8 experts: {quant_report['ratio']:.2f}x weight bytes "
        f"({quant_report['fp32_bytes']} -> {quant_report['int8_bytes']}), "
        f"ppl {ppl_fp32:.4f} -> {ppl_int8:.4f} "
        f"(delta {ppl_int8 - ppl_fp32:+.4f})"
    )

    result = {
        "config": (
            f"dMoE L{LAYERS} H{HIDDEN} E{EXPERTS} vocab{VOCAB} "
            f"max_seq{MAX_SEQ}"
        ),
        "smoke": SMOKE,
        "batch": BATCH,
        "prompt_len": PROMPT_LEN,
        "new_tokens": NEW_TOKENS,
        "reps": REPS,
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "uncached_tokens_per_s": uncached_tps,
        "cached_tokens_per_s": cached_tps,
        "decode_speedup": speedup,
        "min_decode_speedup": MIN_DECODE_SPEEDUP,
        "scheduler": {
            "requests": SCHED_REQUESTS,
            "max_batch_size": BATCH,
            "tokens_per_s": sched_tps,
            "peak_concurrency": peak_conc,
            "latency_ms": latencies,
        },
        "int8": {
            "ratio": quant_report["ratio"],
            "fp32_bytes": quant_report["fp32_bytes"],
            "int8_bytes": quant_report["int8_bytes"],
            "ppl_fp32": ppl_fp32,
            "ppl_int8": ppl_int8,
            "ppl_delta": ppl_int8 - ppl_fp32,
        },
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_serving.json")
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    # Interleaved same-process ratio — load-stable, so this gate is firm.
    assert speedup >= MIN_DECODE_SPEEDUP, (
        f"KV-cached decode only {speedup:.2f}x over the uncached baseline "
        f"(< {MIN_DECODE_SPEEDUP}x)"
    )
    # Mixed-length stream actually exercised continuous batching...
    assert peak_conc >= 2
    # ...and the percentile plumbing produced ordered, finite readings.
    for name, s in latencies.items():
        assert 0 <= s["p50"] <= s["p95"] <= s["p99"], name
    # int8: ~4x byte cut with a small quality delta at these sizes.
    assert quant_report["ratio"] > 3.5
    assert abs(ppl_int8 - ppl_fp32) / ppl_fp32 < 0.05

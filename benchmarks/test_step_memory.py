"""Steady-state training step: latency and allocation churn, fused+arena
vs. the reference path.

The zero-allocation step (``docs/performance.md``) combines the buffer
arena, in-place gradient accumulation, in-place Adam, and the fused
elementwise ops.  This benchmark trains the Fig-7 *Small* dMoE
configuration both ways and measures:

- **step latency** (wall clock, post-warmup), and
- **per-step allocation peak** via ``tracemalloc`` (new bytes allocated
  above the step's starting watermark — pooled arena memory, being
  reused, does not count).

Both runs must produce bit-identical losses (the optimization is free),
the steady-state step must be meaningfully faster, and its per-step
allocation peak must be an order of magnitude smaller.  Results land in
``BENCH_step.json`` next to this file.
"""

import gc
import json
import os
import time
import tracemalloc

import numpy as np

from repro.training import Adam, Trainer, TrainerConfig
from repro.utils.rng import seed_all

from harness import (
    GLOBAL_BATCH,
    MICRO_BATCH,
    SMOKE,
    build_model,
    pile_data,
    print_header,
)

WARMUP_STEPS = 2
TIMED_STEPS = 3 if SMOKE else 10
MEM_STEPS = 2 if SMOKE else 4

#: Full-run acceptance floors; smoke mode only sanity-checks direction
#: (tiny models + tracing overhead make tight bounds flaky in CI).
MIN_SPEEDUP = 1.3
MIN_ALLOC_REDUCTION = 10.0


def _build_trainer(steady: bool) -> Trainer:
    seed_all(0)
    train, _ = pile_data()
    model = build_model("dmoe", "Small")
    cfg = TrainerConfig(
        global_batch=GLOBAL_BATCH,
        micro_batch=MICRO_BATCH,
        max_steps=WARMUP_STEPS + TIMED_STEPS + MEM_STEPS,
        eval_every=0,
        log_every=0,
        steady_state=steady,
    )
    return Trainer(model, train, config=cfg, optimizer=Adam(model.parameters(), lr=3e-3))


def _measure(steady: bool):
    tr = _build_trainer(steady)
    step = 0
    losses = []
    for _ in range(WARMUP_STEPS):
        losses.append(tr.train_step(step))
        step += 1

    t0 = time.perf_counter()
    for _ in range(TIMED_STEPS):
        losses.append(tr.train_step(step))
        step += 1
    step_s = (time.perf_counter() - t0) / TIMED_STEPS

    # Allocation churn, measured separately (tracing slows the step).
    gc.collect()
    tracemalloc.start()
    peaks = []
    for _ in range(MEM_STEPS):
        tracemalloc.reset_peak()
        start_bytes, _ = tracemalloc.get_traced_memory()
        losses.append(tr.train_step(step))
        step += 1
        _, peak = tracemalloc.get_traced_memory()
        peaks.append(peak - start_bytes)
    tracemalloc.stop()
    return step_s, float(np.median(peaks)), losses


def test_step_latency_and_allocations(benchmark):
    ref_s, ref_bytes, ref_losses = benchmark.pedantic(
        lambda: _measure(False), rounds=1, iterations=1
    )
    fast_s, fast_bytes, fast_losses = _measure(True)

    speedup = ref_s / fast_s
    alloc_reduction = ref_bytes / max(fast_bytes, 1.0)

    print_header("Steady-state step: fused + arena vs reference")
    print(f"{'path':18} {'step time':>12} {'alloc peak/step':>16}")
    print(f"{'reference':18} {ref_s * 1e3:>10.1f}ms {ref_bytes / 1e6:>14.2f}MB")
    print(f"{'steady-state':18} {fast_s * 1e3:>10.1f}ms {fast_bytes / 1e6:>14.2f}MB")
    print(f"speedup = {speedup:.2f}x, allocation reduction = {alloc_reduction:.1f}x")

    result = {
        "config": "Fig7-Small dMoE",
        "smoke": SMOKE,
        "warmup_steps": WARMUP_STEPS,
        "timed_steps": TIMED_STEPS,
        "reference_step_s": ref_s,
        "steady_step_s": fast_s,
        "speedup": speedup,
        "reference_alloc_peak_bytes": ref_bytes,
        "steady_alloc_peak_bytes": fast_bytes,
        "alloc_reduction": alloc_reduction,
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_step.json")
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    # The optimization must be free: identical training trajectories.
    assert ref_losses == fast_losses, "steady-state step changed the math"

    if SMOKE:
        # Canary mode: both paths ran end to end; allocation reduction is
        # robust even at tiny sizes, timing is too noisy to gate on.
        assert alloc_reduction > 2.0
        return
    assert speedup >= MIN_SPEEDUP, f"speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    assert alloc_reduction >= MIN_ALLOC_REDUCTION, (
        f"allocation reduction {alloc_reduction:.1f}x < {MIN_ALLOC_REDUCTION}x"
    )

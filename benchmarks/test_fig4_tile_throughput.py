"""Figure 4 — matmul throughput vs threadblock tile dimensions.

Sweeps square mixed-precision matmuls (512..16384) over the CUTLASS 2.5
tile set on the modeled A100 and checks the paper's claim: 128x128 tiles
perform consistently on-par or better than every other configuration.
"""

import numpy as np

from repro.gpu.device import A100_SXM4_80GB as A100
from repro.gpu.matmul import best_tile, matmul_throughput_tflops
from repro.gpu.tiling import CUTLASS_TILES

from harness import print_header

SIZES = [2**p for p in range(9, 15)]  # 512 .. 16384


def _sweep():
    table = {}
    for s in SIZES:
        table[s] = {
            t.label: matmul_throughput_tflops(s, s, s, t, A100)
            for t in CUTLASS_TILES
        }
    return table


def test_fig4_tile_sweep(benchmark):
    table = benchmark(_sweep)
    print_header("Figure 4: Matmul Throughput (TFLOP/s) by Tile Dimensions")
    labels = [t.label for t in CUTLASS_TILES]
    print(f"{'size':>6} " + " ".join(f"{l:>9}" for l in labels) + "   best")
    for s in SIZES:
        row = table[s]
        best = max(row, key=row.get)
        print(
            f"{s:>6} "
            + " ".join(f"{row[l]:9.1f}" for l in labels)
            + f"   {best}"
        )
        # The paper's claim: 128x128 on-par or better everywhere.
        assert row["128x128"] >= 0.99 * max(row.values())


def test_fig4_128x128_selected_by_heuristic(benchmark):
    """cuBLAS anecdotally picks 128x128 for these models (§5.1.2)."""

    def picks():
        return [best_tile(s, s, s, A100).label for s in SIZES]

    got = benchmark(picks)
    assert all(label == "128x128" for label in got)


def test_fig4_small_tiles_win_only_tiny_problems(benchmark):
    """Below ~256, 128x128 wave-quantizes and small tiles can lead."""

    def ratio():
        small = matmul_throughput_tflops(256, 256, 256, CUTLASS_TILES[0], A100)
        big = matmul_throughput_tflops(256, 256, 256, CUTLASS_TILES[-1], A100)
        return small / big

    r = benchmark(ratio)
    print(f"\n256^3: 64x64 / 256x128 throughput ratio = {r:.2f}")
    assert r > 1.0

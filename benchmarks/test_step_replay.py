"""Captured step graphs: compiled replay vs the eager steady-state step.

``TrainerConfig(capture=True)`` records the first micro batch into a
:class:`repro.autograd.StepGraph` and replays the compiled op schedule
(pre-resolved buffers, pre-bound forward/backward methods) on every
signature-matching step, skipping module traversal and tape
construction entirely.  This benchmark trains the Fig-7 *Small* dMoE
configuration with the PR-3 steady-state step both ways and measures
post-warmup step latency with interleaved min-of-``REPS`` repeats
(single-shot step timings on shared CI machines swing by 1.5x+; the
minimum of interleaved rounds is the stable dispatch-cost estimate).

Replay must be free (bit-identical losses), tape-free (zero tape nodes
on replayed steps), and faster.  Results land in ``BENCH_replay.json``
next to this file.
"""

import gc
import json
import os
import time

from repro.autograd import stats as ag_stats
from repro.observability import registry
from repro.training import Adam, Trainer, TrainerConfig
from repro.utils.rng import seed_all

from harness import (
    GLOBAL_BATCH,
    MICRO_BATCH,
    SMOKE,
    build_model,
    pile_data,
    print_header,
)

WARMUP_STEPS = 2
TIMED_STEPS = 3 if SMOKE else 10
REPS = 6 if SMOKE else 3

#: PR 3's recorded steady-state step time for this exact configuration
#: (Fig7-Small dMoE, smoke sizes) — frozen from benchmarks/BENCH_step.json
#: as committed by the zero-allocation-step PR, since that file is
#: rewritten whenever test_step_memory runs.  The acceptance bar for
#: this PR is >= 1.5x over it at smoke sizes.
PR3_STEADY_SMOKE_S = 0.054662802666522715

#: This config's *eager* steady-state step time measured by this very
#: benchmark (interleaved run) in the same session that recorded the
#: committed ``BENCH_replay.json`` — i.e. at the machine speed where
#: ``replay`` measured 1.5x+ over ``PR3_STEADY_SMOKE_S``.  Used to
#: load-compensate the canary below: this container's wall clock drifts
#: +-30% with invisible host contention, so a raw comparison of one
#: run's replay time against a constant recorded weeks earlier flakes.
REF_EAGER_SMOKE_S = 0.0406

#: Smoke-mode canary floor for the *load-compensated* speedup vs the
#: frozen PR-3 number: ``speedup_vs_eager * (PR3 / REF_EAGER)``.  Both
#: factors are drift-free — the first is an interleaved same-process
#: ratio (ambient load hits both paths equally), the second is a frozen
#: constant — so this gates replay-dispatch regressions specifically
#: without flaking on machine speed.  Quiet runs measure ~1.5-1.6x; a
#: shared-compute (both-path) regression is the PR-3 benchmark's job
#: (test_step_memory), not this canary's.
MIN_COMPENSATED_SPEEDUP_VS_PR3 = 1.25


def _build_trainer(capture: bool) -> Trainer:
    seed_all(0)
    train, _ = pile_data()
    model = build_model("dmoe", "Small")
    cfg = TrainerConfig(
        global_batch=GLOBAL_BATCH,
        micro_batch=MICRO_BATCH,
        max_steps=WARMUP_STEPS + REPS * TIMED_STEPS,
        eval_every=0,
        log_every=0,
        steady_state=True,
        capture=capture,
    )
    return Trainer(model, train, config=cfg, optimizer=Adam(model.parameters(), lr=3e-3))


def _measure():
    """Interleaved comparison: warm both trainers, then alternate timed
    rounds so OS/cache noise hits both paths equally; report the min."""
    eager = _build_trainer(False)
    replay = _build_trainer(True)
    losses = {"eager": [], "replay": []}
    tape = {}
    step = 0
    for _ in range(WARMUP_STEPS):
        losses["eager"].append(eager.train_step(step))
        losses["replay"].append(replay.train_step(step))
        step += 1

    times = {"eager": [], "replay": []}
    # Timed rounds run with the cyclic GC off: a collection landing inside
    # one round (suite runs carry garbage from earlier tests) skews a
    # single path by several ms, which min-of-reps cannot cancel.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPS):
            for name, tr in (("eager", eager), ("replay", replay)):
                t0 = time.perf_counter()
                for k in range(TIMED_STEPS):
                    losses[name].append(tr.train_step(step + k))
                times[name].append((time.perf_counter() - t0) / TIMED_STEPS)
                # ag_stats is reset per step: this is the last step's tape.
                tape[name] = ag_stats.tape_nodes
            step += TIMED_STEPS
    finally:
        if gc_was_enabled:
            gc.enable()
    return eager, replay, losses, times, tape


def test_step_replay(benchmark):
    reg = registry()
    before = {
        k: reg.counter(f"graph_{k}").value
        for k in ("captures", "replays", "fallbacks")
    }
    eager, replay, losses, times, tape = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    after = {
        k: reg.counter(f"graph_{k}").value
        for k in ("captures", "replays", "fallbacks")
    }
    counts = {k: after[k] - before[k] for k in before}

    eager_s = min(times["eager"])
    replay_s = min(times["replay"])
    speedup = eager_s / replay_s
    speedup_vs_pr3 = PR3_STEADY_SMOKE_S / replay_s
    compensated_vs_pr3 = speedup * (PR3_STEADY_SMOKE_S / REF_EAGER_SMOKE_S)
    graph = replay.step_graph

    print_header("Captured step graph: compiled replay vs eager steady-state")
    print(f"{'path':18} {'step time':>12} {'tape nodes':>12}")
    print(f"{'eager (PR 3)':18} {eager_s * 1e3:>10.2f}ms {tape['eager']:>12}")
    print(f"{'replay':18} {replay_s * 1e3:>10.2f}ms {tape['replay']:>12}")
    print(
        f"speedup = {speedup:.2f}x vs interleaved eager, "
        f"{speedup_vs_pr3:.2f}x vs PR 3's recorded {PR3_STEADY_SMOKE_S * 1e3:.2f}ms"
        f" ({compensated_vs_pr3:.2f}x load-compensated)"
    )
    print(
        f"graph: {graph.num_records} records ({graph.num_ops} ops), "
        f"{counts['captures']} captures / {counts['replays']} replays / "
        f"{counts['fallbacks']} fallbacks"
    )

    result = {
        "config": "Fig7-Small dMoE (steady_state=True)",
        "smoke": SMOKE,
        "warmup_steps": WARMUP_STEPS,
        "timed_steps": TIMED_STEPS,
        "reps": REPS,
        "eager_step_s": eager_s,
        "replay_step_s": replay_s,
        "speedup_vs_eager": speedup,
        "pr3_steady_step_s": PR3_STEADY_SMOKE_S,
        "speedup_vs_pr3": speedup_vs_pr3,
        "speedup_vs_pr3_load_compensated": compensated_vs_pr3,
        "eager_tape_nodes": tape["eager"],
        "replay_tape_nodes": tape["replay"],
        "graph_records": graph.num_records,
        "graph_ops": graph.num_ops,
        "graph_captures": counts["captures"],
        "graph_replays": counts["replays"],
        "graph_fallbacks": counts["fallbacks"],
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_replay.json")
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    # Replay must be free: identical training trajectories...
    assert losses["eager"] == losses["replay"], "replay changed the math"
    # ...and tape-free: replayed steps build zero autograd nodes.
    assert tape["eager"] > 0
    assert tape["replay"] == 0
    # Exactly one capture, no fallbacks: the signature stayed stable
    # after warmup, so the recapture count is flat.
    assert counts["captures"] == 1
    assert counts["fallbacks"] == 0
    assert counts["replays"] == 2 * (WARMUP_STEPS + REPS * TIMED_STEPS) - 1

    # Direction always (interleaved, so load cancels); the canary floor
    # vs PR 3's frozen number only applies at the sizes it measured, and
    # is load-compensated (see REF_EAGER_SMOKE_S) so host-contention
    # epochs on shared CI machines cannot flake it.
    assert speedup > 1.0, f"replay slower than eager ({speedup:.2f}x)"
    if SMOKE:
        assert compensated_vs_pr3 >= MIN_COMPENSATED_SPEEDUP_VS_PR3, (
            f"replay {compensated_vs_pr3:.2f}x (load-compensated) vs PR 3 "
            f"< {MIN_COMPENSATED_SPEEDUP_VS_PR3}x"
        )

"""Comm–compute overlap benchmark: the async expert all-to-all must
hide the token exchange's exposed wait behind independent local work.

The measured unit is the §5 dispatch sequence of the expert-parallel
dMoE, over real forked ranks (the ``"mp"`` backend) with real routed
payloads: exchange the (tiny) expert-id assignments, then move the
token payloads while the receiving rank builds its padded plan + block
topology — host-side metadata that needs only the already-arrived ids.
``overlap=False`` serializes exchange-then-plan; ``overlap=True`` posts
the sends (:meth:`ProcessGroup.isend_all_to_all`), plans in flight,
and only then waits.  Both schedules are asserted bit-equal.

Two measurement honesty notes, both consequences of running every rank
on one oversubscribed CPU:

- **A straggler models the link.**  With all ranks on one core and no
  wire, payloads "arrive" as fast as the peer can memcpy, so there is
  nothing to hide; real clusters wait on NICs and slow peers.  The
  benchmark makes rank 1 a straggler (a sleep between the id exchange
  and its token sends — latency, not CPU), which is exactly the
  exposure MegaScale-MoE-style overlap targets.
- **One exchange per run.**  In a training loop the next collective is
  a resync: whatever a rank saves by overlapping, it re-pays waiting
  for the same straggler at the next barrier, so *steady-state* wait
  against a uniformly slow rank is conserved no matter the schedule.
  What overlap buys is latency to the dependent compute — so the
  benchmark measures the dispatch in isolation, where the saving is
  visible, and gates on the token exchange's own ``wait_s`` (blocked
  poll time), median over repeats to reject scheduler outliers on
  either tail (a descheduled peer can zero a serial rep; a hiccup can
  inflate an overlapped one).

Results land in ``BENCH_dist.json`` next to this file.
"""

import json
import os
import time

import numpy as np

from repro.core import dMoE
from repro.distributed import DeviceMesh, ExpertParallelDMoE, run_distributed

from harness import SMOKE, print_header

WORLD = 2
TOKENS = 2048 if SMOKE else 4096
REPEATS = 4 if SMOKE else 6
HIDDEN, FFN, EXPERTS, BLOCK = 128, 512, 16, 16
#: Modeled straggler link latency on rank 1's token sends.
LINK_LATENCY_S = 0.010
#: Plan-building passes to overlap (sized ~ the latency they hide).
PLAN_REPS = 4


def _build():
    layer = dMoE(
        HIDDEN, FFN, EXPERTS, block_size=BLOCK, rng=0, load_balance_coef=0.0
    )
    layer.eval()
    mesh = DeviceMesh(world=WORLD, expert_parallel=WORLD)
    ep = ExpertParallelDMoE(layer, mesh)
    rng = np.random.default_rng(12)
    xs = [rng.standard_normal((TOKENS, HIDDEN)) for _ in range(WORLD)]
    return ep, xs


def _make_fn(ep, xs, overlap):
    def fn(group):
        x = np.asarray(xs[group.rank])
        send_tokens, send_experts, _, _ = ep._route_and_bucket(x, group.world)
        recv_experts = group.all_to_all(send_experts)
        ids = np.concatenate(recv_experts).astype(np.int64)
        before = group.wait_s
        if group.rank == 1:
            time.sleep(LINK_LATENCY_S)  # the modeled slow link
        if overlap:
            pending = group.isend_all_to_all(send_tokens)
            for _ in range(PLAN_REPS):
                plan, topology = ep._build_local_plan(ids)
            recv = pending.wait()
        else:
            recv = group.all_to_all(send_tokens)
            for _ in range(PLAN_REPS):
                plan, topology = ep._build_local_plan(ids)
        tokens = np.concatenate(recv)
        # (digest, exposed wait of the token exchange alone)
        return float(np.sum(tokens)), group.wait_s - before

    return fn


def _run(ep, xs, overlap):
    return run_distributed(
        _make_fn(ep, xs, overlap),
        WORLD,
        backend="mp",
        timeout_s=120.0,
        op_timeout_s=30.0,
    )


def test_dist_overlap(benchmark):
    ep, xs = _build()

    serial_waits, overlap_waits = [], []
    serial_elapsed, overlap_elapsed = [], []
    # Alternate the two schedules so machine noise hits both equally.
    for rep in range(REPEATS):
        if rep == 0:
            s = benchmark.pedantic(
                lambda: _run(ep, xs, False), rounds=1, iterations=1
            )
        else:
            s = _run(ep, xs, False)
        o = _run(ep, xs, True)
        # The schedule cannot change the math.
        assert [v[0] for v in s.values] == [v[0] for v in o.values], (
            "overlapped exchange produced different tokens"
        )
        serial_waits.append(sum(v[1] for v in s.values))
        overlap_waits.append(sum(v[1] for v in o.values))
        serial_elapsed.append(s.elapsed_s)
        overlap_elapsed.append(o.elapsed_s)

    # Medians, not minima: a lucky descheduling can zero out a single
    # serialized rep (the straggler posted before the peer even asked)
    # and a single overlapped rep can eat a scheduler hiccup — the
    # median rejects both tails.
    med_serial = float(np.median(serial_waits))
    med_overlap = float(np.median(overlap_waits))
    reduction = 1.0 - med_overlap / med_serial if med_serial > 0 else 0.0

    print_header("dMoE expert all-to-all: serialized vs overlapped dispatch")
    print(
        f"  token-exchange exposed wait (median of {REPEATS}, "
        f"{WORLD} ranks summed, {LINK_LATENCY_S * 1e3:.0f} ms straggler "
        f"link): serial {med_serial * 1e3:.2f} ms -> overlap "
        f"{med_overlap * 1e3:.2f} ms ({reduction:.0%} hidden)"
    )
    print(
        f"  makespan (informational): serial "
        f"{min(serial_elapsed) * 1e3:.1f} ms, overlap "
        f"{min(overlap_elapsed) * 1e3:.1f} ms"
    )

    result = {
        "world": WORLD,
        "tokens_per_rank": TOKENS,
        "repeats": REPEATS,
        "link_latency_s": LINK_LATENCY_S,
        "plan_reps": PLAN_REPS,
        "serial_wait_s": serial_waits,
        "overlap_wait_s": overlap_waits,
        "median_serial_wait_s": med_serial,
        "median_overlap_wait_s": med_overlap,
        "wait_reduction": reduction,
        "serial_elapsed_s": serial_elapsed,
        "overlap_elapsed_s": overlap_elapsed,
        "bit_identical": True,
        "smoke": SMOKE,
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_dist.json")
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2)

    # Overlap must hide the straggler's latency behind the plan build.
    # Typical measurement: ~99% of the serialized wait disappears.  The
    # timing gates hold only in full mode — the smoke canary (run
    # in-process inside tier-1, after modules that leave background
    # threads contending for the one CI core) asserts bit-identity and
    # artifact emission, matching the other benchmark smoke tests.
    if not SMOKE:
        assert med_overlap < med_serial, (
            f"overlap exposed {med_overlap * 1e3:.2f} ms of wait, not "
            f"below the serialized {med_serial * 1e3:.2f} ms"
        )
        assert reduction > 0.5, (
            f"only {reduction:.0%} of the serialized exposed wait was "
            "hidden by the overlapped plan build"
        )

"""Figure 7 — end-to-end: MegaBlocks dMoEs vs Tutel dMoEs vs dense.

Two ingredients combine:

- the **time axis** comes from the A100 step-time model at the paper's
  exact configurations (Tables 1-3): steps * step_time for 10B tokens;
- the **loss axis** comes from scaled-down training on the synthetic
  Pile.  dMoE and Tutel-dMoE compute the same function, so they share a
  loss curve and the speedup at matched quality equals their step-time
  ratio (this equivalence is verified in the test suite).

Paper claims checked: MegaBlocks beats Tutel at every size; the
advantage grows with model size (1.38x -> 2.0x -> 4.35x); dMoEs reach
dense-model quality faster (paper: 1.8-2.4x).
"""

import numpy as np

from repro.configs import TABLE2, TABLE3_MICRO_BATCH_SIZES as T3, TRAIN_TOKENS
from repro.gpu.training_cost import (
    TUTEL_AVG_DYNAMIC_CF,
    dense_step_time,
    moe_step_time,
    training_time_s,
)
from repro.training import time_to_loss
from repro.utils.ascii_plot import line_chart
from repro.utils.timing import format_duration

from harness import SMOKE, TRAIN_STEPS, print_header, run_training, val_curve

PAPER_TUTEL_SPEEDUPS = {"XS": 1.38, "Small": 2.0, "Medium": 4.35}
STEPS = TRAIN_STEPS


def _step_times():
    out = {}
    for name, cfg in TABLE2.items():
        mb = moe_step_time(cfg, T3["MegaBlocks"][cfg.name], "megablocks")
        tu = moe_step_time(
            cfg, T3["Tutel"][cfg.name], "tutel",
            capacity_factor=TUTEL_AVG_DYNAMIC_CF,
        )
        dn = dense_step_time(cfg.base, T3["Megatron-LM"][cfg.base.name])
        out[name] = {
            "megablocks": mb.total_s,
            "tutel": tu.total_s,
            "dense": dn.total_s,
        }
    return out


def test_fig7_tutel_speedups(benchmark):
    steps = benchmark(_step_times)
    print_header("Figure 7: End-to-End Training Time (modeled 8xA100, 10B tokens)")
    print(f"{'model':8} {'MegaBlocks':>12} {'Tutel dMoE':>12} {'dense':>12} "
          f"{'speedup':>8} {'paper':>6}")
    for name in TABLE2:
        st = steps[name]
        t_mb = training_time_s(
            type("S", (), {"total_s": st["megablocks"]})(), TRAIN_TOKENS, 512, 1024
        )
        speedup = st["tutel"] / st["megablocks"]
        print(
            f"{name:8} {format_duration(st['megablocks']):>12} "
            f"{format_duration(st['tutel']):>12} {format_duration(st['dense']):>12} "
            f"{speedup:>7.2f}x {PAPER_TUTEL_SPEEDUPS[name]:>5}x"
        )
    speedups = {n: steps[n]["tutel"] / steps[n]["megablocks"] for n in TABLE2}
    # Shape 1: MegaBlocks wins everywhere.
    assert all(s > 1.2 for s in speedups.values())
    # Shape 2: the advantage grows with model size (the paper's headline).
    assert speedups["XS"] < speedups["Small"] < speedups["Medium"]
    # Shape 3: XS magnitude matches the paper's 1.38x band.
    assert 1.2 <= speedups["XS"] <= 1.6


def test_fig7_dmoe_vs_dense_quality_speedup(benchmark):
    """dMoEs reach the dense model's final loss in less (modeled) time."""

    def measure():
        dmoe_hist = run_training("dmoe", "XS", steps=STEPS)
        dense_hist = run_training("dense", "XS", steps=STEPS)
        return dmoe_hist, dense_hist

    dmoe_hist, dense_hist = benchmark.pedantic(measure, rounds=1, iterations=1)
    st = _step_times()["XS"]

    dense_steps, dense_losses = val_curve(dense_hist)
    dmoe_steps, dmoe_losses = val_curve(dmoe_hist)
    if SMOKE:
        # Smoke canary: the dMoE training loop (routing, topology cache,
        # grouped kernels, backward) ran end to end and produced finite
        # losses; too few steps to assert quality crossover.
        assert np.isfinite(dmoe_losses).all() and np.isfinite(dense_losses).all()
        return
    target = float(np.min(dense_losses))  # dense model's best loss
    s_dense = time_to_loss(dense_steps, dense_losses, target)
    s_dmoe = time_to_loss(dmoe_steps, dmoe_losses, target)

    print_header("Figure 7: dMoE vs dense at matched validation loss")
    # Loss-vs-modeled-time curves (the paper's figure axes).
    print(line_chart(
        {
            "dMoE (MegaBlocks)": dmoe_losses,
            "dense (Megatron)": dense_losses,
        },
        title="validation loss vs training progress (equal step grid)",
        width=56, height=12,
    ))
    assert s_dmoe is not None, "dMoE failed to reach dense-model quality"
    t_dense = s_dense * st["dense"]
    t_dmoe = s_dmoe * st["megablocks"]
    speedup = t_dense / t_dmoe
    print(
        f"steps to dense-final loss {target:.3f}: dense={s_dense:.0f}, "
        f"dMoE={s_dmoe:.0f}; modeled time speedup = {speedup:.2f}x "
        f"(paper: 1.8-2.4x)"
    )
    # Shape: the dMoE reaches dense quality faster in modeled wall-clock.
    assert speedup > 1.2

"""Ablation (§5.1.2 / §6.2) — block/tile size selection.

§5.1.2 selects 128x128 from dense-matmul evidence (Figure 4); §6.2 then
notes that for MoE-Medium's small micro batch, "smaller tile dimensions
(e.g., 64x128 or 64x64) ... could improve performance by reducing the
amount of wasted computation when the problem dimensions are not
divisible by 128".  This ablation measures exactly that crossover on the
modeled A100.
"""

import numpy as np

from repro.gpu.blocksparse import grouped_matmul_time, moe_layer_problems
from repro.gpu.device import A100_SXM4_80GB as A100
from repro.gpu.tiling import TileConfig

from harness import print_header

TILES = [
    TileConfig(64, 64, threadblocks_per_sm=4),
    TileConfig(64, 128, threadblocks_per_sm=2),
    TileConfig(128, 128, threadblocks_per_sm=1),
]


def _sweep():
    """dMoE fwd1 time per tile, across tokens-per-expert scales.

    Tokens per expert follows MoE-Medium on 8 GPUs: micro batch b gives
    b*128 tokens per local expert; the paper's Medium runs at b=8, and
    imbalanced routing leaves some experts with far less.
    """
    h, f = 1024, 4096
    rows = {}
    for tokens in (64, 128, 256, 1024, 8192):
        problems = moe_layer_problems([tokens] * 8, h, f, "fwd1")
        rows[tokens] = {
            t.label: grouped_matmul_time(problems, A100, tile=t).total_s
            for t in TILES
        }
    return rows


def test_ablation_block_size_crossover(benchmark):
    rows = benchmark(_sweep)
    print_header("§6.2 Ablation: tile size vs tokens-per-expert (modeled, MoE-Medium)")
    labels = [t.label for t in TILES]
    print(f"{'tokens/expert':>14} " + " ".join(f"{l:>10}" for l in labels) + "   best")
    best_by_tokens = {}
    for tokens, times in rows.items():
        best = min(times, key=times.get)
        best_by_tokens[tokens] = best
        print(
            f"{tokens:>14} "
            + " ".join(f"{times[l] * 1e6:9.1f}u" for l in labels)
            + f"   {best}"
        )
    # Large problems: 128x128 wins (Figure 4's conclusion).
    assert best_by_tokens[8192] == "128x128"
    # Tiny problems (the §6.2 regime): a smaller tile is at least as good.
    small = rows[64]
    assert min(small["64x64"], small["64x128"]) <= small["128x128"] * 1.001


def test_ablation_padding_waste_shrinks_with_smaller_tiles(benchmark):
    """At 129 tokens/expert, 128-row tiles waste ~half of a second tile
    while 64-row tiles waste only a fringe — the §6.2 observation."""

    def waste():
        h, f = 1024, 4096
        problems = moe_layer_problems([129] * 8, h, f, "fwd1")
        out = {}
        for t in TILES:
            useful = 2.0 * sum(p.m * p.n * p.k for p in problems)
            padded = 2.0 * sum(
                -(-p.m // t.m) * t.m * -(-p.n // t.n) * t.n * p.k
                for p in problems
            )
            out[t.label] = padded / useful
        return out

    ratios = benchmark(waste)
    print_header("§6.2: padded/useful FLOP ratio at 129 tokens per expert")
    for label, r in ratios.items():
        print(f"{label:>9}: {r:.2f}x")
    # 64-row tiles pad 129 -> 192 (1.49x); 128-row tiles pad to 256 (1.98x).
    assert ratios["64x64"] <= ratios["64x128"] < ratios["128x128"]

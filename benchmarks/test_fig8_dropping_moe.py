"""Figure 8 — dMoEs vs token-dropping MoEs at their best capacity factor.

The paper trains MoEs at capacity factors {1, 1.5, 2}, builds the
(time, loss) Pareto frontier, and compares each dMoE against the
loss-equivalent point: even against the best token-dropping
configuration, dMoEs win 1.38x/1.37x/1.18x for XS/Small/Medium.

Here the loss axis is scaled training; the per-step time for each
capacity factor comes from the A100 cost model (padding work scales with
the factor).  The check: the dMoE reaches the frontier's quality in less
modeled time than any dropping configuration.
"""

import numpy as np

from repro.configs import TABLE2, TABLE3_MICRO_BATCH_SIZES as T3
from repro.gpu.training_cost import moe_step_time
from repro.training import pareto_frontier, time_to_loss

from harness import print_header, run_training, val_curve

CAPACITY_FACTORS = [1.0, 1.5, 2.0]
STEPS = 120


def _curves():
    """(capacity factor -> history) plus the dMoE history, XS scale."""
    out = {}
    for cf in CAPACITY_FACTORS:
        out[cf] = run_training("moe", "XS", capacity_factor=cf, steps=STEPS)
    dmoe = run_training("dmoe", "XS", steps=STEPS)
    return out, dmoe


def test_fig8_dmoe_beats_best_dropping_moe(benchmark):
    dropping, dmoe = benchmark.pedantic(_curves, rounds=1, iterations=1)
    cfg = TABLE2["XS"]
    mbs = T3["MegaBlocks"][cfg.name]

    # Per-step modeled times: the token-dropping MoEs use the same micro
    # batch as the dMoE (paper §6.2) but pay capacity_factor-scaled math.
    dmoe_step = moe_step_time(cfg, mbs, "megablocks").total_s
    drop_steps = {
        cf: moe_step_time(cfg, mbs, "tutel", capacity_factor=cf).total_s
        for cf in CAPACITY_FACTORS
    }

    print_header("Figure 8: dMoE vs Token-Dropping MoEs (XS scale)")
    target = float(np.min(val_curve(dmoe)[1]))

    # Time for each dropping MoE to reach the dMoE's final loss.
    points = []
    for cf, hist in dropping.items():
        s, l = val_curve(hist)
        steps_needed = time_to_loss(s, l, target)
        final = float(np.min(l))
        t = steps_needed * drop_steps[cf] if steps_needed is not None else None
        points.append((cf, final, steps_needed, t))
        print(
            f"MoE cf={cf}: final={final:.4f} "
            f"steps-to-dMoE-loss={steps_needed} modeled-time="
            f"{t if t is None else round(t, 3)}"
        )

    s_dmoe, l_dmoe = val_curve(dmoe)
    dmoe_steps_needed = time_to_loss(s_dmoe, l_dmoe, target)
    t_dmoe = dmoe_steps_needed * dmoe_step
    print(f"dMoE: final={target:.4f} modeled-time={t_dmoe:.3f}s")

    reached = [t for _, _, _, t in points if t is not None]
    if reached:
        best_dropping = min(reached)
        speedup = best_dropping / t_dmoe
        print(f"\nspeedup vs best dropping MoE: {speedup:.2f}x (paper XS: 1.38x)")
        assert speedup > 1.0
    else:
        # No dropping configuration reaches dMoE quality at all — an even
        # stronger version of the paper's claim at this scale.
        print("\nno dropping MoE reached dMoE quality within the budget")
        assert all(final > target for _, final, _, _ in points)


def test_fig8_pareto_frontier_structure(benchmark):
    """The dropping-MoE frontier is non-trivial: higher capacity costs
    more time per step but reaches better loss."""
    dropping, _ = benchmark.pedantic(_curves, rounds=1, iterations=1)
    cfg = TABLE2["XS"]
    mbs = T3["MegaBlocks"][cfg.name]
    pts = []
    for cf, hist in dropping.items():
        step_s = moe_step_time(cfg, mbs, "tutel", capacity_factor=cf).total_s
        final = float(np.min(val_curve(hist)[1]))
        pts.append((STEPS * step_s, final))
    frontier = pareto_frontier(pts)
    print_header("Figure 8: Pareto frontier of token-dropping MoEs")
    for t, l in frontier:
        print(f"time={t:.2f}s loss={l:.4f}")
    assert len(frontier) >= 1
    # Time increases with capacity factor in the cost model.
    times = sorted(t for t, _ in pts)
    assert times == [t for t, _ in sorted(pts)]

"""Streaming checkpoint benchmark: the async writer must take the
serialize+fsync cost off the training step.

Trains the Fig-7 *Small* dMoE twice from the same seed with periodic
checkpointing — once through the synchronous path (the step stalls for
the full ``ckpt_write``: serialize + fsync + rotation), once through the
async background writer (the step pays only ``ckpt_snapshot`` +
``ckpt_submit``) — and checks the PR 7 contracts:

- **Checkpoints are byte-identical**: both paths funnel the same
  step-boundary :class:`CheckpointState` through one serializer, so
  every shard and manifest must match byte for byte.
- **Training is identical**: losses are bit-equal; checkpointing policy
  cannot perturb the math.
- **The write overlaps training**: the serialize runs on the writer
  thread (``worker_ident`` differs from the training thread) and the
  boundary stall (snapshot + submit) is reported against the full
  synchronous write, per checkpoint.

Results land in ``BENCH_ckpt.json`` next to this file.
"""

import json
import os
import tempfile
import threading
import time

from repro.checkpoint import CheckpointManager
from repro.observability.tracing import tracing
from repro.training import Adam, Trainer, TrainerConfig
from repro.utils.rng import seed_all

from harness import (
    GLOBAL_BATCH,
    MICRO_BATCH,
    SMOKE,
    build_model,
    pile_data,
    print_header,
)

STEPS = 4 if SMOKE else 12
CKPT_EVERY = 2 if SMOKE else 3


def _dir_bytes(path):
    out = {}
    for root, _, files in os.walk(path):
        for f in files:
            p = os.path.join(root, f)
            out[os.path.relpath(p, path)] = open(p, "rb").read()
    return out


def _train(ckpt_dir: str, async_ckpt: bool):
    seed_all(0)
    train, _ = pile_data()
    model = build_model("dmoe", "Small")
    cfg = TrainerConfig(
        global_batch=GLOBAL_BATCH,
        micro_batch=MICRO_BATCH,
        max_steps=STEPS,
        eval_every=0,
        log_every=1,
        async_checkpoint=async_ckpt,
    )
    trainer = Trainer(
        model, train, config=cfg, optimizer=Adam(model.parameters(), lr=3e-3)
    )
    manager = CheckpointManager(ckpt_dir, keep_last=STEPS, fmt="sharded")
    t0 = time.perf_counter()
    with tracing() as tracer:
        history = trainer.fit(
            checkpoint_manager=manager, checkpoint_every=CKPT_EVERY
        )
    wall_s = time.perf_counter() - t0
    return history, trainer, manager, tracer, wall_s


def test_ckpt_stream(benchmark):
    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as tmp:
        _run_comparison(benchmark, tmp)


def _run_comparison(benchmark, tmp):
    sync_dir = os.path.join(tmp, "sync")
    async_dir = os.path.join(tmp, "async")

    sync_hist, sync_t, sync_mgr, sync_tr, sync_s = benchmark.pedantic(
        lambda: _train(sync_dir, False), rounds=1, iterations=1
    )
    async_hist, async_t, async_mgr, async_tr, async_s = _train(async_dir, True)

    # Checkpoint policy must not perturb the math.
    assert list(sync_hist.losses) == list(async_hist.losses), (
        "async checkpointing changed the training trajectory"
    )
    assert sync_mgr.steps == async_mgr.steps

    # Byte identity, shard for shard, manifest included.
    for step in sync_mgr.steps:
        a = _dir_bytes(sync_mgr.path_for(step))
        b = _dir_bytes(async_mgr.path_for(step))
        assert a.keys() == b.keys(), f"step {step}: shard sets differ"
        for name in a:
            assert a[name] == b[name], f"step {step}: {name} differs"

    # The async serialize really ran off the training thread.
    writer = async_t.ckpt_writer
    assert writer is not None and writer.failed == 0
    assert writer.written == len(async_mgr.steps)
    assert writer.worker_ident is not None
    assert writer.worker_ident != threading.get_ident()

    # Step-boundary stall: the synchronous path pays the full write;
    # the async path pays snapshot + submit only.
    sync_stall = [s.duration for s in sync_tr.roots("ckpt_write")]
    snap = [s.duration for s in async_tr.roots("ckpt_snapshot")]
    sub = [s.duration for s in async_tr.roots("ckpt_submit")]
    assert len(sync_stall) == len(snap) == len(sub) == len(sync_mgr.steps)
    async_stall = [a + b for a, b in zip(snap, sub)]
    mean = lambda xs: sum(xs) / len(xs)
    if not SMOKE:
        # At full size the serialize+fsync dominates the memcpy snapshot.
        assert mean(async_stall) < mean(sync_stall), (
            f"async boundary stall {mean(async_stall) * 1e3:.2f} ms is not "
            f"below the synchronous write {mean(sync_stall) * 1e3:.2f} ms"
        )

    result = {
        "steps": STEPS,
        "checkpoint_every": CKPT_EVERY,
        "checkpoints": len(sync_mgr.steps),
        "sync_wall_s": sync_s,
        "async_wall_s": async_s,
        "sync_stall_ms_per_ckpt": mean(sync_stall) * 1e3,
        "async_stall_ms_per_ckpt": mean(async_stall) * 1e3,
        "stall_reduction": (
            1.0 - mean(async_stall) / mean(sync_stall)
            if mean(sync_stall) > 0
            else 0.0
        ),
        "byte_identical": True,
        "smoke": SMOKE,
    }
    print_header("streaming checkpoints: sync vs async step-boundary stall")
    print(
        f"  per-checkpoint stall: sync {result['sync_stall_ms_per_ckpt']:.2f} ms"
        f" -> async {result['async_stall_ms_per_ckpt']:.2f} ms"
        f" ({result['stall_reduction']:.0%} off the step boundary)"
    )
    print(f"  wall: sync {sync_s:.2f} s, async {async_s:.2f} s")
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_ckpt.json")
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2)

"""Ablation (§5.1.4) — transpose indices vs explicit transposition.

The DS^TD weight-gradient product needs the sparse operand in transposed
order.  MegaBlocks walks the untouched value array through a secondary
index; the ablation materializes the transposed matrix first (copying
every nonzero).  Wall-clock (NumPy) and modeled A100 comparisons.
"""

import numpy as np

from repro.gpu.blocksparse import (
    block_sparse_op_time,
    dsd_explicit_transpose_time,
)
from repro.gpu.device import A100_SXM4_80GB as A100
from repro.sparse import Topology, dsd, random_block_sparse
from repro.sparse.ablation import dsd_explicit_transpose

from harness import print_header

BS = 16
E = 8


def _sparse_operand():
    topo = Topology.block_diagonal(np.full(E, 8), np.full(E, 4), BS)
    rng = np.random.default_rng(0)
    s = random_block_sparse(topo, rng, dtype=np.float32)
    b = rng.standard_normal((topo.shape[0], 64)).astype(np.float32)
    return s, b


def test_ablation_transpose_indices_kernel(benchmark):
    s, b = _sparse_operand()
    out = benchmark(lambda: dsd(s, b, trans_s=True))
    assert out.shape == (s.shape[1], 64)


def test_ablation_explicit_transpose_kernel(benchmark):
    s, b = _sparse_operand()
    out = benchmark(lambda: dsd_explicit_transpose(s, b))
    np.testing.assert_allclose(out, dsd(s, b, trans_s=True), atol=1e-3)


def test_ablation_modeled_comparison(benchmark):
    """On the A100 model, explicit transposition is strictly slower
    (value copy + extra launch), while transpose indices pay only a
    locality penalty on the weight-gradient ops."""

    def compare():
        tpe = [4096] * 8
        h, f = 1024, 4096
        indexed = block_sparse_op_time(tpe, h, f, "bwd2_weight", A100).total_s
        explicit = dsd_explicit_transpose_time(tpe, h, f, A100).total_s
        untransposed = block_sparse_op_time(tpe, h, f, "fwd2", A100).total_s
        return indexed, explicit, untransposed

    indexed, explicit, untransposed = benchmark(compare)
    print_header("§5.1.4 Ablation: DS^TD strategies (modeled A100)")
    print(f"transpose indices : {indexed * 1e6:8.1f} us")
    print(f"explicit transpose: {explicit * 1e6:8.1f} us")
    print(f"(same-shape DSD, no transpose: {untransposed * 1e6:8.1f} us)")
    assert explicit > indexed
    # §6.3: the overall op-level impact of the secondary index is <10%
    # relative to the untransposed access pattern of the same shape.
    assert indexed / untransposed < 1.35

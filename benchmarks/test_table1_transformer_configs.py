"""Table 1 — Transformer model configurations.

Regenerates the Weights(M) and GFLOPs columns from the config formulas
and checks them against the published values.
"""

from repro.configs import TABLE1, TABLE1_EXPECTED, transformer_train_gflops

from harness import print_header


def _rows():
    rows = []
    for name, cfg in TABLE1.items():
        rows.append(
            (
                cfg.name,
                cfg.hidden_size,
                cfg.num_layers,
                cfg.num_parameters / 1e6,
                transformer_train_gflops(cfg),
            )
        )
    return rows


def test_table1_reproduction(benchmark):
    rows = benchmark(_rows)
    print_header("Table 1: Transformer Model Configurations")
    print(f"{'Transformer':22} {'hidden':>7} {'layers':>7} "
          f"{'Weights(M)':>11} {'paper':>6} {'GFLOPs':>8} {'paper':>6}")
    for (name, h, l, w, g), key in zip(rows, TABLE1_EXPECTED):
        pw, pg = TABLE1_EXPECTED[key]
        print(f"{name:22} {h:>7} {l:>7} {w:>11.1f} {pw:>6} {g:>8.1f} {pg:>6}")
        assert abs(w - pw) / pw < 0.01
        assert abs(g - pg) / pg < 0.005

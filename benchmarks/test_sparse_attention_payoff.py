"""Extension bench (§4) — the block-sparse-primitives payoff beyond MoE.

The paper justifies investing in block-sparse kernels because they are
general-purpose: "block-sparse kernels like matrix multiplication ...
are useful across a range of applications" (§4, citing Child et al.'s
sparse attention).  This bench quantifies that on the modeled A100:
dense vs banded attention cost across sequence lengths, plus the exact
equivalence of the NumPy implementation at full window.
"""

import numpy as np

from repro.gpu.sparse_attention_cost import (
    dense_attention_time,
    sparse_attention_time,
)

from harness import print_header

HEADS, HEAD_DIM, BATCH = 16, 64, 8


def _sweep():
    rows = []
    for seq in (2048, 4096, 8192, 16384):
        dense = dense_attention_time(seq, HEADS, HEAD_DIM, BATCH)
        local = sparse_attention_time(seq, 4, HEADS, HEAD_DIM, BATCH)
        rows.append((seq, dense, local, dense / local))
    return rows


def test_sparse_attention_speedup_grows_with_sequence(benchmark):
    rows = benchmark(_sweep)
    print_header("§4 extension: dense vs banded attention (modeled A100, window=4 blocks)")
    print(f"{'seq':>7} {'dense':>10} {'banded':>10} {'speedup':>8}")
    for seq, dense, local, speedup in rows:
        print(f"{seq:>7} {dense * 1e3:>9.2f}m {local * 1e3:>9.2f}m {speedup:>7.2f}x")
    speedups = [r[3] for r in rows]
    # O(S^2) vs O(S*w): the advantage must grow with sequence length.
    assert all(a < b for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 3.0


def test_numpy_kernels_match_dense_attention(benchmark):
    """Wall-clock + exactness: the real sparse-attention layer at full
    window equals dense attention on this machine."""
    from repro.autograd import Tensor
    from repro.nn import CausalSelfAttention
    from repro.nn.sparse_attention import BlockSparseCausalSelfAttention

    sparse = BlockSparseCausalSelfAttention(32, 2, block_size=8, rng=0)
    dense = CausalSelfAttention(32, 2, rng=1)
    dense.load_state_dict(sparse.state_dict())
    x = np.random.default_rng(2).standard_normal((1, 64, 32))

    out_sparse = benchmark(lambda: sparse(Tensor(x.copy(), dtype=np.float64)).data)
    out_dense = dense(Tensor(x.copy(), dtype=np.float64)).data
    np.testing.assert_allclose(out_sparse, out_dense, atol=1e-8)

"""Extension bench (paper §7) — routing algorithms x dMoE.

The paper argues improved routing *complements* dropless computation.
This bench runs the alternative routers (learned top-1, BASE linear
assignment, Sinkhorn, hash) through the same dMoE layer and reports:

- the balance each achieves (dynamic capacity factor a padding system
  would need);
- the modeled expert-computation time under each distribution for
  MegaBlocks (pays actual tokens) vs. the padding approach (pays the
  max) — quantifying how much routing quality matters for each system.
"""

import numpy as np

from repro.autograd import Tensor
from repro.core import dMoE
from repro.gpu.blocksparse import grouped_matmul_time, moe_layer_problems
from repro.gpu.device import A100_SXM4_80GB as A100
from repro.moe import BaseLayerRouter, HashRouter, Router, SinkhornRouter
from repro.moe.capacity import min_capacity_factor
from repro.utils.rng import seed_all

from harness import print_header

HID, FFN, EXPERTS, TOKENS = 32, 64, 8, 512


def _route_all():
    seed_all(0)
    rng = np.random.default_rng(3)
    x = Tensor(rng.standard_normal((TOKENS, HID)).astype(np.float32))
    token_ids = rng.integers(0, 1000, TOKENS)

    routers = {
        "learned top-1": Router(HID, EXPERTS, rng=1, load_balance_coef=0.0),
        "BASE (assignment)": BaseLayerRouter(HID, EXPERTS, rng=2),
        "Sinkhorn": SinkhornRouter(HID, EXPERTS, rng=3),
    }
    results = {}
    for name, router in routers.items():
        res = router(x)
        results[name] = res.expert_indices
    results["hash"] = HashRouter(EXPERTS, seed=0).assign(token_ids)[:, None]
    return results


def test_routing_balance_comparison(benchmark):
    assignments = benchmark(_route_all)
    print_header("§7 extension: routing balance and its cost to each system")
    print(f"{'router':20} {'dyn capacity factor':>20} "
          f"{'MB expert time':>15} {'padded time':>12} {'waste':>7}")
    cfs = {}
    for name, idx in assignments.items():
        cf = min_capacity_factor(idx, EXPERTS)
        cfs[name] = cf
        counts = np.bincount(idx.reshape(-1), minlength=EXPERTS)
        # Scale to realistic per-expert sizes for the cost model.
        scale = 16
        megablocks = grouped_matmul_time(
            moe_layer_problems((counts * scale).tolist(), 1024, 4096, "fwd1"),
            A100,
        ).total_s
        padded = grouped_matmul_time(
            moe_layer_problems([int(counts.max()) * scale] * EXPERTS, 1024, 4096, "fwd1"),
            A100,
        ).total_s
        print(f"{name:20} {cf:>20.2f} {megablocks * 1e6:>13.0f}us "
              f"{padded * 1e6:>10.0f}us {padded / megablocks:>6.2f}x")
        # dMoE never pays more than the padding formulation.
        assert megablocks <= padded * 1.001

    # BASE is perfectly balanced; the learned router is not.
    assert cfs["BASE (assignment)"] <= 1.0 + 1e-9
    assert cfs["learned top-1"] > cfs["BASE (assignment)"]
    # Sinkhorn sits between greedy-learned and perfectly balanced.
    assert cfs["Sinkhorn"] <= cfs["learned top-1"] + 1e-9


def test_all_routers_drive_dmoe(benchmark):
    """Every routing algorithm composes with the dropless layer."""

    def run():
        seed_all(0)
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((128, HID)).astype(np.float32))
        outs = {}
        for name, router in (
            ("learned", None),
            ("base", BaseLayerRouter(HID, EXPERTS, rng=7)),
            ("sinkhorn", SinkhornRouter(HID, EXPERTS, rng=8)),
        ):
            layer = dMoE(HID, FFN, EXPERTS, block_size=8, router=router, rng=9)
            out, _ = layer(x)
            outs[name] = (
                float(np.abs(out.data).mean()),
                layer.last_plan.tokens_per_expert.copy(),
            )
        return outs

    outs = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (mag, counts) in outs.items():
        assert np.isfinite(mag)
        assert counts.sum() == 128

"""Ablation (§5.1.3) — SDD parallelization strategies.

Three ways for a threadblock to find its output block:

1. hybrid blocked-CSR-COO row-index lookup (MegaBlocks production path);
2. binary search through BCSR row offsets;
3. over-launch one threadblock per dense grid position and early-exit
   (Gale et al., 2020) — cheap at 50-90% sparsity, costly at MoE
   sparsity (density 1/num_experts).

Measured both wall-clock (NumPy kernels) and on the A100 model, where
the over-launch overhead must grow with expert count.
"""

import numpy as np

from repro.gpu.blocksparse import (
    block_sparse_op_time,
    grouped_matmul_time,
    moe_layer_problems,
    sdd_overlaunch_time,
)
from repro.gpu.device import A100_SXM4_80GB as A100
from repro.sparse import Topology, sdd
from repro.sparse.ablation import sdd_csr_search, sdd_overlaunch

from harness import print_header

BS = 16
E, TOKENS, HIDDEN, FFN = 8, 8 * BS, 64, 4 * BS


def _problem():
    topo = Topology.block_diagonal(
        np.full(E, TOKENS // BS), np.full(E, FFN // BS), BS
    )
    rng = np.random.default_rng(0)
    x = rng.standard_normal((topo.shape[0], HIDDEN)).astype(np.float32)
    w = rng.standard_normal((HIDDEN, topo.shape[1])).astype(np.float32)
    return topo, x, w


def test_ablation_sdd_production_kernel(benchmark):
    topo, x, w = _problem()
    out = benchmark(lambda: sdd(x, w, topo))
    assert out.nnz_blocks == topo.nnz_blocks


def test_ablation_sdd_csr_search(benchmark):
    topo, x, w = _problem()
    out = benchmark(lambda: sdd_csr_search(x, w, topo))
    np.testing.assert_allclose(out.values, sdd(x, w, topo).values, atol=1e-4)


def test_ablation_sdd_overlaunch(benchmark):
    topo, x, w = _problem()
    out = benchmark(lambda: sdd_overlaunch(x, w, topo))
    np.testing.assert_allclose(out.values, sdd(x, w, topo).values, atol=1e-4)


def test_ablation_overlaunch_cost_grows_with_experts(benchmark):
    """Modeled A100: over-launch overhead vs expert count (§5.1.3)."""

    def sweep():
        rows = []
        for experts in (4, 16, 64, 128):
            tpe = [512] * experts
            base = block_sparse_op_time(tpe, 1024, 4096, "fwd1", A100).total_s
            over = sdd_overlaunch_time(tpe, 1024, 4096, A100).total_s
            rows.append((experts, (over - base) / base))
        return rows

    rows = benchmark(sweep)
    print_header("§5.1.3 Ablation: over-launch overhead vs num_experts (modeled)")
    for experts, overhead in rows:
        print(f"experts={experts:4} overhead={overhead * 100:6.1f}%")
    overheads = [o for _, o in rows]
    assert all(a <= b + 1e-9 for a, b in zip(overheads, overheads[1:]))
    assert overheads[-1] > 0.05  # significant at high expert counts

"""Traced training step: per-phase breakdown, exporter validity, and the
cost of observability.

Trains the Fig-7 *Small* dMoE twice from the same seed — once under a
tracer, once without — and checks the three contracts the observability
layer (``docs/observability.md``) makes:

- **Tracing is free**: both runs produce bit-identical losses and final
  parameters (spans read ``time.perf_counter`` only, never tensor data).
- **The breakdown is complete**: per-phase times recorded into each
  ``TrainingRecord`` sum to within 10% of the measured step time.
- **The export is valid**: the Chrome-trace JSON passes schema
  validation (``ph``/``ts``/``dur`` on every complete event) with
  strictly nested spans, and holds at least 3 ``step`` roots.

Results land in ``BENCH_trace.json`` next to this file.
"""

import json
import os
import time

import numpy as np

from repro.observability.export import chrome_trace, phase_rows, step_table
from repro.observability.export import validate_chrome_trace
from repro.observability.tracing import tracing
from repro.training import Adam, Trainer, TrainerConfig
from repro.utils.rng import seed_all

from harness import (
    GLOBAL_BATCH,
    MICRO_BATCH,
    SMOKE,
    build_model,
    pile_data,
    print_header,
)

STEPS = 4 if SMOKE else 12

#: Full-run ceiling on the per-phase residual: the spans wrapped around
#: ``Trainer._train_step_impl`` must account for >= 90% of the step.
MAX_PHASE_RESIDUAL = 0.10


def _train(traced: bool):
    seed_all(0)
    train, _ = pile_data()
    model = build_model("dmoe", "Small")
    cfg = TrainerConfig(
        global_batch=GLOBAL_BATCH,
        micro_batch=MICRO_BATCH,
        max_steps=STEPS,
        eval_every=0,
        log_every=1,
    )
    trainer = Trainer(
        model, train, config=cfg, optimizer=Adam(model.parameters(), lr=3e-3)
    )
    t0 = time.perf_counter()
    if traced:
        with tracing() as tracer:
            history = trainer.train()
    else:
        tracer = None
        history = trainer.train()
    wall_s = time.perf_counter() - t0
    params = [p.data.copy() for p in model.parameters()]
    return history, params, tracer, wall_s


def test_traced_step_breakdown(benchmark):
    plain_hist, plain_params, _, plain_s = benchmark.pedantic(
        lambda: _train(False), rounds=1, iterations=1
    )
    traced_hist, traced_params, tracer, traced_s = _train(True)

    # Tracing must not perturb the math.
    assert list(plain_hist.losses) == list(traced_hist.losses), (
        "tracing changed the training trajectory"
    )
    assert len(plain_params) == len(traced_params)
    for a, b in zip(plain_params, traced_params):
        assert np.array_equal(a, b), "tracing changed the final parameters"

    # The trace holds one root span per step.
    steps = tracer.roots("step")
    assert len(steps) >= 3, f"expected >= 3 step spans, got {len(steps)}"
    assert len(steps) == STEPS

    # Per-phase times on each record sum to within 10% of the step time.
    # (The closing eval record at step == max_steps is not a training
    # step and carries no timing.)
    step_records = [r for r in traced_hist.records if r.step < STEPS]
    assert len(step_records) == STEPS
    residuals = []
    for rec in step_records:
        assert rec.step_time is not None and rec.phase_times
        covered = sum(rec.phase_times.values())
        residuals.append(1.0 - covered / rec.step_time)
    worst = max(residuals)
    assert worst < MAX_PHASE_RESIDUAL, (
        f"phase times cover only {(1 - worst) * 100:.1f}% of the worst step"
    )

    # The exporter produces schema-valid, strictly nested Chrome JSON.
    trace = chrome_trace(tracer)
    events = validate_chrome_trace(trace)
    assert all(
        e["ph"] == "X" and e["ts"] >= 0 and e["dur"] >= 0 for e in events
    )

    rows = phase_rows(tracer)
    mean_total = float(np.mean([r["_total"] for r in rows]))
    phases = sorted({k for r in rows for k in r} - {"_total"})
    breakdown = {
        p: float(np.mean([r.get(p, 0.0) for r in rows])) for p in phases
    }

    print_header("Traced training step: per-phase breakdown")
    print(step_table(tracer))
    print(
        f"wall clock: plain {plain_s:.2f}s, traced {traced_s:.2f}s "
        f"({(traced_s / plain_s - 1) * 100:+.1f}%)"
    )
    print(f"worst per-step phase residual: {worst * 100:.1f}%")

    result = {
        "config": "Fig7-Small dMoE",
        "smoke": SMOKE,
        "steps": STEPS,
        "mean_step_s": mean_total,
        "phase_breakdown_s": breakdown,
        "worst_phase_residual": worst,
        "trace_events": len(trace["traceEvents"]),
        "plain_wall_s": plain_s,
        "traced_wall_s": traced_s,
    }
    out_path = os.path.join(os.path.dirname(__file__), "BENCH_trace.json")
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

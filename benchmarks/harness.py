"""Shared machinery for the paper-reproduction benchmarks.

Two kinds of measurement coexist here:

- **Scaled-down real training** on the synthetic Pile (CPU, minutes):
  provides the *loss* axes of Figures 2/7/8.  Model sizes are reduced
  stand-ins for the paper's XS/Small/Medium (documented in DESIGN.md);
  results are cached per process so multiple figures can share runs.
- **The analytical A100 model** (:mod:`repro.gpu`): provides the *time*
  axes and the kernel-level comparisons of Figures 4/9 and Table 3.

Absolute numbers therefore differ from the paper; every benchmark prints
the paper's value next to the measured one and asserts only the *shape*
(ordering, growth, bands).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core import dMoE
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.moe import DynamicCapacityMoELayer, MoELayer
from repro.nn import TransformerLM
from repro.training import Adam, History, Trainer, TrainerConfig, WarmupCosineLR
from repro.utils.rng import seed_all

#: Scaled stand-ins for the paper's model sizes (hidden, layers).  The
#: ratios between sizes mirror Table 1's XS/Small/Medium progression.
SCALED_SIZES: Dict[str, Tuple[int, int]] = {
    "XS": (32, 2),
    "Small": (48, 3),
    "Medium": (64, 4),
}

#: Smoke mode (``REPRO_BENCH_SMOKE=1`` or ``pytest --smoke``) shrinks the
#: training sweeps to seconds so the benchmarks run inside tier-1 CI as
#: regression canaries; figure-level quality assertions are relaxed, but
#: every kernel and model path still executes end to end.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")

VOCAB = 128
SEQ = 32
NUM_EXPERTS = 8
BLOCK_SIZE = 8
GLOBAL_BATCH = 16
MICRO_BATCH = 8
TRAIN_STEPS = 10 if SMOKE else 120
EVAL_EVERY = 5 if SMOKE else 15
STREAM_TOKENS = 12_000 if SMOKE else 160_000

_pile_cache: Optional[Tuple[LMDataset, LMDataset]] = None
_run_cache: Dict[tuple, History] = {}


def pile_data() -> Tuple[LMDataset, LMDataset]:
    """The shared synthetic-Pile train/val split (cached)."""
    global _pile_cache
    if _pile_cache is None:
        pile = SyntheticPile(
            PileConfig(vocab_size=VOCAB, num_domains=NUM_EXPERTS, branching=4),
            seed=7,
        )
        ds = LMDataset(pile.token_stream(STREAM_TOKENS, 64), seq_len=SEQ)
        _pile_cache = ds.split(0.05)
    return _pile_cache


def build_model(system: str, size: str, capacity_factor: float = 1.0) -> TransformerLM:
    """``system``: dense | dmoe | tutel-dmoe | moe (fixed capacity)."""
    hidden, layers = SCALED_SIZES[size]
    ffn = 4 * hidden

    if system == "dense":
        factory = None
    elif system == "dmoe":
        factory = lambda i: dMoE(
            hidden, ffn, NUM_EXPERTS, block_size=BLOCK_SIZE, rng=1000 + i,
            load_balance_coef=0.01,
        )
    elif system == "tutel-dmoe":
        factory = lambda i: DynamicCapacityMoELayer(
            hidden_size=hidden, ffn_hidden_size=ffn, num_experts=NUM_EXPERTS,
            rng=1000 + i, load_balance_coef=0.01,
        )
    elif system == "moe":
        factory = lambda i: MoELayer(
            hidden, ffn, NUM_EXPERTS, capacity_factor=capacity_factor,
            rng=1000 + i, load_balance_coef=0.01,
        )
    else:
        raise ValueError(f"unknown system {system!r}")
    return TransformerLM(
        VOCAB, hidden, num_layers=layers, num_heads=max(hidden // 16, 1),
        max_seq_len=SEQ, ffn_factory=factory, rng=5,
    )


def run_training(
    system: str,
    size: str = "XS",
    capacity_factor: float = 1.0,
    steps: int = TRAIN_STEPS,
    lr: float = 3e-3,
) -> History:
    """Train one configuration (cached per process)."""
    key = (system, size, capacity_factor, steps, lr)
    if key in _run_cache:
        return _run_cache[key]
    seed_all(0)
    train, val = pile_data()
    model = build_model(system, size, capacity_factor)
    cfg = TrainerConfig(
        global_batch=GLOBAL_BATCH,
        micro_batch=MICRO_BATCH,
        max_steps=steps,
        eval_every=EVAL_EVERY,
        eval_batches=8,
        log_every=EVAL_EVERY,
    )
    trainer = Trainer(
        model,
        train,
        val,
        cfg,
        optimizer=Adam(model.parameters(), lr=lr),
        schedule=WarmupCosineLR(lr, steps, warmup_steps=steps // 20),
    )
    history = trainer.train()
    _run_cache[key] = history
    return history


def val_curve(history: History):
    """(steps, val_losses) arrays for a run."""
    return history.val_points


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, ones, randn, zeros


class TestConstruction:
    def test_from_list_defaults_float32(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_ndarray_dtype_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_explicit_dtype(self):
        t = Tensor([1, 2], dtype=np.float64)
        assert t.dtype == np.float64

    def test_shape_ndim_size(self):
        t = zeros((2, 3))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_factory_helpers(self):
        assert np.all(ones((2,)).data == 1)
        assert np.all(zeros((2,)).data == 0)
        assert randn(2, 3, rng=0).shape == (2, 3)


class TestBackward:
    def test_scalar_backward_seeds_ones(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [3.0, 3.0])

    def test_nonscalar_requires_explicit_grad(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_explicit_seed_grad(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_diamond_graph_sums_paths(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2.0
        z = y + y  # two paths through y
        z.sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_reused_leaf_in_two_ops(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        out = x * x + x
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])  # 2x + 1

    def test_no_grad_blocks_tape(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert y._node is None
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 1.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_grad_not_propagated_to_non_requiring(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        c = Tensor(np.array([5.0]))
        (x * c).sum().backward()
        assert c.grad is None
        np.testing.assert_allclose(x.grad, [5.0])

    def test_deep_chain(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.1**50], rtol=1e-5)

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, cross_entropy, log_softmax, mse_loss


class TestCrossEntropy:
    def test_matches_manual_nll(self, rng):
        logits = rng.standard_normal((6, 10))
        targets = rng.integers(0, 10, 6)
        got = float(cross_entropy(Tensor(logits, dtype=np.float64), targets).data)
        lp = log_softmax(Tensor(logits, dtype=np.float64)).data
        want = -lp[np.arange(6), targets].mean()
        assert abs(got - want) < 1e-10

    def test_uniform_logits_give_log_vocab(self):
        logits = np.zeros((4, 50))
        loss = float(cross_entropy(Tensor(logits), np.zeros(4, dtype=int)).data)
        assert abs(loss - np.log(50)) < 1e-5

    def test_ignore_index_masks(self, rng):
        logits = rng.standard_normal((4, 5))
        targets = np.array([1, 2, -100, 3])
        full = float(cross_entropy(Tensor(logits, dtype=np.float64), targets).data)
        kept = np.array([0, 1, 3])
        lp = log_softmax(Tensor(logits, dtype=np.float64)).data
        want = -lp[kept, targets[kept]].mean()
        assert abs(full - want) < 1e-10

    def test_ignored_rows_get_zero_grad(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)), requires_grad=True, dtype=np.float64)
        targets = np.array([0, -100, 2])
        cross_entropy(logits, targets).backward()
        np.testing.assert_allclose(logits.grad[1], np.zeros(4))
        assert np.abs(logits.grad[0]).max() > 0

    def test_grad_check(self, rng):
        logits = rng.standard_normal((5, 7))
        targets = rng.integers(0, 7, 5).copy()
        targets[1] = -100
        check_gradients(lambda l: cross_entropy(l, targets), [logits])

    def test_3d_logits(self, rng):
        logits = rng.standard_normal((2, 3, 6))
        targets = rng.integers(0, 6, (2, 3))
        check_gradients(lambda l: cross_entropy(l, targets), [logits])

    def test_perfect_prediction_loss_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = float(cross_entropy(Tensor(logits), np.array([1, 2])).data)
        assert loss < 1e-4


class TestMSE:
    def test_zero_for_equal(self, rng):
        x = rng.standard_normal((4,))
        assert float(mse_loss(Tensor(x), Tensor(x.copy())).data) == 0.0

    def test_value(self):
        p = Tensor(np.array([1.0, 2.0]))
        t = Tensor(np.array([0.0, 0.0]))
        assert abs(float(mse_loss(p, t).data) - 2.5) < 1e-6

    def test_grads(self, rng):
        a = rng.standard_normal((3, 2))
        b = rng.standard_normal((3, 2))
        check_gradients(lambda x, y: mse_loss(x, y), [a, b])

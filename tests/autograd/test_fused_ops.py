"""Fused elementwise ops: gradient correctness and bitwise equivalence
against the unfused reference compositions, plus buffer-arena semantics
(reuse across generations, isolation within one)."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    attention_core,
    bias_dropout_residual,
    bias_gelu,
    check_gradients,
    cross_entropy,
    dropout,
    gelu,
    linear_bias,
    masked_softmax,
    softmax,
    softmax_cross_entropy,
    where,
)
from repro.autograd import arena
from repro.autograd.arena import get_arena, use_arena
from repro.autograd.function import unbroadcast
from repro.sparse import Topology, sparse_bias_add
from repro.sparse.autograd_ops import sparse_bias_gelu
from tests.conftest import random_topology

BS = 4


def _grads(out, *inputs):
    out.backward(np.ones_like(out.data))
    return [t.grad for t in inputs]


# ----------------------------------------------------------------------
# Gradient checks (float64 — exercises the in-place chains in f64)
# ----------------------------------------------------------------------
class TestFusedGradients:
    def test_bias_gelu(self, rng):
        x = rng.standard_normal((3, 5))
        b = rng.standard_normal(5)
        check_gradients(bias_gelu, [x, b])

    def test_bias_gelu_broadcast_rows(self, rng):
        x = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((1, 3, 4))
        check_gradients(bias_gelu, [x, b])

    def test_masked_softmax(self, rng):
        s = rng.standard_normal((2, 4, 4))
        mask = np.tril(np.ones((4, 4), dtype=bool))
        check_gradients(lambda a: masked_softmax(a, mask, 0.5), [s])

    def test_dropout_residual_identity(self, rng):
        y = rng.standard_normal((3, 4))
        r = rng.standard_normal((3, 4))
        check_gradients(
            lambda a, b: bias_dropout_residual(a, None, b, 0.0), [y, r]
        )

    def test_bias_dropout_residual_identity(self, rng):
        y = rng.standard_normal((3, 4))
        b = rng.standard_normal(4)
        r = rng.standard_normal((3, 4))
        check_gradients(
            lambda a, bb, c: bias_dropout_residual(a, bb, c, 0.0), [y, b, r]
        )

    def test_softmax_cross_entropy(self, rng):
        logits = rng.standard_normal((6, 5))
        targets = rng.integers(0, 5, size=6)
        targets[2] = -100
        check_gradients(
            lambda l: softmax_cross_entropy(l, targets), [logits]
        )

    def test_sparse_bias_gelu(self, rng):
        topo = random_topology(rng, 3, 4, BS, 0.6)
        values = rng.standard_normal((topo.nnz_blocks, BS, BS))
        bias = rng.standard_normal(topo.shape[1])
        check_gradients(lambda v, b: sparse_bias_gelu(v, b, topo), [values, bias])

    def test_linear_bias(self, rng):
        x = rng.standard_normal((2, 3, 4))
        w = rng.standard_normal((4, 5))
        b = rng.standard_normal(5)
        check_gradients(linear_bias, [x, w, b])

    def test_attention_core(self, rng):
        heads, hd, seq = 2, 3, 4
        qkv = rng.standard_normal((2, seq, 3 * heads * hd))
        mask = np.tril(np.ones((seq, seq), dtype=bool))
        check_gradients(
            lambda a: attention_core(a, mask, 1.0 / np.sqrt(hd), heads, hd),
            [qkv],
        )


# ----------------------------------------------------------------------
# Bitwise equivalence (float32, the training dtype) — fused forward AND
# backward must match the unfused composition to the last ulp.
# ----------------------------------------------------------------------
class TestBitwiseEquivalence:
    @pytest.mark.parametrize("bshape", [(8,), (1, 8), (4, 8)])
    def test_bias_gelu(self, rng, bshape):
        x = rng.standard_normal((4, 8)).astype(np.float32)
        b = rng.standard_normal(bshape).astype(np.float32)

        xf, bf = Tensor(x, requires_grad=True), Tensor(b, requires_grad=True)
        gx_f, gb_f = _grads(bias_gelu(xf, bf), xf, bf)
        xr, br = Tensor(x, requires_grad=True), Tensor(b, requires_grad=True)
        ref = gelu(xr + br)
        gx_r, gb_r = _grads(ref, xr, br)

        assert np.array_equal(bias_gelu(Tensor(x), Tensor(b)).data, ref.data)
        assert np.array_equal(gx_f, gx_r)
        assert np.array_equal(gb_f, gb_r)

    def test_masked_softmax(self, rng):
        s = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        mask = np.tril(np.ones((6, 6), dtype=bool))
        scale = 1.0 / np.sqrt(16)

        sf = Tensor(s, requires_grad=True)
        fused = masked_softmax(sf, mask, scale)
        (gs_f,) = _grads(fused, sf)

        sr = Tensor(s, requires_grad=True)
        scores = sr * scale
        masked = where(mask, scores, Tensor(np.float32(-1e9)))
        ref = softmax(masked, axis=-1)
        (gs_r,) = _grads(ref, sr)

        assert np.array_equal(fused.data, ref.data)
        assert np.array_equal(gs_f, gs_r)

    def test_linear_bias(self, rng):
        x = rng.standard_normal((3, 4, 6)).astype(np.float32)
        w = rng.standard_normal((6, 5)).astype(np.float32)
        b = rng.standard_normal(5).astype(np.float32)

        xf = Tensor(x, requires_grad=True)
        wf = Tensor(w, requires_grad=True)
        bf = Tensor(b, requires_grad=True)
        gx_f, gw_f, gb_f = _grads(linear_bias(xf, wf, bf), xf, wf, bf)

        xr = Tensor(x, requires_grad=True)
        wr = Tensor(w, requires_grad=True)
        br = Tensor(b, requires_grad=True)
        ref = xr @ wr + br
        gx_r, gw_r, gb_r = _grads(ref, xr, wr, br)

        fused = linear_bias(Tensor(x), Tensor(w), Tensor(b))
        assert np.array_equal(fused.data, ref.data)
        assert np.array_equal(gx_f, gx_r)
        assert np.array_equal(gw_f, gw_r)
        assert np.array_equal(gb_f, gb_r)

    def _attention_reference(self, qkv, mask, scale, heads, hd):
        batch, seq = qkv.shape[0], qkv.shape[1]
        q5 = qkv.reshape((batch, seq, 3, heads, hd)).transpose((2, 0, 3, 1, 4))
        q, k, v = q5[0], q5[1], q5[2]
        scores = (q @ k.transpose((0, 1, 3, 2))) * scale
        masked = where(mask, scores, Tensor(np.float32(-1e9)))
        probs = softmax(masked, axis=-1)
        ctx = probs @ v
        return ctx.transpose((0, 2, 1, 3)).reshape((batch, seq, heads * hd))

    def test_attention_core(self, rng):
        heads, hd, seq, batch = 3, 8, 6, 2
        qkv = rng.standard_normal((batch, seq, 3 * heads * hd)).astype(np.float32)
        mask = np.tril(np.ones((seq, seq), dtype=bool))
        scale = 1.0 / np.sqrt(hd)

        qf = Tensor(qkv, requires_grad=True)
        fused = attention_core(qf, mask, scale, heads, hd)
        (g_f,) = _grads(fused, qf)

        qr = Tensor(qkv, requires_grad=True)
        ref = self._attention_reference(qr, mask, scale, heads, hd)
        (g_r,) = _grads(ref, qr)

        assert np.array_equal(fused.data, ref.data)
        assert np.array_equal(g_f, g_r)

    def test_attention_core_under_arena(self, rng):
        heads, hd, seq, batch = 3, 8, 6, 2
        qkv = rng.standard_normal((batch, seq, 3 * heads * hd)).astype(np.float32)
        mask = np.tril(np.ones((seq, seq), dtype=bool))
        scale = 1.0 / np.sqrt(hd)

        qr = Tensor(qkv, requires_grad=True)
        ref = self._attention_reference(qr, mask, scale, heads, hd)
        (g_r,) = _grads(ref, qr)

        with use_arena():
            qf = Tensor(qkv, requires_grad=True)
            fused = attention_core(qf, mask, scale, heads, hd)
            out = fused.data.copy()
            (g_f,) = _grads(fused, qf)
            g_f = g_f.copy()

        assert np.array_equal(out, ref.data)
        assert np.array_equal(g_f, g_r)

    def test_attention_core_single_head_under_arena(self, rng):
        # One head makes the merge/unmerge transposes contiguous, so the
        # internal reshapes become views — exercises the aliasing guard
        # that keeps the arena from recycling a buffer the result uses.
        heads, hd, seq, batch = 1, 16, 5, 2
        qkv = rng.standard_normal((batch, seq, 3 * heads * hd)).astype(np.float32)
        mask = np.tril(np.ones((seq, seq), dtype=bool))
        scale = 1.0 / np.sqrt(hd)

        qr = Tensor(qkv, requires_grad=True)
        ref = self._attention_reference(qr, mask, scale, heads, hd)
        (g_r,) = _grads(ref, qr)

        with use_arena():
            qf = Tensor(qkv, requires_grad=True)
            fused = attention_core(qf, mask, scale, heads, hd)
            out = fused.data.copy()
            (g_f,) = _grads(fused, qf)
            g_f = g_f.copy()

        assert np.array_equal(out, ref.data)
        assert np.array_equal(g_f, g_r)

    @pytest.mark.parametrize("p,training", [(0.0, True), (0.3, True), (0.3, False)])
    def test_dropout_residual(self, rng, p, training):
        y = rng.standard_normal((4, 8)).astype(np.float32)
        r = rng.standard_normal((4, 8)).astype(np.float32)

        yf, rf = Tensor(y, requires_grad=True), Tensor(r, requires_grad=True)
        fused = bias_dropout_residual(
            yf, None, rf, p, training=training, rng=np.random.default_rng(5)
        )
        gy_f, gr_f = _grads(fused, yf, rf)

        yr, rr = Tensor(y, requires_grad=True), Tensor(r, requires_grad=True)
        ref = rr + dropout(yr, p, training=training, rng=np.random.default_rng(5))
        gy_r, gr_r = _grads(ref, yr, rr)

        assert np.array_equal(fused.data, ref.data)
        assert np.array_equal(gy_f, gy_r)
        assert np.array_equal(gr_f, gr_r)

    def test_bias_dropout_residual(self, rng):
        y = rng.standard_normal((4, 8)).astype(np.float32)
        b = rng.standard_normal(8).astype(np.float32)
        r = rng.standard_normal((4, 8)).astype(np.float32)

        args_f = [Tensor(a, requires_grad=True) for a in (y, b, r)]
        fused = bias_dropout_residual(
            *args_f, 0.25, training=True, rng=np.random.default_rng(9)
        )
        grads_f = _grads(fused, *args_f)

        args_r = [Tensor(a, requires_grad=True) for a in (y, b, r)]
        yr, br, rr = args_r
        ref = rr + dropout(yr + br, 0.25, training=True, rng=np.random.default_rng(9))
        grads_r = _grads(ref, *args_r)

        assert np.array_equal(fused.data, ref.data)
        for gf, gr_ in zip(grads_f, grads_r):
            assert np.array_equal(gf, gr_)

    def test_softmax_cross_entropy(self, rng):
        logits = rng.standard_normal((3, 7, 11)).astype(np.float32)
        targets = rng.integers(0, 11, size=(3, 7))
        targets[0, 2] = -100

        lf = Tensor(logits, requires_grad=True)
        fused = softmax_cross_entropy(lf, targets)
        (gl_f,) = _grads(fused, lf)

        lr = Tensor(logits, requires_grad=True)
        ref = cross_entropy(lr, targets)
        (gl_r,) = _grads(ref, lr)

        assert np.array_equal(fused.data, ref.data)
        assert np.array_equal(gl_f, gl_r)

    def test_sparse_bias_gelu(self, rng):
        topo = random_topology(rng, 3, 4, BS, 0.6)
        values = rng.standard_normal((topo.nnz_blocks, BS, BS)).astype(np.float32)
        bias = rng.standard_normal(topo.shape[1]).astype(np.float32)

        vf, bf = Tensor(values, requires_grad=True), Tensor(bias, requires_grad=True)
        fused = sparse_bias_gelu(vf, bf, topo)
        gv_f, gb_f = _grads(fused, vf, bf)

        vr, br = Tensor(values, requires_grad=True), Tensor(bias, requires_grad=True)
        ref = gelu(sparse_bias_add(vr, br, topo))
        gv_r, gb_r = _grads(ref, vr, br)

        assert np.array_equal(fused.data, ref.data)
        assert np.array_equal(gv_f, gv_r)
        assert np.array_equal(gb_f, gb_r)

    def test_fused_identical_under_arena(self, rng):
        """The same fused computation with the arena on reuses pooled
        buffers but must produce the same bits."""
        x = rng.standard_normal((4, 8)).astype(np.float32)
        b = rng.standard_normal(8).astype(np.float32)

        def run():
            xt, bt = Tensor(x, requires_grad=True), Tensor(b, requires_grad=True)
            out = bias_gelu(xt, bt)
            return out.data.copy(), [g.copy() for g in _grads(out, xt, bt)]

        ref_out, ref_grads = run()
        with use_arena():
            for _ in range(3):  # repeat so pooled buffers actually recycle
                get_arena().next_generation()
                out, grads = run()
                assert np.array_equal(out, ref_out)
                for g, gr_ in zip(grads, ref_grads):
                    assert np.array_equal(g, gr_)


# ----------------------------------------------------------------------
# fp16-sim: mixed dtypes must take the reference fallback, not the
# in-place chain (which would silently promote under NEP 50).
# ----------------------------------------------------------------------
class TestHalfPrecisionFallback:
    def test_bias_gelu_fp16(self, rng):
        x = rng.standard_normal((4, 8)).astype(np.float16)
        b = rng.standard_normal(8).astype(np.float16)
        fused = bias_gelu(Tensor(x), Tensor(b))
        ref = gelu(Tensor(x) + Tensor(b))
        assert fused.data.dtype == ref.data.dtype
        assert np.array_equal(fused.data, ref.data)

    def test_dropout_residual_mixed(self, rng):
        y = rng.standard_normal((4, 8)).astype(np.float16)
        r = rng.standard_normal((4, 8)).astype(np.float32)
        fused = bias_dropout_residual(
            Tensor(y), None, Tensor(r), 0.5, rng=np.random.default_rng(3)
        )
        ref = Tensor(r) + dropout(Tensor(y), 0.5, rng=np.random.default_rng(3))
        assert fused.data.dtype == ref.data.dtype
        assert np.array_equal(fused.data, ref.data)


# ----------------------------------------------------------------------
# Buffer arena semantics
# ----------------------------------------------------------------------
#: Any shape at or above ``arena.MIN_BUCKET`` elements is pooled; the
#: tests use comfortably-large shapes so they exercise the pooled path.
_POOLED = (64, 64)  # 4096 elements


class TestArena:
    def test_disabled_by_default(self):
        buf = arena.empty(_POOLED, np.float32)
        assert not get_arena().owns(buf)

    def test_small_requests_bypass_pool(self):
        with use_arena():
            ar = get_arena()
            ar.clear()
            small = arena.empty((16,), np.float32)
            assert not ar.owns(small)
            assert ar.pooled_bytes == 0
            assert ar.skipped == 1
            ar.clear()

    def test_reuse_across_generations(self):
        with use_arena():
            ar = get_arena()
            ar.clear()
            a = arena.empty(_POOLED, np.float32)
            base_a = a.base
            assert base_a is not None and ar.owns(a)
            ar.next_generation()
            b = arena.empty(_POOLED, np.float32)
            assert b.base is base_a  # same pooled storage, zero new bytes
            ar.clear()

    def test_isolation_within_generation(self):
        with use_arena():
            ar = get_arena()
            ar.clear()
            a = arena.empty(_POOLED, np.float32)
            b = arena.empty(_POOLED, np.float32)
            assert a.base is not b.base  # both live: distinct storage
            ar.clear()

    def test_release_recycles_immediately(self):
        with use_arena():
            ar = get_arena()
            ar.clear()
            a = arena.empty(_POOLED, np.float32)
            base_a = a.base
            arena.release(a)
            b = arena.empty(_POOLED, np.float32)
            assert b.base is base_a
            ar.clear()

    def test_release_accepts_views(self):
        with use_arena():
            ar = get_arena()
            ar.clear()
            a = arena.empty(_POOLED, np.float32)
            base_a = a.base
            arena.release(a.reshape(-1)[: a.size])  # view, not the handle
            b = arena.empty(_POOLED, np.float32)
            assert b.base is base_a
            ar.clear()

    def test_dtype_keys_do_not_alias(self):
        with use_arena():
            ar = get_arena()
            ar.clear()
            a = arena.empty(_POOLED, np.float32)
            ar.next_generation()
            b = arena.empty(_POOLED, np.float64)
            assert b.base is not a.base
            ar.clear()

    def test_zeros_is_zero_filled(self):
        with use_arena():
            ar = get_arena()
            ar.clear()
            a = arena.empty(_POOLED, np.float32)
            a[:] = 7.0
            ar.next_generation()
            z = arena.zeros(_POOLED, np.float32)
            assert np.array_equal(z, np.zeros(_POOLED, np.float32))
            ar.clear()

    def test_hit_rate_reaches_one_post_warmup(self):
        with use_arena():
            ar = get_arena()
            ar.clear()
            shapes = [(65, 37), (4096,), (16, 16, 16)]
            for s in shapes:
                arena.empty(s, np.float32)
            ar.next_generation()
            h0, m0 = ar.hits, ar.misses
            for s in shapes:
                arena.empty(s, np.float32)
            assert ar.hits - h0 == len(shapes)
            assert ar.misses == m0
            ar.clear()


# ----------------------------------------------------------------------
# Satellites: item() error message, unbroadcast fast path
# ----------------------------------------------------------------------
class TestSatellites:
    def test_item_scalar_ok(self):
        assert Tensor(np.float32(3.5)).item() == pytest.approx(3.5)
        assert Tensor(np.ones((1, 1), np.float32)).item() == 1.0

    def test_item_nonscalar_raises(self):
        with pytest.raises(ValueError, match="exactly one element"):
            Tensor(np.ones((2, 3), np.float32)).item()

    def test_unbroadcast_same_shape_is_identity(self):
        g = np.ones((3, 4), np.float32)
        assert unbroadcast(g, (3, 4)) is g

    def test_unbroadcast_reduces(self):
        g = np.ones((2, 3, 4), np.float32)
        assert unbroadcast(g, (3, 4)).shape == (3, 4)
        assert unbroadcast(g, (1, 4)).shape == (1, 4)
        assert np.array_equal(unbroadcast(g, (1, 4)), np.full((1, 4), 6.0))

"""Grouped conv1d: the §2.3 primitive for convolutional experts."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.autograd.ops_conv import conv1d


def _ref_conv1d(x, w, b=None, padding=0):
    """Direct-loop reference convolution (cross-correlation)."""
    bsz, c_in, l = x.shape
    c_out, _, k = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding)))
    l_out = x.shape[-1] - k + 1
    out = np.zeros((bsz, c_out, l_out))
    for n in range(bsz):
        for o in range(c_out):
            for t in range(l_out):
                out[n, o, t] = (x[n, :, t : t + k] * w[o]).sum()
    if b is not None:
        out += b[None, :, None]
    return out


class TestConv1dForward:
    def test_matches_reference(self, rng):
        x = rng.standard_normal((2, 3, 10))
        w = rng.standard_normal((4, 3, 3))
        b = rng.standard_normal(4)
        got = conv1d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64),
                     Tensor(b, dtype=np.float64), padding=1).data
        np.testing.assert_allclose(got, _ref_conv1d(x, w, b, padding=1), atol=1e-10)

    def test_no_padding_shrinks_length(self, rng):
        x = rng.standard_normal((1, 2, 8))
        w = rng.standard_normal((2, 2, 3))
        out = conv1d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64))
        assert out.shape == (1, 2, 6)

    def test_kernel_one_is_pointwise_linear(self, rng):
        x = rng.standard_normal((2, 3, 5))
        w = rng.standard_normal((4, 3, 1))
        got = conv1d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64)).data
        want = np.einsum("bcl,oc->bol", x, w[:, :, 0])
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            conv1d(
                Tensor(rng.standard_normal((1, 3, 8))),
                Tensor(rng.standard_normal((2, 2, 3))),
            )


class TestGroupedConv:
    def test_groups_equal_independent_convs(self, rng):
        """The §2.3 claim: a grouped conv computes every expert's conv in
        one call, identical to looping over experts."""
        experts, cpg_in, cpg_out = 4, 2, 3
        x = rng.standard_normal((2, experts * cpg_in, 12))
        w = rng.standard_normal((experts * cpg_out, cpg_in, 3))
        grouped = conv1d(
            Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64),
            padding=1, groups=experts,
        ).data
        for e in range(experts):
            xe = x[:, e * cpg_in : (e + 1) * cpg_in]
            we = w[e * cpg_out : (e + 1) * cpg_out]
            want = _ref_conv1d(xe, we, padding=1)
            np.testing.assert_allclose(
                grouped[:, e * cpg_out : (e + 1) * cpg_out], want, atol=1e-10
            )

    def test_indivisible_groups_raise(self, rng):
        with pytest.raises(ValueError):
            conv1d(
                Tensor(rng.standard_normal((1, 3, 8))),
                Tensor(rng.standard_normal((4, 1, 3))),
                groups=2,
            )

    def test_wrong_per_group_channels_raise(self, rng):
        with pytest.raises(ValueError):
            conv1d(
                Tensor(rng.standard_normal((1, 4, 8))),
                Tensor(rng.standard_normal((4, 4, 3))),  # should be 2/group
                groups=2,
            )


class TestConv1dGradients:
    def test_gradcheck_basic(self, rng):
        x = rng.standard_normal((2, 2, 6))
        w = rng.standard_normal((3, 2, 3))
        b = rng.standard_normal(3)
        check_gradients(
            lambda xx, ww, bb: conv1d(xx, ww, bb, padding=1), [x, w, b]
        )

    def test_gradcheck_grouped(self, rng):
        x = rng.standard_normal((1, 4, 5))
        w = rng.standard_normal((4, 2, 3))
        b = rng.standard_normal(4)
        check_gradients(
            lambda xx, ww, bb: conv1d(xx, ww, bb, padding=1, groups=2),
            [x, w, b],
        )

    def test_gradcheck_no_padding(self, rng):
        x = rng.standard_normal((1, 2, 7))
        w = rng.standard_normal((2, 2, 3))
        b = rng.standard_normal(2)
        check_gradients(lambda xx, ww, bb: conv1d(xx, ww, bb), [x, w, b])

    def test_bias_optional(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 6)), requires_grad=True, dtype=np.float64)
        w = Tensor(rng.standard_normal((2, 2, 3)), requires_grad=True, dtype=np.float64)
        out = conv1d(x, w, padding=1)
        out.sum().backward()
        assert x.grad is not None and w.grad is not None

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import (
    Tensor,
    check_gradients,
    clip,
    concatenate,
    matmul,
    max_,
    maximum,
    mean,
    stack,
    sum_,
    where,
)

ARRAYS = hnp.arrays(
    np.float64,
    hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(-5, 5, allow_nan=False),
)


class TestElementwiseGradients:
    def test_add_broadcast(self, rng):
        check_gradients(
            lambda a, b: a + b, [rng.standard_normal((3, 4)), rng.standard_normal(4)]
        )

    def test_sub_and_rsub(self, rng):
        x = rng.standard_normal((2, 3))
        check_gradients(lambda a: 1.0 - a, [x])
        check_gradients(lambda a: a - 2.0, [x])

    def test_mul_broadcast_scalar_tensor(self, rng):
        check_gradients(
            lambda a, b: a * b,
            [rng.standard_normal((2, 3)), rng.standard_normal((1, 3))],
        )

    def test_div(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3)) + 3.0
        check_gradients(lambda x, y: x / y, [a, b])

    def test_pow(self, rng):
        a = np.abs(rng.standard_normal((3,))) + 0.5
        check_gradients(lambda x: x**3.0, [a])

    def test_neg_exp_log_sqrt_tanh_abs(self, rng):
        a = np.abs(rng.standard_normal((4,))) + 0.5
        check_gradients(lambda x: -x, [a])
        check_gradients(lambda x: x.exp(), [a])
        check_gradients(lambda x: x.log(), [a])
        check_gradients(lambda x: x.sqrt(), [a])
        check_gradients(lambda x: x.tanh(), [a])
        check_gradients(lambda x: x.abs(), [a])

    def test_maximum(self, rng):
        a = rng.standard_normal((5,))
        b = rng.standard_normal((5,))
        check_gradients(lambda x, y: maximum(x, y), [a, b])

    def test_clip(self, rng):
        a = rng.standard_normal((10,)) * 2
        check_gradients(lambda x: clip(x, -1.0, 1.0), [a])

    def test_where(self, rng):
        cond = rng.random((3, 3)) > 0.5
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3))
        check_gradients(lambda x, y: where(cond, x, y), [a, b])


class TestReductions:
    def test_sum_all(self, rng):
        check_gradients(lambda x: sum_(x), [rng.standard_normal((3, 4))])

    def test_sum_axis_keepdims(self, rng):
        check_gradients(
            lambda x: sum_(x, axis=1, keepdims=True), [rng.standard_normal((3, 4))]
        )

    def test_sum_negative_axis(self, rng):
        check_gradients(lambda x: sum_(x, axis=-1), [rng.standard_normal((2, 3, 4))])

    def test_mean(self, rng):
        check_gradients(lambda x: mean(x, axis=0), [rng.standard_normal((3, 4))])

    def test_max_unique(self, rng):
        a = rng.standard_normal((3, 5)) + np.arange(5) * 10
        check_gradients(lambda x: max_(x, axis=1), [a])

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True, dtype=np.float64)
        max_(x, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_forward_values(self, rng):
        a = rng.standard_normal((3, 4))
        np.testing.assert_allclose(sum_(Tensor(a), axis=0).data, a.sum(axis=0))
        np.testing.assert_allclose(mean(Tensor(a)).data, a.mean())
        np.testing.assert_allclose(max_(Tensor(a), axis=1).data, a.max(axis=1))


class TestShapes:
    def test_reshape_roundtrip(self, rng):
        check_gradients(
            lambda x: x.reshape((4, 3)).reshape((2, 6)), [rng.standard_normal((3, 4))]
        )

    def test_transpose_default(self, rng):
        check_gradients(lambda x: x.transpose(), [rng.standard_normal((3, 4))])

    def test_transpose_axes(self, rng):
        check_gradients(
            lambda x: x.transpose((2, 0, 1)), [rng.standard_normal((2, 3, 4))]
        )

    def test_getitem_slice(self, rng):
        check_gradients(lambda x: x[1:3], [rng.standard_normal((5, 2))])

    def test_getitem_fancy_with_duplicates(self, rng):
        idx = np.array([0, 2, 2, 1])
        check_gradients(lambda x: x[idx], [rng.standard_normal((4, 3))])

    def test_concatenate(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((4, 3))
        check_gradients(lambda x, y: concatenate([x, y], axis=0), [a, b])

    def test_stack(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((2, 3))
        check_gradients(lambda x, y: stack([x, y], axis=1), [a, b])


class TestMatmul:
    def test_2d(self, rng):
        check_gradients(
            lambda a, b: matmul(a, b),
            [rng.standard_normal((3, 4)), rng.standard_normal((4, 2))],
        )

    def test_batched(self, rng):
        check_gradients(
            lambda a, b: matmul(a, b),
            [rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 4, 5))],
        )

    def test_broadcast_rhs(self, rng):
        check_gradients(
            lambda a, b: matmul(a, b),
            [rng.standard_normal((2, 3, 4)), rng.standard_normal((4, 5))],
        )

    def test_forward_matches_numpy(self, rng):
        a, b = rng.standard_normal((5, 7)), rng.standard_normal((7, 2))
        np.testing.assert_allclose(matmul(Tensor(a), Tensor(b)).data, a @ b)


class TestPropertyBased:
    @given(ARRAYS)
    def test_double_negation_identity(self, arr):
        t = Tensor(arr)
        np.testing.assert_allclose((-(-t)).data, arr)

    @given(ARRAYS)
    def test_sum_linear_in_scaling(self, arr):
        t = Tensor(arr)
        np.testing.assert_allclose(
            sum_(t * 2.0).data, 2.0 * sum_(t).data, rtol=1e-6, atol=1e-6
        )

    @given(ARRAYS)
    def test_mean_consistent_with_sum(self, arr):
        t = Tensor(arr)
        np.testing.assert_allclose(
            mean(t).data, sum_(t).data / arr.size, rtol=1e-6, atol=1e-6
        )

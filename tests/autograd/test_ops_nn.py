import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    dropout,
    embedding,
    gather_rows,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    scatter_rows,
    sigmoid,
    softmax,
)


class TestActivations:
    def test_relu_forward(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(relu(x).data, [0.0, 0.0, 2.0])

    def test_relu_grad(self, rng):
        check_gradients(lambda x: relu(x), [rng.standard_normal((10,)) + 0.01])

    def test_gelu_matches_tanh_approximation(self, rng):
        x = rng.standard_normal((100,))
        got = gelu(Tensor(x, dtype=np.float64)).data
        inner = np.sqrt(2 / np.pi) * (x + 0.044715 * x**3)
        want = 0.5 * x * (1 + np.tanh(inner))
        np.testing.assert_allclose(got, want, rtol=1e-6)

    def test_gelu_grad(self, rng):
        check_gradients(lambda x: gelu(x), [rng.standard_normal((8,))])

    def test_sigmoid_grad(self, rng):
        check_gradients(lambda x: sigmoid(x), [rng.standard_normal((8,))])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        s = softmax(Tensor(rng.standard_normal((4, 7))), axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        a = softmax(Tensor(x, dtype=np.float64)).data
        b = softmax(Tensor(x + 1000.0, dtype=np.float64)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_grad(self, rng):
        check_gradients(lambda x: softmax(x, axis=-1), [rng.standard_normal((3, 5))])

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.standard_normal((3, 5)), dtype=np.float64)
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), atol=1e-12
        )

    def test_log_softmax_grad(self, rng):
        check_gradients(lambda x: log_softmax(x), [rng.standard_normal((3, 5))])


class TestLayerNorm:
    def test_normalizes(self, rng):
        x = rng.standard_normal((6, 8))
        out = layer_norm(
            Tensor(x, dtype=np.float64),
            Tensor(np.ones(8), dtype=np.float64),
            Tensor(np.zeros(8), dtype=np.float64),
        ).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-4)

    def test_grads_all_inputs(self, rng):
        x = rng.standard_normal((4, 6))
        w = rng.standard_normal(6)
        b = rng.standard_normal(6)
        check_gradients(lambda a, ww, bb: layer_norm(a, ww, bb), [x, w, b])

    def test_3d_input(self, rng):
        x = rng.standard_normal((2, 3, 4))
        w = rng.standard_normal(4)
        b = rng.standard_normal(4)
        check_gradients(lambda a, ww, bb: layer_norm(a, ww, bb), [x, w, b])


class TestDropout:
    def test_identity_when_eval(self, rng):
        x = Tensor(rng.standard_normal((100,)))
        out = dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_identity_when_p_zero(self, rng):
        x = Tensor(rng.standard_normal((100,)))
        assert dropout(x, 0.0).data is x.data

    def test_scaling_preserves_expectation(self, rng):
        x = Tensor(np.ones(200_00, dtype=np.float64))
        out = dropout(x, 0.3, rng=0)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_p_one_raises(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.0)

    def test_grad_matches_mask(self, rng):
        x = Tensor(rng.standard_normal((50,)).astype(np.float64), requires_grad=True)
        out = dropout(x, 0.5, rng=1)
        out.sum().backward()
        mask = out.data / np.where(x.data == 0, 1, x.data)
        np.testing.assert_allclose(x.grad, mask, atol=1e-6)


class TestEmbedding:
    def test_lookup(self, rng):
        w = rng.standard_normal((10, 4))
        ids = np.array([[1, 3], [0, 1]])
        np.testing.assert_array_equal(
            embedding(Tensor(w, dtype=np.float64), ids).data, w[ids]
        )

    def test_grad_accumulates_duplicates(self, rng):
        w = rng.standard_normal((5, 3))
        ids = np.array([1, 1, 2])
        check_gradients(lambda x: embedding(x, ids), [w])


class TestGatherScatterRows:
    def test_gather_with_padding(self, rng):
        x = rng.standard_normal((4, 3))
        idx = np.array([2, -1, 0])
        out = gather_rows(Tensor(x, dtype=np.float64), idx).data
        np.testing.assert_array_equal(out[0], x[2])
        np.testing.assert_array_equal(out[1], np.zeros(3))
        np.testing.assert_array_equal(out[2], x[0])

    def test_gather_grad(self, rng):
        idx = np.array([0, 2, -1, 2])
        check_gradients(lambda x: gather_rows(x, idx), [rng.standard_normal((3, 2))])

    def test_scatter_sums_duplicates(self, rng):
        x = np.ones((3, 2))
        idx = np.array([1, 1, -1])
        out = scatter_rows(Tensor(x, dtype=np.float64), idx, 3).data
        np.testing.assert_array_equal(out[1], [2.0, 2.0])
        np.testing.assert_array_equal(out[0], [0.0, 0.0])

    def test_scatter_grad(self, rng):
        idx = np.array([1, 0, -1, 1])
        check_gradients(
            lambda x: scatter_rows(x, idx, 3), [rng.standard_normal((4, 2))]
        )

    def test_scatter_is_gather_adjoint(self, rng):
        """<scatter(x), y> == <x, gather(y)> — the defining adjoint pair."""
        idx = np.array([0, 3, -1, 1, 3])
        x = rng.standard_normal((5, 2))
        y = rng.standard_normal((4, 2))
        lhs = (scatter_rows(Tensor(x, dtype=np.float64), idx, 4).data * y).sum()
        rhs = (x * gather_rows(Tensor(y, dtype=np.float64), idx).data).sum()
        assert abs(lhs - rhs) < 1e-10

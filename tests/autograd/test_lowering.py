"""Native-code lowering: differential fuzz against the NumPy oracle.

The generated-C path (``repro.autograd.lower``) must be bit-identical
to NumPy replay, so these tests compare each prelude kernel against the
exact ufunc sequence it replaces — float equality, never approx — plus
structural units: the per-record layout descriptors graphs are lowered
from, strict-mode :class:`LoweringError` on unpinnable dynamic
arguments, graph-level attach bit-identity, the content-addressed
compile cache, and the ``REPRO_NO_CC`` kill switch.
"""

import numpy as np
import pytest

from repro.autograd import CaptureSession, Tensor, arena
from repro.autograd import lower
from repro.autograd.lower import csrc, runtime, toolchain
from repro.autograd.lower.segmenter import LoweringError
from repro.observability import registry
from repro.training import Adam
from repro.training.optim import clip_grad_norm
from repro.training import optim as optim_mod


@pytest.fixture(autouse=True)
def _isolated_toolchain(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LOWER_CACHE", str(tmp_path / "lower-cache"))
    toolchain._reset_for_tests()
    yield
    toolchain._reset_for_tests()
    optim_mod._CLIP_CC = None


needs_cc = pytest.mark.skipif(
    not lower.cc_available(), reason="no C toolchain in this environment"
)


def _lib():
    lib = toolchain.compile_and_load(csrc.PRELUDE, tag="prelude")
    assert lib is not None
    runtime.bind(lib)
    return lib


def _ptrs(*arrays):
    return [a.ctypes.data for a in arrays]


# ----------------------------------------------------------------------
# Prelude kernels vs their NumPy ufunc sequences (bitwise).
# ----------------------------------------------------------------------
@needs_cc
class TestKernelFuzz:
    def test_gather_rows(self):
        lib = _lib()
        rng = np.random.default_rng(0)
        for _ in range(20):
            n, h, rows = rng.integers(1, 50), rng.integers(1, 40), rng.integers(1, 30)
            x = rng.standard_normal((rows, h)).astype(np.float32)
            ids = rng.integers(-1, rows, size=n).astype(np.int64)
            out = np.empty((n, h), np.float32)
            lib.repro_gather_rows_f32(*_ptrs(x, ids, out), int(n), int(h))
            ref = np.where((ids >= 0)[:, None], x[np.maximum(ids, 0)], 0.0).astype(
                np.float32
            )
            np.testing.assert_array_equal(out, ref)

    def test_zero_scat_add(self):
        lib = _lib()
        rng = np.random.default_rng(1)
        for _ in range(20):
            n, h, nout = rng.integers(1, 120), rng.integers(1, 24), rng.integers(1, 20)
            rows = rng.standard_normal((n, h)).astype(np.float32)
            idx = rng.integers(-1, nout, size=n).astype(np.int64)
            out = np.empty((nout, h), np.float32)
            scratch = np.empty(int(nout) + 1 + int(n), np.int64)
            lib.repro_zero_scat_add_f32(
                *_ptrs(out, idx, rows), int(n), int(h), int(nout),
                scratch.ctypes.data,
            )
            from repro.autograd.ops_basic import _scatter_add_rows

            ref = np.zeros((nout, h), np.float32)
            keep = idx >= 0
            _scatter_add_rows(ref, idx[keep], rows[keep])
            np.testing.assert_array_equal(out, ref)

    def test_gelu_bwd(self):
        from repro.autograd.ops_fused import _gelu_bwd

        lib = _lib()
        rng = np.random.default_rng(2)
        K = float(3 * 0.044715)
        from repro.autograd.ops_nn import _GELU_C

        for _ in range(20):
            n = int(rng.integers(1, 4000))
            g = rng.standard_normal(n).astype(np.float32)
            a = (rng.standard_normal(n) * 3).astype(np.float32)
            t = np.tanh(a).astype(np.float32)
            out = np.empty(n, np.float32)
            lib.repro_gelu_bwd_f32(
                *_ptrs(g, a, t, out), n, K, float(_GELU_C)
            )
            ref = _gelu_bwd(g, a.copy(), t.copy())
            np.testing.assert_array_equal(out, ref)

    def test_sum_lead_matches_numpy_for_multirow_heads(self):
        lib = _lib()
        rng = np.random.default_rng(3)
        # h > 1 only: NumPy reduces a 1-wide head pairwise, which the
        # sequential row loop does not replicate (the linbias closure
        # guards on h > 1 for exactly this reason).
        for _ in range(30):
            r, h = int(rng.integers(1, 400)), int(rng.integers(2, 60))
            a = (rng.standard_normal((r, h)) * 10).astype(np.float32)
            out = np.empty(h, np.float32)
            lib.repro_sum_lead_f32(*_ptrs(a, out), r, h)
            np.testing.assert_array_equal(out, a.sum(axis=0))

    def test_adam_multi_matches_numpy_reference(self):
        def build():
            from repro.nn.module import Parameter

            ps = []
            r = np.random.default_rng(7)
            for shape in [(64, 32), (32,), (5, 3, 8), (1,)]:
                p = Parameter(r.standard_normal(shape).astype(np.float32))
                p.grad = r.standard_normal(shape).astype(np.float32)
                ps.append(p)
            return ps

        for wd in (0.0, 0.01):
            ref_opt = Adam(build(), lr=1e-2, weight_decay=wd)
            cc_opt = Adam(build(), lr=1e-2, weight_decay=wd)
            assert lower.attach_adam(cc_opt)
            with arena.use_arena():
                for _ in range(3):
                    ref_opt.step()
                    cc_opt.step()
            for a, b in zip(ref_opt.params, cc_opt.params):
                np.testing.assert_array_equal(a.data, b.data)
            for a, b in zip(ref_opt._m, cc_opt._m):
                np.testing.assert_array_equal(a, b)
            for a, b in zip(ref_opt._v, cc_opt._v):
                np.testing.assert_array_equal(a, b)

    def test_clip_grad_norm_native_matches_numpy(self):
        from repro.nn.module import Parameter

        def build():
            r = np.random.default_rng(11)
            ps = []
            for shape in [(700,), (31, 9), (4,)]:
                p = Parameter(r.standard_normal(shape).astype(np.float32))
                p.grad = (r.standard_normal(shape) * 5).astype(np.float32)
                ps.append(p)
            return ps

        ref = build()
        with arena.use_arena():
            assert optim_mod._CLIP_CC is None
            ref_norm = clip_grad_norm(ref, 1.0)

            cc = build()
            opt = Adam(cc)  # attach installs the clip hook
            assert lower.attach_adam(opt)
            assert optim_mod._CLIP_CC is not None
            cc_norm = clip_grad_norm(cc, 1.0)

        assert cc_norm == ref_norm  # float equality: bitwise
        for a, b in zip(ref, cc):
            np.testing.assert_array_equal(a.grad, b.grad)


# ----------------------------------------------------------------------
# GEMM / MoE-dispatch kernels (this PR) vs their exact eager sequences.
# ----------------------------------------------------------------------
@needs_cc
class TestGemmMoeKernelFuzz:
    """Differential fuzz for the grouped-GEMM and router kernels.

    Every comparison is bitwise (``assert_array_equal`` on float32, or
    uint32 views where NaN payloads matter).  The GEMM kernels route
    through the same OpenBLAS ``sgemm`` NumPy links, so they are gated
    on :func:`blas.available` exactly like the segmenter is.
    """

    def test_softmax_forward_pipeline(self):
        from repro.autograd.ops_nn import _Softmax

        lib = _lib()
        rng = np.random.default_rng(5)
        for it in range(40):
            rows = int(rng.integers(1, 40))
            n = int(rng.integers(2, 200))
            x = (rng.standard_normal((rows, n)) * 4).astype(np.float32)
            # Signed zeros and exact ties: np.maximum returns its second
            # operand on ties, so the row max keeps the *last* equal
            # element — observable only through -0.0 vs +0.0 in x - max.
            if it % 3 == 0:
                x[rng.integers(0, rows)] = rng.choice(
                    [-0.0, 0.0, 1.5], size=n
                ).astype(np.float32)
            if it % 5 == 0:
                r = int(rng.integers(0, rows))
                x[r, : n // 2] = x[r, n // 2 : 2 * (n // 2)][::-1]
            ref = x - x.max(axis=-1, keepdims=True)
            buf = np.empty_like(x)
            lib.repro_softmax_fwd1_f32(*_ptrs(x, buf), rows, n)
            np.testing.assert_array_equal(
                buf.view(np.uint32), ref.view(np.uint32)
            )
            np.exp(ref, out=ref)
            np.divide(ref, ref.sum(axis=-1, keepdims=True), out=ref)
            np.exp(buf, out=buf)
            lib.repro_attn_fwd2_f32(buf.ctypes.data, rows, n)
            np.testing.assert_array_equal(buf, ref)
            # Full eager op for good measure.
            from repro.autograd.function import Context

            ctx = Context()
            np.testing.assert_array_equal(buf, _Softmax.forward(ctx, x))

    def test_softmax_backward_matches_eager_sequence(self):
        lib = _lib()
        rng = np.random.default_rng(6)
        for _ in range(30):
            rows = int(rng.integers(1, 30))
            n = int(rng.integers(2, 120))
            out = rng.random((rows, n)).astype(np.float32)
            g = rng.standard_normal((rows, n)).astype(np.float32)
            ref = np.multiply(g, out)
            dot = ref.sum(axis=-1, keepdims=True)
            ref = np.subtract(g, dot)
            ref = np.multiply(out, ref)
            got = np.empty_like(g)
            lib.repro_softmax_bwd_f32(*_ptrs(g, out, got), rows, n)
            np.testing.assert_array_equal(got, ref)

    def test_topk1_matches_stable_argsort(self):
        lib = _lib()
        rng = np.random.default_rng(7)
        for it in range(40):
            rows = int(rng.integers(1, 50))
            n = int(rng.integers(1, 16))
            s = rng.standard_normal((rows, n)).astype(np.float32)
            if it % 3 == 0:  # ties: stable sort keeps the first max
                s[:, : max(1, n // 2)] = 0.25
            if it % 4 == 0:  # NaNs sort last under -s argsort
                s[rng.integers(0, rows), rng.integers(0, n)] = np.nan
            if it % 7 == 0:
                s[rng.integers(0, rows)] = np.nan  # all-NaN row -> idx 0
            ref = (-s).argsort(axis=-1, kind="stable")[..., :1]
            got = np.empty((rows, 1), np.int64)
            lib.repro_topk1_i64(*_ptrs(s, got), rows, n)
            np.testing.assert_array_equal(got, ref)

    def test_lbfrac_matches_bincount_sequence(self):
        lib = _lib()
        rng = np.random.default_rng(8)
        for nt, E in [(0, 4), (1, 1), (17, 4), (256, 8), (1000, 3)]:
            idx = rng.integers(0, E, size=nt).astype(np.int64)
            ref = (
                np.bincount(idx, minlength=E).astype(np.float64)
                / max(idx.size, 1)
            ).astype(np.float32)
            got = np.empty(E, np.float32)
            counts = np.empty(E, np.int64)
            lib.repro_lbfrac_f32(*_ptrs(idx, got), nt, E, counts.ctypes.data)
            np.testing.assert_array_equal(got, ref)

    def test_allfinite(self):
        lib = _lib()
        rng = np.random.default_rng(9)
        for bad in (None, np.nan, np.inf, -np.inf):
            x = rng.standard_normal(777).astype(np.float32)
            if bad is not None:
                x[int(rng.integers(0, x.size))] = bad
            ref = bool(np.isfinite(x).all())
            assert bool(lib.repro_allfinite_f32(x.ctypes.data, x.size)) == ref

    @staticmethod
    def _random_topology(rng, bs):
        from repro.sparse import Topology

        ne = int(rng.integers(1, 6))
        rows = rng.integers(0, 5, size=ne)  # empty experts allowed
        cols = rng.integers(1, 4, size=ne)
        if rows.sum() == 0:
            rows[0] = 1
        return Topology.block_diagonal(rows, cols, bs)

    def test_grouped_kernels_all_transpose_variants(self):
        """repro_grouped_{sdd,dsd,dds}_f32 vs the eager grouped
        executors over ragged block-diagonal topologies — every
        (trans_a/trans_b/trans_s) variant the backward swaps emit."""
        from repro.sparse import dispatch

        lib = _lib()
        rng = np.random.default_rng(10)
        tried = 0
        for it in range(60):
            bs = int(rng.choice([2, 3, 4, 8]))
            topo = self._random_topology(rng, bs)
            plan = dispatch.analyze(topo)
            if plan is None:
                continue
            tried += 1
            gt = dispatch.group_table(topo)
            G = gt.shape[0]
            M, N = topo.shape
            k = int(rng.integers(2, 10))
            n = int(rng.integers(2, 10))
            mo = int(rng.integers(2, 10))
            nnz = topo.nnz_blocks
            vals = rng.standard_normal((nnz, bs, bs)).astype(np.float32)
            stage = np.empty(plan.max_group_blocks * bs * bs, np.float32)
            f4 = np.dtype(np.float32)

            for at in (0, 1):
                for bt in (0, 1):
                    a = rng.standard_normal(
                        (k, M) if at else (M, k)
                    ).astype(np.float32)
                    b = rng.standard_normal(
                        (N, k) if bt else (k, N)
                    ).astype(np.float32)
                    ref = dispatch.grouped_sdd(
                        a.T if at else a, b.T if bt else b, topo, plan, f4
                    )
                    got = np.empty((nnz, bs, bs), np.float32)
                    lib.repro_grouped_sdd_f32(
                        a.ctypes.data, a.shape[1], at,
                        b.ctypes.data, b.shape[1], bt,
                        got.ctypes.data, gt.ctypes.data, G, k, bs,
                        stage.ctypes.data,
                    )
                    np.testing.assert_array_equal(got, ref)

            for st in (0, 1):
                for bt in (0, 1):
                    kdim = M if st else N
                    b = rng.standard_normal(
                        (n, kdim) if bt else (kdim, n)
                    ).astype(np.float32)
                    ref = dispatch.grouped_dsd(
                        vals, b.T if bt else b, topo, plan, bool(st), f4
                    )
                    m_eff = N if st else M
                    got = np.zeros((m_eff, n), np.float32)
                    lib.repro_grouped_dsd_f32(
                        vals.ctypes.data, b.ctypes.data, b.shape[1], bt,
                        got.ctypes.data, n, gt.ctypes.data, G, st, bs,
                        stage.ctypes.data,
                    )
                    np.testing.assert_array_equal(got, ref)

            for at in (0, 1):
                for st in (0, 1):
                    kdim = N if st else M
                    a = rng.standard_normal(
                        (kdim, mo) if at else (mo, kdim)
                    ).astype(np.float32)
                    ref = dispatch.grouped_dds(
                        a.T if at else a, vals, topo, plan, bool(st), f4
                    )
                    n_eff = M if st else N
                    got = np.zeros((mo, n_eff), np.float32)
                    lib.repro_grouped_dds_f32(
                        a.ctypes.data, a.shape[1], at, vals.ctypes.data,
                        got.ctypes.data, mo, n_eff, gt.ctypes.data, G, st,
                        bs, stage.ctypes.data,
                    )
                    np.testing.assert_array_equal(got, ref)
        assert tried >= 30  # the fuzz actually exercised grouped plans

    def test_grouped_sdd_wobble_across_calls(self):
        """One bound kernel serves topologies of different shapes
        back-to-back — the live-row re-read that replaces guard
        fallbacks when tokens-per-expert wobbles between replays."""
        from repro.sparse import Topology, dispatch

        lib = _lib()
        rng = np.random.default_rng(12)
        bs, k = 4, 8
        for rows_per_e in ([2, 3, 1], [4, 1, 2], [1, 1, 1], [3, 0, 5]):
            topo = Topology.block_diagonal(
                np.asarray(rows_per_e), np.full(3, 2), bs
            )
            plan = dispatch.analyze(topo)
            gt = dispatch.group_table(topo)
            M, N = topo.shape
            x = rng.standard_normal((M, k)).astype(np.float32)
            w = rng.standard_normal((k, N)).astype(np.float32)
            ref = dispatch.grouped_sdd(x, w, topo, plan, np.dtype(np.float32))
            got = np.empty((topo.nnz_blocks, bs, bs), np.float32)
            stage = np.empty(plan.max_group_blocks * bs * bs, np.float32)
            lib.repro_grouped_sdd_f32(
                x.ctypes.data, k, 0, w.ctypes.data, N, 0, got.ctypes.data,
                gt.ctypes.data, gt.shape[0], k, bs, stage.ctypes.data,
            )
            np.testing.assert_array_equal(got, ref)

    def test_linbias_and_mm_match_numpy(self):
        from repro.autograd.lower import blas

        if not blas.available():
            pytest.skip("no cblas_sgemm symbol in this NumPy build")
        lib = _lib()
        rng = np.random.default_rng(13)
        for _ in range(40):
            m = int(rng.integers(2, 30))
            k = int(rng.integers(2, 30))
            n = int(rng.integers(2, 30))
            batch = int(rng.choice([1, 1, int(rng.integers(2, 5))]))
            lead = (m, k) if batch == 1 else (batch, m, k)
            x = rng.standard_normal(lead).astype(np.float32)
            for trans in (0, 1):
                # trans=1 stores w row-major (n, k) and the kernel
                # multiplies by its transpose — the F-contiguous view
                # eager sees for tied / reshaped weights.
                wst = rng.standard_normal(
                    (n, k) if trans else (k, n)
                ).astype(np.float32)
                w = wst.T if trans else wst
                b = rng.standard_normal(n).astype(np.float32)
                ref = np.matmul(x, w)
                ref = np.add(ref, b, out=ref)
                got = np.empty(ref.shape, np.float32)
                lib.repro_linbias_f32(
                    *_ptrs(x, wst, b, got), batch, m, k, n, trans,
                    wst.shape[1],
                )
                np.testing.assert_array_equal(got, ref)
                ref2 = np.matmul(x, w)
                got2 = np.empty(ref2.shape, np.float32)
                lib.repro_mm_f32(
                    *_ptrs(x, wst, got2), batch, m, k, n, trans,
                    wst.shape[1],
                )
                np.testing.assert_array_equal(got2, ref2)

    def test_segsum_tr_matches_reduceat_tail(self):
        """The transpose-segment bias reduction vs the exact eager
        sequence (gather by transpose offsets + pairwise reduceat)."""
        from repro.autograd.lower.runtime import _tr_segments
        from repro.sparse.ops import segment_meta

        lib = _lib()
        rng = np.random.default_rng(14)
        for _ in range(40):
            bs = int(rng.choice([2, 4, 8]))
            topo = self._random_topology(rng, bs)
            nnz = topo.nnz_blocks
            colsum = rng.standard_normal((nnz, bs)).astype(np.float32)
            nonempty, starts = segment_meta(topo, transpose=True)
            n_cols_b = topo.shape[1] // bs
            ref = np.zeros((n_cols_b, bs), np.float32)
            if len(nonempty):
                ref[nonempty] = np.add.reduceat(
                    colsum[topo.transpose_block_offsets], starts, axis=0
                )
            got = np.zeros((n_cols_b, bs), np.float32)
            if len(nonempty):
                tbo, nerow, st = _tr_segments(topo, nonempty, starts)
                lib.repro_segsum_tr_f32(
                    *_ptrs(colsum, tbo, nerow, st, got), len(nerow), bs
                )
            np.testing.assert_array_equal(got, ref)


# ----------------------------------------------------------------------
# Structural units.
# ----------------------------------------------------------------------
def _capture_tiny(extra_input=None):
    """A minimal captured graph: x*w + (b or dynamic scalar)."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((4, 8)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((4, 8)).astype(np.float32), requires_grad=True)
    inputs = {"inp": x.data}
    if extra_input is not None:
        inputs["s"] = extra_input
    sess = CaptureSession(("tiny",), inputs).begin()
    try:
        y = x * w
        if extra_input is not None:
            # Feed the registered NumPy scalar to _Add *unwrapped* — the
            # shape a host-produced dynamic scalar takes when it skips
            # the as_tensor coercion: a dynamic operand with no layout
            # descriptor to bake.  no_grad keeps it off the tape (the
            # record list still gets it; capture records non-grad ops).
            from repro.autograd import no_grad
            from repro.autograd.ops_basic import _Add

            with no_grad():
                _Add.apply(y, extra_input)
        loss = y.sum()
        loss.backward(retain_graph=True)
    except BaseException:
        sess.abort()
        raise
    return sess.finalize(loss, loss)


class TestDescriptors:
    def test_records_carry_layout_descriptors(self):
        graph = _capture_tiny()
        assert graph.num_records > 0
        saw_array_desc = False
        for rec in graph.records:
            if not hasattr(rec, "descs") or rec.descs is None:
                continue
            out_desc, arg_descs = rec.descs
            for d in (out_desc, *arg_descs):
                if d is None:
                    continue  # non-ndarray position
                dtype, shape, strides = d
                assert isinstance(dtype, str)
                assert isinstance(shape, tuple)
                assert isinstance(strides, tuple)
                assert len(shape) == len(strides)
                saw_array_desc = True
        assert saw_array_desc

    def test_strict_raises_naming_the_record(self):
        # A NumPy-scalar *input* is a dynamic position with no layout
        # descriptor (descriptors cover ndarrays only): nothing to bake,
        # so strict mode must name the record instead of guessing.
        graph = _capture_tiny(extra_input=np.float32(2.5))
        with pytest.raises(LoweringError, match=r"record \d+ \(_Add\)"):
            lower.analyze(graph, True)
        # Non-strict: the record quietly stays on the host interpreter.
        analysis = lower.analyze(graph, False)
        assert analysis.total == graph.num_records


@needs_cc
class TestGraphAttach:
    def test_attach_is_bit_identical_to_replay(self):
        from tests.integration.test_step_graph import _trainer

        plain = _trainer(True, steady=True)
        lowered = _trainer(True, steady=True)
        l0 = [plain.train_step(0), lowered.train_step(0)]
        assert l0[0] == l0[1]
        plan = lower.attach(lowered.step_graph)
        assert plan is not None
        assert plan.records_lowered > 0
        assert 0.0 < plan.coverage <= 1.0
        for s in range(1, 4):
            assert plain.train_step(s) == lowered.train_step(s)
        for a, b in zip(plain.optimizer.params, lowered.optimizer.params):
            np.testing.assert_array_equal(a.data, b.data)

    def test_compile_cache_hits_on_identical_source(self):
        reg = registry()
        lib1 = toolchain.compile_and_load(csrc.PRELUDE, tag="prelude")
        assert lib1 is not None
        before = reg.counter("lower_cache_hits").value
        # Same process: served from the in-memory table.
        assert toolchain.compile_and_load(csrc.PRELUDE, tag="prelude") is lib1
        assert reg.counter("lower_cache_hits").value == before + 1
        # "New process": drop the in-memory table, keep the disk cache.
        toolchain._reset_for_tests()
        lib2 = toolchain.compile_and_load(csrc.PRELUDE, tag="prelude")
        assert lib2 is not None
        assert reg.counter("lower_cache_hits").value == before + 2


class TestNoToolchain:
    def test_repro_no_cc_declines_without_compiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CC", "1")
        toolchain._reset_for_tests()
        assert not lower.cc_available()
        assert toolchain.compile_and_load(csrc.PRELUDE, tag="prelude") is None
        graph = _capture_tiny()
        reg = registry()
        before = reg.counter("lower_toolchain_fallbacks").value
        assert lower.attach(graph) is None
        assert graph._lowered is None
        assert reg.counter("lower_toolchain_fallbacks").value == before + 1

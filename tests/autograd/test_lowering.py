"""Native-code lowering: differential fuzz against the NumPy oracle.

The generated-C path (``repro.autograd.lower``) must be bit-identical
to NumPy replay, so these tests compare each prelude kernel against the
exact ufunc sequence it replaces — float equality, never approx — plus
structural units: the per-record layout descriptors graphs are lowered
from, strict-mode :class:`LoweringError` on unpinnable dynamic
arguments, graph-level attach bit-identity, the content-addressed
compile cache, and the ``REPRO_NO_CC`` kill switch.
"""

import numpy as np
import pytest

from repro.autograd import CaptureSession, Tensor, arena
from repro.autograd import lower
from repro.autograd.lower import csrc, runtime, toolchain
from repro.autograd.lower.segmenter import LoweringError
from repro.observability import registry
from repro.training import Adam
from repro.training.optim import clip_grad_norm
from repro.training import optim as optim_mod


@pytest.fixture(autouse=True)
def _isolated_toolchain(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LOWER_CACHE", str(tmp_path / "lower-cache"))
    toolchain._reset_for_tests()
    yield
    toolchain._reset_for_tests()
    optim_mod._CLIP_CC = None


needs_cc = pytest.mark.skipif(
    not lower.cc_available(), reason="no C toolchain in this environment"
)


def _lib():
    lib = toolchain.compile_and_load(csrc.PRELUDE, tag="prelude")
    assert lib is not None
    runtime.bind(lib)
    return lib


def _ptrs(*arrays):
    return [a.ctypes.data for a in arrays]


# ----------------------------------------------------------------------
# Prelude kernels vs their NumPy ufunc sequences (bitwise).
# ----------------------------------------------------------------------
@needs_cc
class TestKernelFuzz:
    def test_gather_rows(self):
        lib = _lib()
        rng = np.random.default_rng(0)
        for _ in range(20):
            n, h, rows = rng.integers(1, 50), rng.integers(1, 40), rng.integers(1, 30)
            x = rng.standard_normal((rows, h)).astype(np.float32)
            ids = rng.integers(-1, rows, size=n).astype(np.int64)
            out = np.empty((n, h), np.float32)
            lib.repro_gather_rows_f32(*_ptrs(x, ids, out), int(n), int(h))
            ref = np.where((ids >= 0)[:, None], x[np.maximum(ids, 0)], 0.0).astype(
                np.float32
            )
            np.testing.assert_array_equal(out, ref)

    def test_zero_scat_add(self):
        lib = _lib()
        rng = np.random.default_rng(1)
        for _ in range(20):
            n, h, nout = rng.integers(1, 120), rng.integers(1, 24), rng.integers(1, 20)
            rows = rng.standard_normal((n, h)).astype(np.float32)
            idx = rng.integers(-1, nout, size=n).astype(np.int64)
            out = np.empty((nout, h), np.float32)
            scratch = np.empty(int(nout) + 1 + int(n), np.int64)
            lib.repro_zero_scat_add_f32(
                *_ptrs(out, idx, rows), int(n), int(h), int(nout),
                scratch.ctypes.data,
            )
            from repro.autograd.ops_basic import _scatter_add_rows

            ref = np.zeros((nout, h), np.float32)
            keep = idx >= 0
            _scatter_add_rows(ref, idx[keep], rows[keep])
            np.testing.assert_array_equal(out, ref)

    def test_gelu_bwd(self):
        from repro.autograd.ops_fused import _gelu_bwd

        lib = _lib()
        rng = np.random.default_rng(2)
        K = float(3 * 0.044715)
        from repro.autograd.ops_nn import _GELU_C

        for _ in range(20):
            n = int(rng.integers(1, 4000))
            g = rng.standard_normal(n).astype(np.float32)
            a = (rng.standard_normal(n) * 3).astype(np.float32)
            t = np.tanh(a).astype(np.float32)
            out = np.empty(n, np.float32)
            lib.repro_gelu_bwd_f32(
                *_ptrs(g, a, t, out), n, K, float(_GELU_C)
            )
            ref = _gelu_bwd(g, a.copy(), t.copy())
            np.testing.assert_array_equal(out, ref)

    def test_sum_lead_matches_numpy_for_multirow_heads(self):
        lib = _lib()
        rng = np.random.default_rng(3)
        # h > 1 only: NumPy reduces a 1-wide head pairwise, which the
        # sequential row loop does not replicate (the linbias closure
        # guards on h > 1 for exactly this reason).
        for _ in range(30):
            r, h = int(rng.integers(1, 400)), int(rng.integers(2, 60))
            a = (rng.standard_normal((r, h)) * 10).astype(np.float32)
            out = np.empty(h, np.float32)
            lib.repro_sum_lead_f32(*_ptrs(a, out), r, h)
            np.testing.assert_array_equal(out, a.sum(axis=0))

    def test_adam_multi_matches_numpy_reference(self):
        def build():
            from repro.nn.module import Parameter

            ps = []
            r = np.random.default_rng(7)
            for shape in [(64, 32), (32,), (5, 3, 8), (1,)]:
                p = Parameter(r.standard_normal(shape).astype(np.float32))
                p.grad = r.standard_normal(shape).astype(np.float32)
                ps.append(p)
            return ps

        for wd in (0.0, 0.01):
            ref_opt = Adam(build(), lr=1e-2, weight_decay=wd)
            cc_opt = Adam(build(), lr=1e-2, weight_decay=wd)
            assert lower.attach_adam(cc_opt)
            with arena.use_arena():
                for _ in range(3):
                    ref_opt.step()
                    cc_opt.step()
            for a, b in zip(ref_opt.params, cc_opt.params):
                np.testing.assert_array_equal(a.data, b.data)
            for a, b in zip(ref_opt._m, cc_opt._m):
                np.testing.assert_array_equal(a, b)
            for a, b in zip(ref_opt._v, cc_opt._v):
                np.testing.assert_array_equal(a, b)

    def test_clip_grad_norm_native_matches_numpy(self):
        from repro.nn.module import Parameter

        def build():
            r = np.random.default_rng(11)
            ps = []
            for shape in [(700,), (31, 9), (4,)]:
                p = Parameter(r.standard_normal(shape).astype(np.float32))
                p.grad = (r.standard_normal(shape) * 5).astype(np.float32)
                ps.append(p)
            return ps

        ref = build()
        with arena.use_arena():
            assert optim_mod._CLIP_CC is None
            ref_norm = clip_grad_norm(ref, 1.0)

            cc = build()
            opt = Adam(cc)  # attach installs the clip hook
            assert lower.attach_adam(opt)
            assert optim_mod._CLIP_CC is not None
            cc_norm = clip_grad_norm(cc, 1.0)

        assert cc_norm == ref_norm  # float equality: bitwise
        for a, b in zip(ref, cc):
            np.testing.assert_array_equal(a.grad, b.grad)


# ----------------------------------------------------------------------
# Structural units.
# ----------------------------------------------------------------------
def _capture_tiny(extra_input=None):
    """A minimal captured graph: x*w + (b or dynamic scalar)."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((4, 8)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((4, 8)).astype(np.float32), requires_grad=True)
    inputs = {"inp": x.data}
    if extra_input is not None:
        inputs["s"] = extra_input
    sess = CaptureSession(("tiny",), inputs).begin()
    try:
        y = x * w
        if extra_input is not None:
            # Feed the registered NumPy scalar to _Add *unwrapped* — the
            # shape a host-produced dynamic scalar takes when it skips
            # the as_tensor coercion: a dynamic operand with no layout
            # descriptor to bake.  no_grad keeps it off the tape (the
            # record list still gets it; capture records non-grad ops).
            from repro.autograd import no_grad
            from repro.autograd.ops_basic import _Add

            with no_grad():
                _Add.apply(y, extra_input)
        loss = y.sum()
        loss.backward(retain_graph=True)
    except BaseException:
        sess.abort()
        raise
    return sess.finalize(loss, loss)


class TestDescriptors:
    def test_records_carry_layout_descriptors(self):
        graph = _capture_tiny()
        assert graph.num_records > 0
        saw_array_desc = False
        for rec in graph.records:
            if not hasattr(rec, "descs") or rec.descs is None:
                continue
            out_desc, arg_descs = rec.descs
            for d in (out_desc, *arg_descs):
                if d is None:
                    continue  # non-ndarray position
                dtype, shape, strides = d
                assert isinstance(dtype, str)
                assert isinstance(shape, tuple)
                assert isinstance(strides, tuple)
                assert len(shape) == len(strides)
                saw_array_desc = True
        assert saw_array_desc

    def test_strict_raises_naming_the_record(self):
        # A NumPy-scalar *input* is a dynamic position with no layout
        # descriptor (descriptors cover ndarrays only): nothing to bake,
        # so strict mode must name the record instead of guessing.
        graph = _capture_tiny(extra_input=np.float32(2.5))
        with pytest.raises(LoweringError, match=r"record \d+ \(_Add\)"):
            lower.analyze(graph, True)
        # Non-strict: the record quietly stays on the host interpreter.
        analysis = lower.analyze(graph, False)
        assert analysis.total == graph.num_records


@needs_cc
class TestGraphAttach:
    def test_attach_is_bit_identical_to_replay(self):
        from tests.integration.test_step_graph import _trainer

        plain = _trainer(True, steady=True)
        lowered = _trainer(True, steady=True)
        l0 = [plain.train_step(0), lowered.train_step(0)]
        assert l0[0] == l0[1]
        plan = lower.attach(lowered.step_graph)
        assert plan is not None
        assert plan.records_lowered > 0
        assert 0.0 < plan.coverage <= 1.0
        for s in range(1, 4):
            assert plain.train_step(s) == lowered.train_step(s)
        for a, b in zip(plain.optimizer.params, lowered.optimizer.params):
            np.testing.assert_array_equal(a.data, b.data)

    def test_compile_cache_hits_on_identical_source(self):
        reg = registry()
        lib1 = toolchain.compile_and_load(csrc.PRELUDE, tag="prelude")
        assert lib1 is not None
        before = reg.counter("lower_cache_hits").value
        # Same process: served from the in-memory table.
        assert toolchain.compile_and_load(csrc.PRELUDE, tag="prelude") is lib1
        assert reg.counter("lower_cache_hits").value == before + 1
        # "New process": drop the in-memory table, keep the disk cache.
        toolchain._reset_for_tests()
        lib2 = toolchain.compile_and_load(csrc.PRELUDE, tag="prelude")
        assert lib2 is not None
        assert reg.counter("lower_cache_hits").value == before + 2


class TestNoToolchain:
    def test_repro_no_cc_declines_without_compiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CC", "1")
        toolchain._reset_for_tests()
        assert not lower.cc_available()
        assert toolchain.compile_and_load(csrc.PRELUDE, tag="prelude") is None
        graph = _capture_tiny()
        reg = registry()
        before = reg.counter("lower_toolchain_fallbacks").value
        assert lower.attach(graph) is None
        assert graph._lowered is None
        assert reg.counter("lower_toolchain_fallbacks").value == before + 1

"""Tables 1 and 2 regression: our formulas reproduce the paper's numbers."""

import pytest

from repro.configs import (
    TABLE1,
    TABLE1_EXPECTED,
    TABLE2,
    TABLE2_EXPECTED,
    TABLE3_MICRO_BATCH_SIZES,
    moe_train_flops,
    transformer_forward_flops,
    transformer_train_flops,
    transformer_train_gflops,
)


class TestTable1:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_weights_match_paper(self, name):
        cfg = TABLE1[name]
        want_m, _ = TABLE1_EXPECTED[name]
        got_m = cfg.num_parameters / 1e6
        assert abs(got_m - want_m) / want_m < 0.01

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_gflops_match_paper(self, name):
        cfg = TABLE1[name]
        _, want_g = TABLE1_EXPECTED[name]
        assert abs(transformer_train_gflops(cfg) - want_g) / want_g < 0.005

    def test_ffn_is_4x_hidden(self):
        for cfg in TABLE1.values():
            assert cfg.ffn_hidden_size == 4 * cfg.hidden_size

    def test_head_size_64(self):
        for cfg in TABLE1.values():
            assert cfg.hidden_size // cfg.num_heads == 64

    def test_vocab_and_seq(self):
        for cfg in TABLE1.values():
            assert cfg.vocab_size == 51200
            assert cfg.seq_len == 1024

    def test_scaled_variant(self):
        small = TABLE1["XS"].scaled(hidden_size=64, num_layers=2, vocab_size=512)
        assert small.num_parameters < TABLE1["XS"].num_parameters / 100


class TestTable2:
    @pytest.mark.parametrize("name", list(TABLE2))
    def test_weights_match_paper(self, name):
        cfg = TABLE2[name]
        want_m, _ = TABLE2_EXPECTED[name]
        assert abs(cfg.num_parameters / 1e6 - want_m) / want_m < 0.005

    @pytest.mark.parametrize("name", list(TABLE2))
    def test_moe_gflops_equal_dense(self, name):
        """Top-1, cf=1: MoE math == dense math (Table 2 repeats Table 1)."""
        cfg = TABLE2[name]
        _, want_g = TABLE2_EXPECTED[name]
        got = moe_train_flops(cfg.base, top_k=1, capacity_factor=1.0) / 1e9
        assert abs(got - want_g) / want_g < 0.005

    def test_64_experts_top1(self):
        for cfg in TABLE2.values():
            assert cfg.num_experts == 64 and cfg.top_k == 1

    def test_capacity_factor_scales_ffn_flops_only(self):
        cfg = TABLE2["XS"].base
        f1 = moe_train_flops(cfg, capacity_factor=1.0)
        f2 = moe_train_flops(cfg, capacity_factor=2.0)
        ffn = 48 * 1024 * cfg.num_layers * cfg.hidden_size**2
        assert f2 - f1 == pytest.approx(ffn)


class TestFlops:
    def test_forward_is_third_of_training(self):
        cfg = TABLE1["XS"]
        assert transformer_forward_flops(cfg) == pytest.approx(
            transformer_train_flops(cfg) / 3
        )

    def test_batch_scaling_linear(self):
        cfg = TABLE1["Small"]
        assert transformer_train_flops(cfg, 8) == pytest.approx(
            8 * transformer_train_flops(cfg, 1)
        )


class TestTable3Structure:
    def test_all_frameworks_present(self):
        assert set(TABLE3_MICRO_BATCH_SIZES) == {"Megatron-LM", "MegaBlocks", "Tutel"}

    def test_megablocks_at_least_tutel(self):
        for name, mb in TABLE3_MICRO_BATCH_SIZES["MegaBlocks"].items():
            assert mb >= TABLE3_MICRO_BATCH_SIZES["Tutel"][name]

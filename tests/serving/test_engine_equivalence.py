"""Bit-identity of KV-cached decode vs the uncached full-window forward.

The tentpole guarantee: for every step, the logits `forward_step`
produces from the cache are *bitwise equal* (``np.array_equal`` on fp32)
to the last-position logits of a full uncached ``forward`` over the same
window inside ``inference_mode`` — across dense and every MoE variant,
top-1 and top-2 routing, batch composition changes, and sliding-window
eviction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.tensor import inference_mode
from repro.serving.engine import InferenceEngine
from repro.serving.kv_cache import KVCache

from tests.serving.conftest import MAX_SEQ, VOCAB, make_model

SYSTEMS = [
    ("dense", 1),
    ("dmoe", 1),
    ("dmoe", 2),
    ("moe", 1),
    ("tutel-dmoe", 1),
]


def uncached_logits(model, ids: np.ndarray) -> np.ndarray:
    """Last-position logits of the full-window inference forward."""
    window = ids[:, -model.max_seq_len :]
    with inference_mode():
        return model.forward(window).logits.data[:, -1, :]


@pytest.mark.parametrize("system,top_k", SYSTEMS)
def test_cached_decode_bit_identical(system, top_k, prompts):
    model = make_model(system, top_k=top_k)
    engine = InferenceEngine(model)
    cache = engine.new_cache(prompts.shape[0])

    ids = prompts.copy()
    logits = engine.prefill(ids, cache)
    assert np.array_equal(logits, uncached_logits(model, ids))

    gen = np.random.default_rng(11)
    wobble = set()
    for _ in range(MAX_SEQ - prompts.shape[1]):
        # Random continuations so per-step tokens-per-expert wobbles.
        nxt = gen.integers(0, VOCAB, size=ids.shape[0])
        ids = np.concatenate([ids, nxt[:, None]], axis=1)
        logits = engine.decode_step(nxt, cache)
        assert np.array_equal(logits, uncached_logits(model, ids))
        if system != "dense":
            tpe = model.blocks[0].ffn.last_routing.expert_indices
            wobble.add(tuple(np.bincount(tpe.reshape(-1), minlength=4)))
    cache.release()
    if system != "dense":
        # The decode stream really did exercise shifting expert loads.
        assert len(wobble) > 1


@pytest.mark.parametrize("system", ["dense", "dmoe"])
def test_generate_matches_uncached_past_window(system, prompts):
    """Cached generate == uncached generate, token for token, through
    sliding-window eviction (re-prefill of the retained suffix)."""
    model = make_model(system)
    n_new = MAX_SEQ + 7  # force several window slides
    ref = model.generate(prompts, n_new, temperature=1.0, top_k=5, rng=17)
    got = InferenceEngine(model).generate(
        prompts, n_new, temperature=1.0, top_k=5, rng=17
    )
    assert np.array_equal(ref, got)


def test_generate_matches_uncached_greedy(prompts):
    model = make_model("dmoe", top_k=2)
    ref = model.generate(prompts, 10, temperature=0.0)
    got = InferenceEngine(model).generate(prompts, 10, temperature=0.0)
    assert np.array_equal(ref, got)


def test_decode_batch_composition_independence():
    """A sequence's logits don't depend on its decode-batch neighbors."""
    model = make_model("dmoe", top_k=2)
    engine = InferenceEngine(model)
    gen = np.random.default_rng(5)
    prompts = gen.integers(0, VOCAB, size=(3, 6))

    # Batched: all three sequences share every decode step.
    cache = engine.new_cache(3)
    batched = [engine.prefill(prompts, cache)]
    steps = gen.integers(0, VOCAB, size=(4, 3))
    for tok in steps:
        batched.append(engine.decode_step(tok, cache))
    cache.release()

    # Solo: each sequence decodes alone.
    for b in range(3):
        cache = engine.new_cache(1)
        solo = [engine.prefill(prompts[b : b + 1], cache)]
        for tok in steps:
            solo.append(engine.decode_step(tok[b : b + 1], cache))
        cache.release()
        for t, (sb, ss) in enumerate(zip(batched, solo)):
            assert np.array_equal(sb[b], ss[0]), (b, t)


def test_forward_step_slots_subset():
    """Decoding a subset of slots matches decoding them in a full batch."""
    model = make_model("dense")
    engine = InferenceEngine(model)
    gen = np.random.default_rng(9)
    prompts = gen.integers(0, VOCAB, size=(3, 4))

    ref_cache = engine.new_cache(3)
    engine.prefill(prompts, ref_cache)
    tok = gen.integers(0, VOCAB, size=3)
    ref = engine.decode_step(tok, ref_cache)
    ref_cache.release()

    cache = engine.new_cache(3)
    engine.prefill(prompts, cache)
    out02 = engine.decode_step(tok[[0, 2]], cache, slots=[0, 2])
    out1 = engine.decode_step(tok[[1]], cache, slots=[1])
    assert np.array_equal(out02[0], ref[0])
    assert np.array_equal(out02[1], ref[2])
    assert np.array_equal(out1[0], ref[1])
    assert list(cache.lengths) == [5, 5, 5]
    cache.release()


def test_forward_step_raises_when_full():
    model = make_model("dense")
    engine = InferenceEngine(model)
    cache = engine.new_cache(1)
    ids = np.random.default_rng(0).integers(0, VOCAB, size=(1, MAX_SEQ))
    engine.prefill(ids, cache)
    with pytest.raises(ValueError, match="full"):
        engine.decode_step(np.array([1]), cache)
    cache.release()


def test_untied_head_inference_path(prompts):
    model = make_model("dense")
    untied = make_model("dense")
    # Rebuild with an untied head to cover the Linear head branch.
    from tests.serving.conftest import HEADS, HIDDEN, LAYERS

    from repro.nn import TransformerLM

    untied = TransformerLM(
        vocab_size=VOCAB, hidden_size=HIDDEN, num_layers=LAYERS,
        num_heads=HEADS, max_seq_len=MAX_SEQ, tie_embeddings=False, rng=1,
    )
    untied.eval()
    engine = InferenceEngine(untied)
    cache = engine.new_cache(prompts.shape[0])
    logits = engine.prefill(prompts, cache)
    assert np.array_equal(logits, uncached_logits(untied, prompts))
    tok = prompts[:, -1]
    step = engine.decode_step(tok, cache)
    ids = np.concatenate([prompts, tok[:, None]], axis=1)
    assert np.array_equal(step, uncached_logits(untied, ids))
    cache.release()

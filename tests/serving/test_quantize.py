"""Int8 expert-weight quantization: error bounds, 4x bytes, attach/detach."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.tensor import inference_mode
from repro.configs.moe import MoEConfig
from repro.serving.engine import InferenceEngine
from repro.serving.quantize import (
    QuantizedExpertFFN,
    attach_quantized_experts,
    dequantize_int8,
    detach_quantized_experts,
    quantize_int8,
)

from tests.serving.conftest import VOCAB, make_model


def test_quantize_roundtrip_error_bound():
    w = np.random.default_rng(0).normal(size=(3, 16, 24)).astype(np.float32)
    q, scale = quantize_int8(w)
    assert q.dtype == np.int8
    assert scale.shape == (3, 24)
    back = dequantize_int8(q, scale)
    # Symmetric round-to-nearest: error per entry <= scale/2 of its channel.
    err = np.abs(back - w)
    assert (err <= scale[:, None, :] / 2 + 1e-7).all()


def test_quantize_zero_channel_safe():
    w = np.zeros((4, 6), dtype=np.float32)
    w[:, 0] = [1, -2, 3, -4]
    q, scale = quantize_int8(w)
    assert (scale[1:] == 1.0).all()  # all-zero channels get scale 1, not 0/0
    assert np.array_equal(dequantize_int8(q, scale)[:, 1:], w[:, 1:])


def test_quantize_saturates_at_127():
    w = np.array([[1.0], [-1.0], [0.5]], dtype=np.float32)
    q, _ = quantize_int8(w)
    assert q.max() == 127 and q.min() == -127


def test_attach_report_4x_weight_bytes():
    model = make_model("dmoe")
    report = attach_quantized_experts(model)
    assert report["layers"] == 2
    assert report["int8_bytes"] < report["fp32_bytes"]
    # Weight bytes drop exactly 4x; the reported ratio also counts the
    # fp32 scales, whose relative overhead shrinks as min(H, F) grows
    # (for this tiny test model it is sizable, hence the loose bound).
    for blk in model.blocks:
        tbl = blk.ffn._quantized
        assert tbl.fp32_weight_bytes == 4 * (tbl.q1.nbytes + tbl.q2.nbytes)
    assert report["ratio"] > 3.5
    detach_quantized_experts(model)


def test_attach_is_idempotent():
    model = make_model("dmoe")
    attach_quantized_experts(model)
    tables = [blk.ffn._quantized for blk in model.blocks]
    attach_quantized_experts(model)
    for blk, tbl in zip(model.blocks, tables):
        assert blk.ffn._quantized is tbl  # second attach reuses, not rebuilds
    detach_quantized_experts(model)


@pytest.mark.parametrize("system", ["dmoe", "moe", "tutel-dmoe"])
def test_int8_engine_runs_and_detach_restores_fp32(system):
    model = make_model(system)
    prompts = np.random.default_rng(6).integers(0, VOCAB, size=(2, 5))
    with inference_mode():
        ref = model.forward(prompts).logits.data.copy()

    engine = InferenceEngine(model, quantize_experts="int8")
    assert engine.quant_report is not None
    assert engine.quant_report["layers"] == 2
    with inference_mode():
        quant = model.forward(prompts).logits.data.copy()
    assert np.isfinite(quant).all()
    # Quantization really changed the math, but not by much.
    assert not np.array_equal(quant, ref)
    assert np.abs(quant - ref).max() < 0.1

    detach_quantized_experts(model)
    with inference_mode():
        restored = model.forward(prompts).logits.data
    assert np.array_equal(restored, ref)  # fp32 weights were never touched


def test_int8_generate_end_to_end():
    model = make_model("dmoe", top_k=2)
    engine = InferenceEngine(model, quantize_experts="int8")
    out = engine.generate(
        np.array([[1, 2, 3]]), 8, temperature=0.9, top_k=5, rng=0
    )
    assert out.shape == (1, 11)
    assert out.min() >= 0 and out.max() < VOCAB
    detach_quantized_experts(model)


def test_engine_rejects_unknown_mode():
    model = make_model("dmoe")
    with pytest.raises(ValueError, match="quantize_experts"):
        InferenceEngine(model, quantize_experts="fp8")


def test_dense_model_attaches_nothing():
    model = make_model("dense")
    report = attach_quantized_experts(model)
    assert report == {
        "layers": 0, "fp32_bytes": 0, "int8_bytes": 0, "ratio": 0.0
    }


def test_moe_config_field_validation():
    from repro.configs.transformer import TransformerConfig

    base = TransformerConfig(name="T", hidden_size=64, num_layers=2)
    int8 = MoEConfig(name="M-int8", base=base, quantize_experts="int8")
    fp32 = MoEConfig(name="M", base=base)
    assert fp32.quantize_experts is None
    assert fp32.expert_weight_bytes_per_layer == 4 * int8.expert_weight_bytes_per_layer
    with pytest.raises(ValueError):
        MoEConfig(name="bad", base=base, quantize_experts="fp8")

"""The shared ``sample_tokens`` contract (greedy / temperature / top-k)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.sampling import sample_tokens


def _logits(rows: int = 4, vocab: int = 23, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(rows, vocab)).astype(np.float32)


def test_greedy_is_argmax():
    logits = _logits()
    out = sample_tokens(logits, 0.0, None, np.random.default_rng(0))
    assert out.dtype == np.int64
    assert np.array_equal(out, np.argmax(logits, axis=-1))


def test_greedy_consumes_no_rng():
    gen = np.random.default_rng(7)
    sample_tokens(_logits(), 0.0, None, gen)
    fresh = np.random.default_rng(7)
    assert gen.integers(0, 1 << 30) == fresh.integers(0, 1 << 30)


def test_top_k_one_matches_greedy():
    logits = _logits(rows=6)
    greedy = sample_tokens(logits, 0.0, None, np.random.default_rng(1))
    topk1 = sample_tokens(logits, 1.0, 1, np.random.default_rng(1))
    assert np.array_equal(greedy, topk1)


def test_seeded_determinism_batched():
    logits = _logits(rows=5)
    a = sample_tokens(logits, 0.9, 8, np.random.default_rng(42))
    b = sample_tokens(logits, 0.9, 8, np.random.default_rng(42))
    c = sample_tokens(logits, 0.9, 8, np.random.default_rng(43))
    assert np.array_equal(a, b)
    assert a.shape == (5,)
    assert not np.array_equal(a, c)  # different seed, different draws


def test_top_k_restricts_support():
    logits = _logits(rows=3, vocab=50)
    k = 4
    allowed = np.argsort(logits, axis=-1)[:, -k:]
    gen = np.random.default_rng(0)
    for _ in range(25):
        out = sample_tokens(logits, 1.0, k, gen)
        for row, tok in enumerate(out):
            assert tok in allowed[row]


def test_temperature_sharpens():
    """Near-zero temperature concentrates sampling on the argmax."""
    logits = _logits(rows=1, vocab=11)
    gen = np.random.default_rng(5)
    cold = [sample_tokens(logits, 1e-3, None, gen)[0] for _ in range(20)]
    assert set(cold) == {int(np.argmax(logits))}


def test_rng_consumed_per_row_in_row_order():
    """Sampling B rows == sampling each row alone with the same stream."""
    logits = _logits(rows=3, vocab=17)
    batched = sample_tokens(logits, 1.0, 5, np.random.default_rng(9))
    gen = np.random.default_rng(9)
    solo = [sample_tokens(logits[i : i + 1], 1.0, 5, gen)[0] for i in range(3)]
    assert np.array_equal(batched, np.array(solo))


def test_bounds():
    logits = _logits(rows=8, vocab=13)
    out = sample_tokens(logits, 1.3, None, np.random.default_rng(3))
    assert out.min() >= 0 and out.max() < 13

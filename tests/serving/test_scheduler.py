"""Continuous-batching scheduler: correctness under mixed-length streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability.metrics import registry
from repro.serving.engine import InferenceEngine
from repro.serving.scheduler import ContinuousBatchingScheduler, GenerationResult, Request

from tests.serving.conftest import MAX_SEQ, VOCAB, make_model


def _mixed_requests(n: int, seed: int = 0, eos=None):
    gen = np.random.default_rng(seed)
    reqs = []
    for i in range(n):
        plen = int(gen.integers(2, 9))
        reqs.append(
            Request(
                prompt=gen.integers(0, VOCAB, size=plen),
                max_new_tokens=int(gen.integers(3, MAX_SEQ + 6)),
                temperature=0.8,
                top_k=7,
                eos_token_id=eos,
                seed=1000 + i,
            )
        )
    return reqs


@pytest.mark.parametrize("system", ["dense", "dmoe"])
def test_results_match_solo_generate(system):
    """Every scheduled request's tokens == a solo ``engine.generate`` run.

    This is the end-to-end batch-composition-independence guarantee:
    mixed prompt lengths, staggered admission, mid-flight eviction — and
    still bit-equal to running each request alone with its own seed.
    """
    model = make_model(system)
    engine = InferenceEngine(model)
    reqs = _mixed_requests(6, seed=4)
    sched = ContinuousBatchingScheduler(engine, max_batch_size=3)
    results = sched.run([Request(**{
        "prompt": r.prompt, "max_new_tokens": r.max_new_tokens,
        "temperature": r.temperature, "top_k": r.top_k,
        "eos_token_id": r.eos_token_id, "seed": r.seed,
    }) for r in reqs])
    sched.close()

    assert len(results) == len(reqs)
    assert sched.peak_concurrency <= 3
    for res, req in zip(results, reqs):
        solo = engine.generate(
            req.prompt[None, :], req.max_new_tokens,
            temperature=req.temperature, top_k=req.top_k,
            eos_token_id=req.eos_token_id, rng=req.seed,
        )[0]
        assert np.array_equal(res.tokens, solo), res.request_id
        assert res.prompt_len == len(req.prompt)
        assert res.new_tokens == res.tokens.size - len(req.prompt)
        assert res.finish_reason == "length"


def test_mid_flight_admission():
    """Requests submitted after stepping join without disturbing others."""
    model = make_model("dense")
    engine = InferenceEngine(model)
    sched = ContinuousBatchingScheduler(engine, max_batch_size=2)
    first = _mixed_requests(2, seed=7)
    for r in first:
        sched.submit(r)
    for _ in range(2):
        sched.step()
    late = Request(
        prompt=np.arange(4) % VOCAB, max_new_tokens=5,
        temperature=0.5, top_k=3, seed=99,
    )
    sched.submit(late)
    results = sched.run()
    sched.close()
    assert sorted(r.request_id for r in results) == [0, 1, 2]
    late_res = [r for r in results if r.request_id == 2][0]
    solo = engine.generate(
        late.prompt[None, :], 5, temperature=0.5, top_k=3, rng=99
    )[0]
    assert np.array_equal(late_res.tokens, solo)


def test_eos_finish_reason_and_early_eviction():
    """A request whose eos fires finishes with reason "eos" and stops
    consuming tokens at the eos position."""
    model = make_model("dense")
    engine = InferenceEngine(model)
    # Pick an eos id that actually gets sampled early: run greedy once
    # and use the first generated token as eos for the real run.
    probe = engine.generate(np.array([[1, 2, 3]]), 1, temperature=0.0)
    eos = int(probe[0, -1])
    sched = ContinuousBatchingScheduler(engine, max_batch_size=2)
    req = Request(
        prompt=np.array([1, 2, 3]), max_new_tokens=10,
        temperature=0.0, eos_token_id=eos,
    )
    results = sched.run([req])
    sched.close()
    assert results[0].finish_reason == "eos"
    assert results[0].tokens[-1] == eos
    assert results[0].new_tokens == 1  # stopped immediately


def test_token_budget_bounds_concurrency():
    model = make_model("dense")
    engine = InferenceEngine(model)
    reqs = _mixed_requests(5, seed=11)
    # Budget for roughly one peak window: sequences must mostly run solo.
    sched = ContinuousBatchingScheduler(
        engine, max_batch_size=4, token_budget=MAX_SEQ
    )
    results = sched.run(reqs)
    sched.close()
    assert len(results) == 5
    assert sched.peak_concurrency <= 2  # one active + one over-budget solo

    # Same stream, roomy budget: concurrency actually rises.
    engine2 = InferenceEngine(make_model("dense"))
    sched2 = ContinuousBatchingScheduler(engine2, max_batch_size=4)
    results2 = sched2.run(_mixed_requests(5, seed=11))
    sched2.close()
    assert sched2.peak_concurrency > 2
    for a, b in zip(results, results2):
        assert np.array_equal(a.tokens, b.tokens)  # budget never changes output


def test_over_budget_request_admitted_when_idle():
    """A single request bigger than the budget still runs (no deadlock)."""
    model = make_model("dense")
    engine = InferenceEngine(model)
    sched = ContinuousBatchingScheduler(engine, max_batch_size=2, token_budget=4)
    req = Request(prompt=np.arange(6) % VOCAB, max_new_tokens=4, seed=0)
    results = sched.run([req])
    sched.close()
    assert len(results) == 1
    assert results[0].new_tokens == 4


def test_sliding_window_sequences_complete():
    """Requests whose windows slide past max_seq_len finish correctly."""
    model = make_model("dense")
    engine = InferenceEngine(model)
    req = Request(
        prompt=np.arange(5) % VOCAB, max_new_tokens=MAX_SEQ + 6,
        temperature=0.7, top_k=5, seed=21,
    )
    sched = ContinuousBatchingScheduler(engine, max_batch_size=2)
    results = sched.run([req])
    sched.close()
    solo = engine.generate(
        req.prompt[None, :], MAX_SEQ + 6, temperature=0.7, top_k=5, rng=21
    )[0]
    assert np.array_equal(results[0].tokens, solo)


def test_submit_validation():
    engine = InferenceEngine(make_model("dense"))
    sched = ContinuousBatchingScheduler(engine, max_batch_size=1)
    with pytest.raises(ValueError, match="empty prompt"):
        sched.submit(Request(prompt=np.array([], dtype=np.int64), max_new_tokens=3))
    with pytest.raises(ValueError, match="max_new_tokens"):
        sched.submit(Request(prompt=np.array([1]), max_new_tokens=0))
    sched.close()


def test_metrics_populated():
    reg = registry()
    before_reqs = reg.counter("serving/requests").value
    before_ttft = reg.histogram("serving/ttft_ms").summary()["count"]

    engine = InferenceEngine(make_model("dense"))
    sched = ContinuousBatchingScheduler(engine, max_batch_size=2)
    reqs = _mixed_requests(3, seed=13)
    results = sched.run(reqs)
    table = sched.latency_table()
    sched.close()

    assert reg.counter("serving/requests").value == before_reqs + 3
    ttft = reg.histogram("serving/ttft_ms").summary()
    assert ttft["count"] == before_ttft + 3
    assert ttft["p50"] <= ttft["p95"] <= ttft["p99"]
    tok = reg.histogram("serving/token_latency_ms").summary()
    assert tok["count"] >= sum(r.new_tokens for r in results)
    assert "serving/ttft_ms" in table and "p99" in table
    for r in results:
        assert r.ttft_s >= 0.0
        assert r.total_s >= r.ttft_s

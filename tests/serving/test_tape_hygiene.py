"""Serving allocates no autograd state and no new arena memory at steady state.

Two invariants the inference fast path exists to provide:

1. **Zero tape nodes** — ``inference_mode`` runs entirely outside the
   autograd tape, so decode steps record nothing (no graph to free, no
   per-token garbage proportional to model depth).
2. **Zero arena growth after warmup** — the first generation allocates
   KV buffers through the detached pool; every later generation reuses
   them (``misses`` stays flat, ``pooled_bytes`` stays flat).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import stats
from repro.autograd.arena import get_arena
from repro.serving.engine import InferenceEngine
from repro.serving.scheduler import ContinuousBatchingScheduler, Request

from tests.serving.conftest import VOCAB, make_model


@pytest.mark.parametrize("system", ["dense", "dmoe"])
def test_zero_tape_nodes_during_generate(system):
    model = make_model(system)
    engine = InferenceEngine(model)
    prompts = np.random.default_rng(0).integers(0, VOCAB, size=(2, 4))

    stats.reset()
    engine.generate(prompts, 6, temperature=0.8, top_k=5, rng=1)
    assert stats.snapshot()["tape_nodes"] == 0


def test_zero_tape_nodes_during_scheduler_run():
    engine = InferenceEngine(make_model("dmoe", top_k=2))
    sched = ContinuousBatchingScheduler(engine, max_batch_size=2)
    gen = np.random.default_rng(2)
    reqs = [
        Request(
            prompt=gen.integers(0, VOCAB, size=int(gen.integers(2, 7))),
            max_new_tokens=int(gen.integers(2, 8)),
            temperature=0.7, top_k=4, seed=i,
        )
        for i in range(4)
    ]
    stats.reset()
    results = sched.run(reqs)
    sched.close()
    assert len(results) == 4
    assert stats.snapshot()["tape_nodes"] == 0


def test_training_still_records_tape_nodes():
    """Sanity check that the counter itself is live outside serving."""
    from repro.autograd.tensor import Tensor

    model = make_model("dense")
    model.train()
    stats.reset()
    out = model.forward(np.array([[1, 2, 3]]))
    assert stats.snapshot()["tape_nodes"] > 0
    model.eval()


def test_zero_arena_growth_after_warmup():
    """Second and later generates reuse the warmup generation's buffers."""
    model = make_model("dense")
    engine = InferenceEngine(model)
    arena = get_arena()
    prompts = np.random.default_rng(3).integers(0, VOCAB, size=(4, 5))

    engine.generate(prompts, 4, temperature=0.0)  # warmup: allocates KV
    misses = arena.misses
    pooled = arena.pooled_bytes
    for _ in range(3):
        engine.generate(prompts, 4, temperature=0.0)
    assert arena.misses == misses
    assert arena.pooled_bytes == pooled


def test_zero_arena_growth_across_scheduler_batches():
    """Serving many requests in sequence reuses one cache's memory."""
    engine = InferenceEngine(make_model("dense"))
    arena = get_arena()
    gen = np.random.default_rng(4)

    def batch(seed):
        return [
            Request(
                prompt=gen.integers(0, VOCAB, size=4),
                max_new_tokens=3, temperature=0.0,
            )
            for _ in range(3)
        ]

    sched = ContinuousBatchingScheduler(engine, max_batch_size=4)
    sched.run(batch(0))
    sched.close()

    misses = arena.misses
    pooled = arena.pooled_bytes
    for seed in range(1, 3):
        sched = ContinuousBatchingScheduler(engine, max_batch_size=4)
        sched.run(batch(seed))
        sched.close()
    assert arena.misses == misses
    assert arena.pooled_bytes == pooled

"""KVCache sizing, length bookkeeping, and arena-pool recycling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.arena import MIN_BUCKET, get_arena
from repro.serving.engine import InferenceEngine
from repro.serving.kv_cache import KVCache

from tests.serving.conftest import HEADS, HIDDEN, LAYERS, MAX_SEQ, VOCAB, make_model

HEAD_DIM = HIDDEN // HEADS


def test_for_model_shapes_and_dtype():
    model = make_model("dense")
    cache = KVCache.for_model(model, batch_slots=3)
    assert len(cache.layers) == LAYERS
    for layer in cache.layers:
        assert layer.k.shape == (3, HEADS, MAX_SEQ, HEAD_DIM)
        assert layer.v.shape == (3, HEADS, MAX_SEQ, HEAD_DIM)
        assert layer.k.dtype == np.float32
    assert cache.max_seq_len == MAX_SEQ
    assert list(cache.lengths) == [0, 0, 0]
    assert cache.nbytes == LAYERS * 2 * 3 * HEADS * MAX_SEQ * HEAD_DIM * 4
    cache.release()
    assert cache.layers == []


def test_for_model_max_seq_len_override():
    model = make_model("dense")
    cache = KVCache.for_model(model, batch_slots=1, max_seq_len=8)
    assert cache.layers[0].k.shape == (1, HEADS, 8, HEAD_DIM)
    assert cache.remaining(0) == 8
    cache.release()


def test_lengths_maintained_by_prefill_and_step():
    model = make_model("dense")
    engine = InferenceEngine(model)
    cache = engine.new_cache(2)
    prompts = np.random.default_rng(0).integers(0, VOCAB, size=(2, 6))
    engine.prefill(prompts, cache)
    assert list(cache.lengths) == [6, 6]
    assert cache.remaining(0) == MAX_SEQ - 6
    engine.decode_step(np.array([1, 2]), cache)
    assert list(cache.lengths) == [7, 7]
    cache.reset([1])
    assert list(cache.lengths) == [7, 0]
    cache.reset()
    assert list(cache.lengths) == [0, 0]
    cache.release()


def test_release_returns_buffers_to_pool():
    """Released K/V buffers are reused byte-for-byte by the next cache."""
    model = make_model("dense")
    # 4 slots * HEADS * MAX_SEQ * HEAD_DIM == 2048 elements == MIN_BUCKET,
    # so these buffers go through the detached pool (not plain malloc).
    slots = MIN_BUCKET // (HEADS * MAX_SEQ * HEAD_DIM)
    arena = get_arena()

    first = KVCache.for_model(model, batch_slots=slots)
    bases = set()
    for layer in first.layers:
        for arr in (layer.k, layer.v):
            base = arr
            while base.base is not None:
                base = base.base
            bases.add(id(base))
    assert len(bases) == LAYERS * 2
    first.release()

    misses_before = arena.misses
    second = KVCache.for_model(model, batch_slots=slots)
    assert arena.misses == misses_before  # all hits: no new allocations
    for layer in second.layers:
        for arr in (layer.k, layer.v):
            base = arr
            while base.base is not None:
                base = base.base
            assert id(base) in bases
    second.release()


def test_cache_survives_arena_generation_reclaim():
    """Detached KV buffers outlive ``next_generation`` (per-step reclaim)."""
    model = make_model("dense")
    engine = InferenceEngine(model)
    cache = engine.new_cache(4)
    prompts = np.random.default_rng(1).integers(0, VOCAB, size=(4, 5))
    logits = engine.prefill(prompts, cache)
    # Compare only the written prefix: rows past the prefill length are
    # uninitialized pool memory (may hold NaN, which breaks array_equal).
    k_snapshot = cache.layers[0].k[:, :, :5].copy()

    get_arena().next_generation()

    assert np.array_equal(cache.layers[0].k[:, :, :5], k_snapshot)
    step = engine.decode_step(prompts[:, -1], cache)
    assert step.shape == (4, VOCAB)
    assert np.isfinite(step).all()
    cache.release()


def test_context_manager_releases():
    model = make_model("dense")
    with KVCache.for_model(model, batch_slots=1) as cache:
        assert len(cache.layers) == LAYERS
    assert cache.layers == []


def test_prefill_slots_writes_only_targeted_rows():
    model = make_model("dense")
    engine = InferenceEngine(model)
    cache = engine.new_cache(3)
    prompts = np.random.default_rng(2).integers(0, VOCAB, size=(3, 4))
    engine.prefill(prompts, cache)
    k_before = cache.layers[0].k.copy()

    other = np.random.default_rng(3).integers(0, VOCAB, size=(1, 4))
    cache.reset([1])
    engine.prefill(other, cache, slots=[1])
    assert np.array_equal(cache.layers[0].k[0], k_before[0])
    assert np.array_equal(cache.layers[0].k[2], k_before[2])
    assert not np.array_equal(cache.layers[0].k[1, :, :4], k_before[1, :, :4])
    assert list(cache.lengths) == [4, 4, 4]
    cache.release()

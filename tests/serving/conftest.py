"""Shared model builders for the serving tests.

Small models with a *small* ``max_seq_len`` so sliding-window behavior
is exercised in a handful of decode steps (the factory-built models use
the scaled Table-1 sequence lengths, which are too long for that).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dMoE
from repro.moe import DynamicCapacityMoELayer, MoELayer
from repro.nn import TransformerLM

VOCAB = 61
HIDDEN = 32
HEADS = 2
LAYERS = 2
MAX_SEQ = 16
FFN = 64
EXPERTS = 4


def make_model(system: str, top_k: int = 1, rng: int = 0) -> TransformerLM:
    if system == "dense":
        factory = None
    elif system == "dmoe":
        factory = lambda i: dMoE(  # noqa: E731
            HIDDEN, FFN, EXPERTS, top_k=top_k, block_size=8, rng=rng
        )
    elif system == "moe":
        factory = lambda i: MoELayer(  # noqa: E731
            HIDDEN, FFN, EXPERTS, capacity_factor=1.0, top_k=top_k, rng=rng
        )
    elif system == "tutel-dmoe":
        factory = lambda i: DynamicCapacityMoELayer(  # noqa: E731
            hidden_size=HIDDEN, ffn_hidden_size=FFN, num_experts=EXPERTS,
            top_k=top_k, rng=rng,
        )
    else:
        raise ValueError(system)
    model = TransformerLM(
        vocab_size=VOCAB,
        hidden_size=HIDDEN,
        num_layers=LAYERS,
        num_heads=HEADS,
        max_seq_len=MAX_SEQ,
        ffn_factory=factory,
        rng=rng,
    )
    model.eval()
    return model


@pytest.fixture
def prompts() -> np.ndarray:
    return np.random.default_rng(3).integers(0, VOCAB, size=(3, 5))

"""Data-parallel simulation: replicas stay synchronized and match
single-process large-batch training exactly."""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.distributed import DataParallelTrainer
from repro.nn import Linear, Sequential
from repro.training import Adam


def _model(seed=0):
    return Sequential(Linear(6, 12, rng=seed), Linear(12, 4, rng=seed + 1))


def _batch(rng, n=16):
    x = rng.standard_normal((n, 6)).astype(np.float32)
    y = rng.integers(0, 4, n)
    return x, y


class TestSetup:
    def test_rejects_diverged_replicas(self):
        a, b = _model(), _model()
        b.layers[0].weight.data += 1.0
        with pytest.raises(ValueError):
            DataParallelTrainer([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DataParallelTrainer([])


class TestTraining:
    def test_replicas_stay_bit_identical(self, rng):
        world = 4
        replicas = [_model() for _ in range(world)]
        dp = DataParallelTrainer(replicas, lr=1e-2)
        x, y = _batch(rng, n=16)
        shard = 16 // world

        def loss_fn(model, rank):
            xs = x[rank * shard : (rank + 1) * shard]
            ys = y[rank * shard : (rank + 1) * shard]
            return cross_entropy(model(Tensor(xs)), ys)

        for _ in range(5):
            dp.step(loss_fn)
        dp.check_replicas_synchronized()

    def test_matches_single_process_large_batch(self, rng):
        """DP over shards == single process on the full batch (the
        linearity of gradient averaging)."""
        world = 4
        x, y = _batch(rng, n=16)
        shard = 16 // world

        # Single process big batch.
        single = _model()
        opt = Adam(single.parameters(), lr=1e-2)
        for _ in range(4):
            opt.zero_grad()
            loss = cross_entropy(single(Tensor(x)), y)
            loss.backward()
            opt.step()

        # Data parallel.
        dp = DataParallelTrainer([_model() for _ in range(world)], lr=1e-2)

        def loss_fn(model, rank):
            xs = x[rank * shard : (rank + 1) * shard]
            ys = y[rank * shard : (rank + 1) * shard]
            return cross_entropy(model(Tensor(xs)), ys)

        for _ in range(4):
            dp.step(loss_fn)

        for p_single, p_dp in zip(
            single.parameters(), dp.replicas[0].parameters()
        ):
            np.testing.assert_allclose(p_single.data, p_dp.data, atol=2e-5)

    def test_comm_volume_logged(self, rng):
        world = 2
        dp = DataParallelTrainer([_model() for _ in range(world)], lr=1e-2)
        x, y = _batch(rng, n=8)

        def loss_fn(model, rank):
            return cross_entropy(model(Tensor(x[rank * 4 : rank * 4 + 4])), y[rank * 4 : rank * 4 + 4])

        dp.step(loss_fn)
        # One all_reduce per parameter tensor.
        assert dp.comm_log.counts()["all_reduce"] == 4
        assert dp.comm_log.total_bytes_per_rank() > 0

    def test_grad_clip_applied(self, rng):
        dp = DataParallelTrainer([_model() for _ in range(2)], lr=1e-2, grad_clip=1e-6)
        x, y = _batch(rng, n=8)

        def loss_fn(model, rank):
            return cross_entropy(model(Tensor(x[rank * 4 : rank * 4 + 4])), y[rank * 4 : rank * 4 + 4])

        before = [p.data.copy() for p in dp.replicas[0].parameters()]
        dp.step(loss_fn)
        after = list(dp.replicas[0].parameters())
        # Clipped to near-zero norm, the update is tiny but nonzero.
        deltas = [np.abs(b - a.data).max() for b, a in zip(before, after)]
        assert max(deltas) < 1e-2

import numpy as np
import pytest

from repro.distributed import CommLog, all_gather, all_reduce, all_to_all


class TestAllReduce:
    def test_sums_shards(self, rng):
        shards = [rng.standard_normal((3, 2)) for _ in range(4)]
        out = all_reduce(shards)
        want = sum(shards)
        for o in out:
            np.testing.assert_allclose(o, want)

    def test_logs_ring_volume(self, rng):
        log = CommLog()
        shards = [np.zeros(1000, dtype=np.float32) for _ in range(4)]
        all_reduce(shards, log)
        assert log.records[0].op == "all_reduce"
        assert log.records[0].bytes_sent_per_rank == pytest.approx(
            2 * 3 / 4 * 4000
        )

    def test_single_rank_no_log(self):
        log = CommLog()
        all_reduce([np.zeros(3)], log)
        assert log.records == []


class TestAllToAll:
    def test_transposes_buffers(self, rng):
        world = 3
        buffers = [
            [np.full((1,), 10 * src + dst) for dst in range(world)]
            for src in range(world)
        ]
        out = all_to_all(buffers)
        for dst in range(world):
            for src in range(world):
                assert out[dst][src][0] == 10 * src + dst

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            all_to_all([[np.zeros(1)], [np.zeros(1), np.zeros(1)]])

    def test_logs_off_diagonal_bytes(self):
        log = CommLog()
        world = 2
        buffers = [
            [np.zeros(10, dtype=np.float64) for _ in range(world)]
            for _ in range(world)
        ]
        all_to_all(buffers, log)
        assert log.total_bytes_per_rank("all_to_all") == 80  # one off-diag buffer

    def test_skewed_routing_logs_true_per_rank_bytes(self):
        """Skew must not inflate the mean: rank 0 sends 800B, rank 1
        sends 80B — per-rank mean is 440, the straggler field keeps the
        max, and the per-source breakdown is recorded exactly."""
        log = CommLog()
        buffers = [
            [np.zeros(1, dtype=np.float64), np.zeros(100, dtype=np.float64)],
            [np.zeros(10, dtype=np.float64), np.zeros(1, dtype=np.float64)],
        ]
        all_to_all(buffers, log)
        rec = log.records[0]
        assert rec.bytes_by_rank == [800.0, 80.0]
        assert rec.bytes_sent_per_rank == pytest.approx(440.0)
        assert rec.max_bytes_sent == 800.0
        assert log.max_bytes_per_rank("all_to_all") == 800.0

    def test_symmetric_records_default_max_to_mean(self):
        log = CommLog()
        all_reduce([np.zeros(10), np.zeros(10)], log)
        rec = log.records[0]
        assert rec.bytes_by_rank is None
        assert rec.max_bytes_sent == rec.bytes_sent_per_rank

    def test_copies_are_independent(self):
        buffers = [[np.zeros(2)] * 2] * 2
        out = all_to_all(buffers)
        out[0][0][...] = 5
        assert buffers[0][0][0] == 0


class TestAllGather:
    def test_concatenates(self, rng):
        shards = [rng.standard_normal((2, 3)) for _ in range(3)]
        out = all_gather(shards)
        np.testing.assert_allclose(out[0], np.concatenate(shards))
        np.testing.assert_allclose(out[2], out[0])


class TestCommLog:
    def test_counts_and_totals(self):
        log = CommLog()
        log.log("all_reduce", 8, 100.0)
        log.log("all_to_all", 8, 50.0)
        log.log("all_to_all", 8, 25.0)
        assert log.counts() == {"all_reduce": 1, "all_to_all": 2}
        assert log.total_bytes_per_rank() == 175.0
        assert log.total_bytes_per_rank("all_to_all") == 75.0

"""Simulated expert parallelism must compute exactly the single-process
dMoE function and move the right number of bytes."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import dMoE
from repro.distributed import DeviceMesh, ExpertParallelDMoE


def _setup(world=4, experts=8, top_k=1, seed=0, hidden=16, ffn=32, bs=4):
    layer = dMoE(
        hidden, ffn, experts, top_k=top_k, block_size=bs, rng=seed,
        load_balance_coef=0.0,
    )
    layer.eval()
    mesh = DeviceMesh(world=world, expert_parallel=world)
    return layer, ExpertParallelDMoE(layer, mesh)


class TestEquivalence:
    @pytest.mark.parametrize("top_k", [1, 2])
    def test_matches_single_process(self, rng, top_k):
        layer, ep = _setup(top_k=top_k)
        xs = [rng.standard_normal((10 + i, 16)) for i in range(4)]
        res = ep.forward(xs)
        ref, _ = layer(Tensor(np.concatenate(xs), dtype=np.float64))
        got = np.concatenate(res.outputs_per_rank)
        np.testing.assert_allclose(got, ref.data, atol=1e-9)

    def test_uneven_rank_batches(self, rng):
        layer, ep = _setup()
        xs = [rng.standard_normal((n, 16)) for n in (1, 20, 3, 7)]
        res = ep.forward(xs)
        ref, _ = layer(Tensor(np.concatenate(xs), dtype=np.float64))
        np.testing.assert_allclose(
            np.concatenate(res.outputs_per_rank), ref.data, atol=1e-9
        )

    def test_two_rank_mesh(self, rng):
        layer, ep = _setup(world=2)
        xs = [rng.standard_normal((8, 16)) for _ in range(2)]
        res = ep.forward(xs)
        ref, _ = layer(Tensor(np.concatenate(xs), dtype=np.float64))
        np.testing.assert_allclose(
            np.concatenate(res.outputs_per_rank), ref.data, atol=1e-9
        )


class TestDataflow:
    def test_two_all_to_alls(self, rng):
        layer, ep = _setup()
        res = ep.forward([rng.standard_normal((8, 16)) for _ in range(4)])
        assert res.comm_log.counts() == {"all_to_all": 2}

    def test_token_conservation(self, rng):
        """Tokens received across ranks == routed copies."""
        layer, ep = _setup(top_k=2)
        xs = [rng.standard_normal((9, 16)) for _ in range(4)]
        res = ep.forward(xs)
        assert sum(res.tokens_received_per_rank) == 4 * 9 * 2

    def test_comm_bytes_scale_with_tokens(self, rng):
        layer, ep = _setup()
        small = ep.forward([rng.standard_normal((4, 16)) for _ in range(4)])
        large = ep.forward([rng.standard_normal((40, 16)) for _ in range(4)])
        assert (
            large.comm_log.total_bytes_per_rank()
            > small.comm_log.total_bytes_per_rank()
        )

    def test_rejects_wrong_rank_count(self, rng):
        layer, ep = _setup()
        with pytest.raises(ValueError):
            ep.forward([rng.standard_normal((4, 16))])

    def test_rejects_indivisible_experts(self):
        layer = dMoE(16, 32, 6, block_size=4, rng=0)
        with pytest.raises(ValueError):
            ExpertParallelDMoE(layer, DeviceMesh(world=4, expert_parallel=4))

import pytest

from repro.distributed import DeviceMesh


class TestDeviceMesh:
    def test_paper_configuration(self):
        mesh = DeviceMesh(world=8, expert_parallel=8)
        assert mesh.experts_per_rank(64) == 8

    def test_owner_of_expert(self):
        mesh = DeviceMesh(world=4, expert_parallel=4)
        assert mesh.owner_of_expert(0, 8) == 0
        assert mesh.owner_of_expert(7, 8) == 3

    def test_rejects_indivisible_experts(self):
        mesh = DeviceMesh(world=4, expert_parallel=4)
        with pytest.raises(ValueError):
            mesh.experts_per_rank(6)

    def test_rejects_ep_not_dividing_world(self):
        with pytest.raises(ValueError):
            DeviceMesh(world=8, expert_parallel=3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeviceMesh(world=0)

"""One ProcessGroup contract, two transports.

The forked ``"mp"`` backend must be bit-identical to the threaded
``"sim"`` reference (and therefore to the in-process collectives) for
every collective and for the full expert-parallel dMoE forward and
backward, with overlap on or off.  Faults must be *real* under mp — a
scheduled rank failure is a SIGKILL detected by peers — and no shared
memory may survive a run, clean or chaotic.
"""

import os

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import dMoE
from repro.distributed import (
    DeviceMesh,
    ExpertParallelDMoE,
    WorkerFailure,
    all_reduce,
    run_distributed,
)
from repro.distributed import shm
from repro.distributed.mp_backend import MpEchoGroup
from repro.resilience.faults import (
    CORRUPT_PAYLOAD,
    DELAY,
    RANK_FAILURE,
    CollectiveFault,
    FaultEvent,
)

WORLDS = [2, 4]


def _collective_suite(group):
    """Every collective once, from one rank's point of view."""
    w = group.world
    base = np.arange(6, dtype=np.float64).reshape(2, 3) * (group.rank + 1)
    out = {}
    out["all_reduce"] = group.all_reduce(base)
    out["all_gather"] = group.all_gather(base + 0.5)
    send = [base + 10.0 * dst for dst in range(w)]
    out["all_to_all"] = group.all_to_all(send)
    pending = group.isend_all_to_all([s * 2.0 for s in send])
    out["self_payload"] = np.array(pending.self_payload, copy=True)
    out["isend_all_to_all"] = pending.wait()
    out["broadcast"] = group.broadcast(base * 3.0, root=w - 1)
    group.barrier()
    return out


def _assert_values_equal(a, b, msg=""):
    if isinstance(a, dict):
        assert a.keys() == b.keys()
        for k in a:
            _assert_values_equal(a[k], b[k], f"{msg}[{k}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), msg
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_values_equal(x, y, f"{msg}[{i}]")
    else:
        np.testing.assert_array_equal(a, b, err_msg=msg, strict=True)


class TestCollectiveBitIdentity:
    @pytest.mark.parametrize("world", WORLDS)
    def test_mp_matches_sim_bitwise(self, world):
        sim = run_distributed(_collective_suite, world, backend="sim")
        mp_ = run_distributed(_collective_suite, world, backend="mp")
        assert sim.backend == "sim" and mp_.backend == "mp"
        for rank in range(world):
            _assert_values_equal(
                sim.values[rank], mp_.values[rank], f"rank {rank}"
            )

    @pytest.mark.parametrize("world", WORLDS)
    def test_mp_matches_in_process_reference(self, world):
        arrs = [
            np.arange(6, dtype=np.float64).reshape(2, 3) * (r + 1)
            for r in range(world)
        ]
        ref = all_reduce([a.copy() for a in arrs])
        res = run_distributed(_collective_suite, world, backend="mp")
        for rank in range(world):
            np.testing.assert_array_equal(
                res.values[rank]["all_reduce"], ref[rank], strict=True
            )

    def test_large_payloads_ride_shared_memory(self):
        """Above the inline threshold the segment path must carry the
        exact bytes (and leave nothing behind — checked suite-wide)."""
        big = np.arange(8192, dtype=np.float64)  # 64 KiB >> threshold

        def fn(group):
            return group.all_reduce(big * (group.rank + 1))

        res = run_distributed(fn, 2, backend="mp")
        expected = big * 1 + big * 2
        for v in res.values:
            np.testing.assert_array_equal(v, expected, strict=True)
        assert shm.leaked_segments(res.extras["session"]) == []


def _make_ep(world, hidden=16, ffn=32, experts=8):
    layer = dMoE(
        hidden, ffn, experts, block_size=4, rng=0, load_balance_coef=0.0
    )
    layer.eval()
    mesh = DeviceMesh(world=world, expert_parallel=world)
    return layer, ExpertParallelDMoE(layer, mesh)


class TestExpertParallelBitIdentity:
    @pytest.mark.parametrize("world", WORLDS)
    @pytest.mark.parametrize("overlap", [True, False], ids=["overlap", "serial"])
    def test_forward_rank_across_backends_and_reference(self, world, overlap):
        """mp == sim == in-process forward, bitwise; and all three match
        the single-process dMoE to float tolerance."""
        layer, ep = _make_ep(world)
        rng = np.random.default_rng(3)
        xs = [rng.standard_normal((6 + r, 16)) for r in range(world)]

        def fn(group):
            return ep.forward_rank(group, xs[group.rank], overlap=overlap)

        sim = run_distributed(fn, world, backend="sim")
        mp_ = run_distributed(fn, world, backend="mp")
        ref = ep.forward(xs).outputs_per_rank
        for r in range(world):
            np.testing.assert_array_equal(sim.values[r], mp_.values[r], strict=True)
            np.testing.assert_array_equal(mp_.values[r], ref[r], strict=True)

        single, _ = layer(Tensor(np.concatenate(xs), dtype=np.float64))
        np.testing.assert_allclose(
            np.concatenate(mp_.values), single.data, atol=1e-9
        )

    def test_overlap_is_purely_a_performance_knob(self):
        """Overlapped and serialized exchanges compute identical bits on
        the mp backend (same grouped-GEMM batch, different schedule)."""
        _, ep = _make_ep(4)
        rng = np.random.default_rng(5)
        xs = [rng.standard_normal((9, 16)) for _ in range(4)]

        def run(overlap):
            fn = lambda g: ep.forward_rank(g, xs[g.rank], overlap=overlap)
            return run_distributed(fn, 4, backend="mp")

        on, off = run(True), run(False)
        for a, b in zip(on.values, off.values):
            np.testing.assert_array_equal(a, b, strict=True)

    @pytest.mark.parametrize("world", WORLDS)
    def test_forward_backward_rank_across_backends(self, world):
        """Forward output, input gradient, and the per-rank expert shard
        gradients are bit-identical between the two backends."""
        _, ep = _make_ep(world)
        rng = np.random.default_rng(7)
        xs = [rng.standard_normal((5 + r, 16)) for r in range(world)]
        gs = [rng.standard_normal((5 + r, 16)) for r in range(world)]

        def fn(group):
            return ep.forward_backward_rank(
                group, xs[group.rank], gs[group.rank]
            )

        sim = run_distributed(fn, world, backend="sim")
        mp_ = run_distributed(fn, world, backend="mp")
        for r in range(world):
            s_out, s_dx, s_eg = sim.values[r]
            m_out, m_dx, m_eg = mp_.values[r]
            np.testing.assert_array_equal(s_out, m_out, strict=True)
            np.testing.assert_array_equal(s_dx, m_dx, strict=True)
            assert s_eg.keys() == m_eg.keys()
            for k in s_eg:
                if s_eg[k] is None:
                    assert m_eg[k] is None, k
                else:
                    np.testing.assert_array_equal(
                        s_eg[k], m_eg[k], err_msg=k, strict=True
                    )

    def test_forward_backward_rank_matches_in_process(self):
        """The SPMD backward agrees with the in-process forward_backward
        oracle on outputs and input gradients."""
        world = 2
        _, ep = _make_ep(world)
        rng = np.random.default_rng(11)
        xs = [rng.standard_normal((7, 16)) for _ in range(world)]
        gs = [rng.standard_normal((7, 16)) for _ in range(world)]

        def fn(group):
            return ep.forward_backward_rank(
                group, xs[group.rank], gs[group.rank]
            )

        mp_ = run_distributed(fn, world, backend="mp")
        result, input_grads = ep.forward_backward(xs, gs)
        for r in range(world):
            out, dx, _ = mp_.values[r]
            np.testing.assert_array_equal(
                out, result.outputs_per_rank[r], strict=True
            )
            np.testing.assert_array_equal(dx, input_grads[r], strict=True)


class TestRealFaults:
    def test_rank_kill_is_a_real_death(self):
        """A scheduled rank_failure SIGKILLs the worker; the supervisor
        reports the dead rank instead of hanging."""

        def fn(group):
            return group.all_reduce(np.ones(4))

        with pytest.raises(WorkerFailure) as ei:
            run_distributed(
                fn,
                2,
                backend="mp",
                timeout_s=30.0,
                op_timeout_s=2.0,
                faults=[FaultEvent(RANK_FAILURE, op="all_reduce", rank=1)],
            )
        assert 1 in ei.value.failed_ranks

    def test_corrupt_payload_reaches_the_peer(self):
        """Sender-side corruption plants a NaN the *receiver* observes —
        the bytes really crossed the process boundary."""

        def fn(group):
            recv = group.all_to_all(
                [np.ones(8) for _ in range(group.world)]
            )
            return [bool(np.isnan(p).any()) for p in recv]

        res = run_distributed(
            fn,
            2,
            backend="mp",
            faults=[FaultEvent(CORRUPT_PAYLOAD, op="all_to_all", rank=0)],
        )
        # Rank 1 sees the NaN in the payload that arrived from rank 0;
        # nobody else's buffers are touched.
        assert res.values[1][0] is True
        assert res.values[1][1] is False
        assert res.values[0] == [False, False]

    def test_delay_is_real_and_exposed_as_wait(self):
        """A delayed rank makes its *peer* block — the stall lands in
        the peer's wait_s, the exposed-communication metric."""

        def fn(group):
            return group.all_reduce(np.ones(4))

        res = run_distributed(
            fn,
            2,
            backend="mp",
            faults=[
                FaultEvent(DELAY, op="all_reduce", rank=1, delay_s=0.3)
            ],
        )
        assert res.wait_s_per_rank[0] >= 0.1

    def test_no_shm_leak_after_rank_kill(self):
        """A SIGKILL'd receiver never unlinks its segments; the
        supervisor must sweep them before raising."""
        parent_prefix = f"rpd{os.getpid()}_"
        big = np.arange(8192, dtype=np.float64)

        def fn(group):
            return group.all_reduce(big)

        with pytest.raises(WorkerFailure):
            run_distributed(
                fn,
                2,
                backend="mp",
                timeout_s=30.0,
                op_timeout_s=2.0,
                faults=[FaultEvent(RANK_FAILURE, op="all_reduce", rank=1)],
            )
        assert shm.leaked_segments(parent_prefix) == []


class TestEchoGroup:
    def test_matches_in_process_all_reduce_bitwise(self):
        group = MpEchoGroup(4)
        try:
            rng = np.random.default_rng(0)
            shards = [rng.standard_normal((5, 3)) for _ in range(4)]
            got = group.all_reduce_shards([s.copy() for s in shards])
            ref = all_reduce([s.copy() for s in shards])
            assert len(got) == 4
            for a, b in zip(got, ref):
                np.testing.assert_array_equal(a, b, strict=True)
        finally:
            group.close()
        assert shm.leaked_segments(group.session) == []

    def test_kill_faults_then_heal_recovers(self):
        group = MpEchoGroup(3, op_timeout_s=2.0)
        try:
            group.kill_rank(1)
            assert group.alive == [True, False, True]
            with pytest.raises(CollectiveFault):
                group.all_reduce_shards([np.ones(4)] * 3)
            assert group.heal() == [1]
            assert group.alive == [True, True, True]
            out = group.all_reduce_shards([np.ones(4)] * 3)
            np.testing.assert_array_equal(out[0], 3.0 * np.ones(4))
        finally:
            group.close()
        assert shm.leaked_segments(group.session) == []

    def test_shard_count_validated(self):
        group = MpEchoGroup(2)
        try:
            with pytest.raises(ValueError):
                group.all_reduce_shards([np.ones(2)] * 3)
            with pytest.raises(ValueError):
                group.kill_rank(0)
        finally:
            group.close()

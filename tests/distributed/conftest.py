"""Distributed-suite safety net: hard per-test deadline + orphan reaping.

The mp backend forks real worker processes, and its failure modes are
exactly the ones that hang test suites: a collective waiting on a peer
that will never answer, a worker that outlived its supervisor.  Every
test in this package therefore runs under a hard ``SIGALRM`` deadline
(a hung test fails loudly instead of stalling CI), and any child
processes still alive when a test finishes are killed so one test's
leak cannot deadlock the next.
"""

import multiprocessing
import signal

import pytest

#: Generous relative to the slowest test here (a few seconds), tight
#: relative to CI patience.
HARD_TIMEOUT_S = 90


@pytest.fixture(autouse=True)
def _hard_deadline_and_child_reaper(request):
    def on_alarm(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the hard {HARD_TIMEOUT_S}s "
            "distributed-test deadline (hung collective / stuck worker?)"
        )

    old = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)
        # Reap anything a failed test left behind (run_mp cleans up after
        # itself on every path, but a mid-test assertion error can strand
        # a persistent echo worker).
        for proc in multiprocessing.active_children():
            proc.kill()
            proc.join(timeout=5.0)

"""The trainer seams over real processes.

``TrainerConfig(dist_backend="mp")`` routes the per-step gradient
all-reduce through persistent forked echo workers; the training
trajectory must stay bit-identical to the ``"sim"`` reference, a
scheduled rank failure must be a *real* SIGKILL whose recovery (skip
the step, heal the group) matches the simulated fault path bit for
bit, and a run interrupted after the chaos must resume from a
checkpoint onto the exact same trajectory — including across world
sizes (elastic resume, PR 7).
"""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.core import dMoE
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.distributed import DataParallelTrainer, DeviceMesh
from repro.nn import Linear, Sequential, TransformerLM
from repro.resilience.faults import (
    RANK_FAILURE,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    inject_faults,
)
from repro.resilience.guardrails import GuardrailConfig
from repro.training import Adam, Trainer, TrainerConfig


def _trainer(dist_backend, injector=None, max_steps=4, mesh=None):
    pile = SyntheticPile(
        PileConfig(vocab_size=64, num_domains=3, branching=4), seed=1
    )
    ds = LMDataset(pile.token_stream(8_000, 32), seq_len=16)
    train, val = ds.split(0.1)
    ffn = lambda i: dMoE(16, 32, num_experts=4, block_size=8, rng=i)
    model = TransformerLM(64, 16, 2, 2, 16, ffn_factory=ffn, rng=0)
    cfg = TrainerConfig(
        global_batch=4,
        micro_batch=4,
        max_steps=max_steps,
        eval_every=0,
        log_every=1,
        guardrails=GuardrailConfig(max_consecutive_bad=3),
        dp_world=2,
        dist_backend=dist_backend,
    )
    return Trainer(
        model,
        train,
        val,
        cfg,
        optimizer=Adam(model.parameters(), lr=1e-3),
        rng=9,
        fault_injector=injector,
        mesh=mesh,
    )


def _losses(history):
    return {r.step: r.loss for r in history.records}


def _assert_params_equal(a, b):
    for (n1, p1), (_, p2) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_array_equal(p1.data, p2.data, err_msg=n1)


class TestTrainerBackends:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="dist_backend"):
            TrainerConfig(dist_backend="nccl")

    def test_mp_trajectory_bit_identical_to_sim(self):
        sim = _trainer("sim")
        sim.train()
        mp_ = _trainer("mp")
        mp_.train()
        assert _losses(sim.history) == _losses(mp_.history)
        _assert_params_equal(sim.model, mp_.model)
        # The echo workers died with the run.
        assert mp_._echo_group is None

    def test_real_rank_kill_skips_exactly_like_injected_fault(self):
        """sim injects a collective fault at step 2; mp SIGKILLs a real
        echo worker at step 2.  Both must skip that one step, heal, and
        land on the identical trajectory."""
        sim_sched = FaultSchedule(
            [FaultEvent(RANK_FAILURE, step=2, op="all_reduce")]
        )
        sim_t = _trainer("sim", FaultInjector(sim_sched))
        with inject_faults(sim_t.fault_injector):
            sim_t.train()

        mp_sched = FaultSchedule(
            [FaultEvent(RANK_FAILURE, step=2, op="all_reduce")]
        )
        mp_t = _trainer("mp", FaultInjector(mp_sched))
        with inject_faults(mp_t.fault_injector):
            mp_t.train()

        assert sim_sched.pending == 0, "sim fault never fired"
        assert mp_sched.pending == 0, "mp kill never fired"
        assert _losses(sim_t.history) == _losses(mp_t.history)
        _assert_params_equal(sim_t.model, mp_t.model)

        # The skip really happened: a fault-free run ends elsewhere.
        clean = _trainer("sim")
        clean.train()
        diverged = any(
            not np.array_equal(p1.data, p2.data)
            for p1, p2 in zip(clean.model.parameters(), mp_t.model.parameters())
        )
        assert diverged, "the killed step was not skipped"

    @pytest.mark.parametrize("resume_world", [4, 2], ids=["same", "shrink"])
    def test_chaos_then_elastic_resume_bit_exact(self, tmp_path, resume_world):
        """Kill a real rank at step 2, checkpoint at step 4, resume (at
        the same or a smaller expert mesh) and finish: bit-equal to the
        uninterrupted chaotic run."""
        total, cut = 6, 4

        def chaos_trainer(max_steps, mesh):
            sched = FaultSchedule(
                [FaultEvent(RANK_FAILURE, step=2, op="all_reduce")]
            )
            return _trainer("mp", FaultInjector(sched), max_steps, mesh)

        straight = chaos_trainer(total, DeviceMesh(4, 4))
        with inject_faults(straight.fault_injector):
            straight.train()

        first = chaos_trainer(total, DeviceMesh(4, 4))
        first.config.max_steps = cut
        with inject_faults(first.fault_injector):
            first.train()
        path = str(tmp_path / "chaos-ckpt")
        first.save(path, step=cut)

        resumed = _trainer(
            "mp", max_steps=total, mesh=DeviceMesh(resume_world, resume_world)
        )
        hist = resumed.fit(resume=path)

        s, r = _losses(straight.history), _losses(hist)
        for step in range(cut, total):
            assert s[step] == r[step], f"loss diverged at step {step}"
        _assert_params_equal(straight.model, resumed.model)
        for a, b in zip(straight.optimizer._m, resumed.optimizer._m):
            np.testing.assert_array_equal(a, b)


class TestDataParallelBackends:
    def _replicas(self, world):
        return [
            Sequential(Linear(6, 12, rng=0), Linear(12, 4, rng=1))
            for _ in range(world)
        ]

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="dist_backend"):
            DataParallelTrainer(self._replicas(2), dist_backend="gloo")

    def test_mp_training_bit_identical_to_sim(self):
        world = 2
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 6)).astype(np.float32)
        y = rng.integers(0, 4, 8)

        def loss_fn(model, rank):
            xs, ys = x[rank * 4 : rank * 4 + 4], y[rank * 4 : rank * 4 + 4]
            return cross_entropy(model(Tensor(xs)), ys)

        losses = {}
        params = {}
        for backend in ("sim", "mp"):
            dp = DataParallelTrainer(
                self._replicas(world), lr=1e-2, dist_backend=backend
            )
            try:
                losses[backend] = [dp.step(loss_fn) for _ in range(4)]
                dp.check_replicas_synchronized()
                params[backend] = [
                    p.data.copy() for p in dp.replicas[0].parameters()
                ]
                # Both backends account the same ring-all-reduce volume.
                assert dp.comm_log.counts()["all_reduce"] == 4 * 4
            finally:
                dp.close()
        assert losses["sim"] == losses["mp"]
        for a, b in zip(params["sim"], params["mp"]):
            np.testing.assert_array_equal(a, b, strict=True)

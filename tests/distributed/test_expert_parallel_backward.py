"""Distributed backward: gradients through the all-to-all dataflow must
match a fixed-routing single-process reference exactly."""

import numpy as np
import pytest

from repro.autograd import ACTIVATIONS, gather_rows, getitem, scatter_rows
from repro.autograd.tensor import Tensor
from repro.core import dMoE
from repro.core.topology_builder import expert_of_padded_row, make_topology
from repro.distributed import DeviceMesh, ExpertParallelDMoE
from repro.moe.permute import make_padded_plan
from repro.sparse.autograd_ops import dsd_mm, sdd_mm, sparse_bias_add


def _setup(world=2, experts=4, top_k=1, hidden=16, ffn=32, bs=4, seed=0):
    layer = dMoE(
        hidden, ffn, experts, top_k=top_k, block_size=bs, rng=seed,
        load_balance_coef=0.0,
    )
    layer.eval()
    return layer, ExpertParallelDMoE(layer, DeviceMesh(world, world))


def _fixed_routing_reference(layer, x, dy):
    """Single-process dMoE forward/backward with routing held constant.

    Routing weights enter as plain constants, so the reference's input
    gradient matches the EP implementation's fixed-routing semantics.
    """
    layer.zero_grad()
    x_t = Tensor(x, requires_grad=True, dtype=np.float64)
    logits = x @ layer.router.proj.weight.data
    e_ = np.exp(logits - logits.max(axis=-1, keepdims=True))
    scores = e_ / e_.sum(axis=-1, keepdims=True)
    from repro.moe.router import top_k_indices

    indices = top_k_indices(scores, layer.top_k)
    weights = scores[np.arange(len(scores))[:, None], indices]

    plan = make_padded_plan(indices, layer.num_experts, layer.block_size)
    topo = make_topology(plan, layer.ffn_hidden_size)
    xp = gather_rows(x_t, plan.gather_indices)
    e = layer.experts
    h = sdd_mm(xp, e.w1_flat(), topo)
    h = sparse_bias_add(h, e.b1_flat(), topo)
    h = ACTIVATIONS[layer.activation](h)
    y = dsd_mm(h, e.w2_flat(), topo)
    y = y + getitem(e.b2, expert_of_padded_row(plan))
    flat_w = Tensor(weights.reshape(-1, 1), dtype=np.float64)
    permuted_w = gather_rows(flat_w, plan.copy_indices)
    out = scatter_rows(y * permuted_w, plan.gather_indices, len(x))
    out.backward(np.asarray(dy, dtype=np.float64))
    grads = {n: p.grad.copy() for n, p in layer.experts.named_parameters()}
    return out.data, x_t.grad.copy(), grads


class TestExpertParallelBackward:
    @pytest.mark.parametrize("top_k", [1, 2])
    def test_matches_fixed_routing_reference(self, rng, top_k):
        layer, ep = _setup(top_k=top_k)
        xs = [rng.standard_normal((9 + i, 16)) for i in range(2)]
        dys = [rng.standard_normal((9 + i, 16)) for i in range(2)]

        layer.zero_grad()
        result, input_grads = ep.forward_backward(xs, dys)
        ep_grads = {n: p.grad.copy() for n, p in layer.experts.named_parameters()}

        ref_out, ref_dx, ref_grads = _fixed_routing_reference(
            layer, np.concatenate(xs), np.concatenate(dys)
        )
        np.testing.assert_allclose(
            np.concatenate(result.outputs_per_rank), ref_out, atol=1e-9
        )
        np.testing.assert_allclose(
            np.concatenate(input_grads), ref_dx, atol=1e-9
        )
        for name in ref_grads:
            np.testing.assert_allclose(
                ep_grads[name], ref_grads[name], atol=1e-9, err_msg=name
            )

    def test_four_all_to_alls(self, rng):
        """Forward dispatch+return plus backward dispatch+return —
        exactly what the cost model charges per layer."""
        layer, ep = _setup()
        xs = [rng.standard_normal((8, 16)) for _ in range(2)]
        dys = [rng.standard_normal((8, 16)) for _ in range(2)]
        result, _ = ep.forward_backward(xs, dys)
        assert result.comm_log.counts()["all_to_all"] == 4

    def test_four_rank_mesh(self, rng):
        layer, ep = _setup(world=4, experts=8)
        xs = [rng.standard_normal((6 + i, 16)) for i in range(4)]
        dys = [rng.standard_normal((6 + i, 16)) for i in range(4)]
        layer.zero_grad()
        result, input_grads = ep.forward_backward(xs, dys)
        ref_out, ref_dx, ref_grads = _fixed_routing_reference(
            layer, np.concatenate(xs), np.concatenate(dys)
        )
        np.testing.assert_allclose(
            np.concatenate(input_grads), ref_dx, atol=1e-9
        )

    def test_expert_grads_stay_rank_local(self, rng):
        """Experts untouched by any token this batch get zero gradient —
        there is no all-reduce over expert weights."""
        layer, ep = _setup(world=2, experts=4)
        # Route everything to expert 0 (ties with zeroed router).
        layer.router.proj.weight.data[...] = 0.0
        xs = [rng.standard_normal((8, 16)) for _ in range(2)]
        dys = [rng.standard_normal((8, 16)) for _ in range(2)]
        layer.zero_grad()
        ep.forward_backward(xs, dys)
        w1g = layer.experts.w1.grad
        assert np.abs(w1g[0]).max() > 0
        np.testing.assert_array_equal(w1g[1:], 0.0)

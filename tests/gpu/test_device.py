import pytest

from repro.gpu.device import A100_SXM4_80GB, V100_SXM2_32GB, DeviceSpec


class TestDeviceSpec:
    def test_a100_published_constants(self):
        a = A100_SXM4_80GB
        assert a.fp16_tflops == 312.0
        assert a.sm_count == 108
        assert a.memory_bytes == 80 * 1024**3
        assert a.hbm_bandwidth_gbs == 2039.0

    def test_unit_conversions(self):
        a = A100_SXM4_80GB
        assert a.fp16_flops == 312.0e12
        assert a.hbm_bytes_per_s == 2039.0e9
        assert a.nvlink_bytes_per_s == 600.0e9

    def test_ridge_point_ordering(self):
        """A100's compute/bandwidth ridge sits far above small-tile
        arithmetic intensity — the reason tiny tiles go memory bound."""
        a = A100_SXM4_80GB
        ridge = a.fp16_flops / a.hbm_bytes_per_s  # FLOP per byte
        assert 100 < ridge < 200

    def test_v100_strictly_weaker(self):
        assert V100_SXM2_32GB.fp16_tflops < A100_SXM4_80GB.fp16_tflops
        assert V100_SXM2_32GB.hbm_bandwidth_gbs < A100_SXM4_80GB.hbm_bandwidth_gbs

    def test_frozen(self):
        with pytest.raises(Exception):
            A100_SXM4_80GB.sm_count = 1

    def test_custom_device(self):
        d = DeviceSpec(
            name="toy", fp16_tflops=10, fp32_tflops=1,
            hbm_bandwidth_gbs=100, l2_bytes=1 << 20, sm_count=4,
            memory_bytes=1 << 30,
        )
        assert d.fp16_flops == 1e13

"""Dense matmul model: Figure 4's qualitative claims must hold."""

import numpy as np
import pytest

from repro.gpu.device import A100_SXM4_80GB as A100
from repro.gpu.device import V100_SXM2_32GB as V100
from repro.gpu.matmul import (
    batched_matmul_time,
    best_tile,
    elementwise_time,
    matmul_throughput_tflops,
    matmul_time,
)
from repro.gpu.tiling import CUTLASS_TILES, MEGABLOCKS_TILE, TileConfig


class TestBasicSanity:
    def test_throughput_below_peak(self):
        for s in (512, 2048, 8192):
            for t in CUTLASS_TILES:
                assert matmul_throughput_tflops(s, s, s, t, A100) < A100.fp16_tflops

    def test_time_positive_and_monotone_in_problem_size(self):
        t1 = matmul_time(1024, 1024, 1024, MEGABLOCKS_TILE, A100).total_s
        t2 = matmul_time(2048, 2048, 2048, MEGABLOCKS_TILE, A100).total_s
        assert 0 < t1 < t2

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            matmul_time(0, 128, 128, MEGABLOCKS_TILE, A100)

    def test_kernel_time_breakdown(self):
        kt = matmul_time(4096, 4096, 4096, MEGABLOCKS_TILE, A100)
        assert kt.total_s > max(kt.compute_s, kt.memory_s)
        assert kt.bound in ("compute", "memory")
        assert kt.grid == 32 * 32

    def test_faster_device_is_faster(self):
        a = matmul_time(4096, 4096, 4096, MEGABLOCKS_TILE, A100).total_s
        v = matmul_time(4096, 4096, 4096, MEGABLOCKS_TILE, V100).total_s
        assert a < v


class TestFigure4Claims:
    """§5.1.2: 128x128 consistently on-par or better than other tiles."""

    @pytest.mark.parametrize("power", range(9, 15))
    def test_128x128_on_par_or_better(self, power):
        s = 2**power
        tp = {
            t.label: matmul_throughput_tflops(s, s, s, t, A100)
            for t in CUTLASS_TILES
        }
        best = max(tp.values())
        assert tp["128x128"] >= 0.99 * best

    def test_best_tile_is_128x128_across_sweep(self):
        for power in range(9, 15):
            s = 2**power
            assert best_tile(s, s, s, A100).label == "128x128"

    def test_throughput_increases_with_size(self):
        tps = [
            matmul_throughput_tflops(2**p, 2**p, 2**p, MEGABLOCKS_TILE, A100)
            for p in range(9, 15)
        ]
        assert all(a < b for a, b in zip(tps, tps[1:]))

    def test_small_problems_hurt_large_tiles_most(self):
        """At 512^3, 256x128 suffers wave quantization vs 64x64."""
        small_tile = matmul_throughput_tflops(512, 512, 512, TileConfig(64, 64, threadblocks_per_sm=4), A100)
        big_tile = matmul_throughput_tflops(512, 512, 512, TileConfig(256, 128), A100)
        assert big_tile < small_tile

    def test_large_problems_reach_high_fraction_of_peak(self):
        tp = matmul_throughput_tflops(16384, 16384, 16384, MEGABLOCKS_TILE, A100)
        assert tp > 0.75 * A100.fp16_tflops


class TestBatchedMatmul:
    def test_equivalent_to_larger_single_when_compute_bound(self):
        """8 experts of (2048 x n x k) ~ one launch of 8x tiles."""
        single = matmul_time(2048, 2048, 512, MEGABLOCKS_TILE, A100)
        batched = batched_matmul_time(8, 2048, 2048, 512, MEGABLOCKS_TILE, A100)
        assert batched.grid == 8 * single.grid
        assert batched.total_s > single.total_s

    def test_batched_invalid(self):
        with pytest.raises(ValueError):
            batched_matmul_time(0, 10, 10, 10, MEGABLOCKS_TILE, A100)


class TestElementwise:
    def test_bandwidth_bound_scaling(self):
        t1 = elementwise_time(10**6, A100)
        t2 = elementwise_time(10**8, A100)
        assert t2 > t1
        # Large op approaches bytes / bandwidth.
        expect = 10**8 * 2 * 2 / A100.hbm_bytes_per_s
        assert abs(t2 - expect) / expect < 0.1

import pytest

from repro.gpu.tiling import (
    CUTLASS_TILES,
    MEGABLOCKS_TILE,
    TileConfig,
    wave_utilization,
    waves,
)


class TestTileConfig:
    def test_grid(self):
        t = TileConfig(128, 128)
        assert t.grid(256, 256) == 4
        assert t.grid(129, 128) == 2  # fringe row tile

    def test_padded_output(self):
        t = TileConfig(128, 128)
        assert t.padded_output(129, 128) == 256 * 128

    def test_arithmetic_intensity_monotone_in_size(self):
        assert (
            TileConfig(128, 128).arithmetic_intensity
            > TileConfig(64, 64).arithmetic_intensity
        )

    def test_label(self):
        assert MEGABLOCKS_TILE.label == "128x128"

    def test_cutlass_set_orientation(self):
        """Paper keeps first tile dim >= second (slightly faster)."""
        assert all(t.m >= t.n for t in CUTLASS_TILES)

    def test_megablocks_tile_in_cutlass_set(self):
        assert any(t.label == "128x128" for t in CUTLASS_TILES)


class TestWaves:
    def test_exact_fill(self):
        assert waves(216, 108, 1) == 2

    def test_partial_last_wave(self):
        assert waves(109, 108, 1) == 2

    def test_utilization_full(self):
        assert wave_utilization(108, 108, 1) == 1.0

    def test_utilization_partial(self):
        # 109 tiles over 2 waves of 108 slots.
        assert abs(wave_utilization(109, 108, 1) - 109 / 216) < 1e-12

    def test_utilization_empty(self):
        assert wave_utilization(0, 108, 1) == 0.0

    def test_occupancy_multiplies_slots(self):
        assert waves(216, 108, 2) == 1

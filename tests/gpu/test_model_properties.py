"""Property-based invariants of the performance model.

A cost model that violates basic physics (negative times, free work,
super-peak throughput) would silently corrupt every figure; these
hypothesis tests pin the invariants over broad input ranges.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.blocksparse import GroupedProblem, grouped_matmul_time
from repro.gpu.comms import all_reduce_time, all_to_all_time
from repro.gpu.device import A100_SXM4_80GB as A100
from repro.gpu.matmul import batched_matmul_time, matmul_time
from repro.gpu.tiling import CUTLASS_TILES, MEGABLOCKS_TILE

DIMS = st.integers(64, 8192)


class TestMatmulInvariants:
    @given(DIMS, DIMS, DIMS)
    def test_time_positive_and_finite(self, m, n, k):
        t = matmul_time(m, n, k, MEGABLOCKS_TILE, A100).total_s
        assert np.isfinite(t) and t > 0

    @given(DIMS, DIMS, DIMS)
    def test_throughput_below_peak(self, m, n, k):
        t = matmul_time(m, n, k, MEGABLOCKS_TILE, A100).total_s
        assert 2.0 * m * n * k / t <= A100.fp16_flops

    @given(DIMS, DIMS, DIMS)
    def test_monotone_in_k(self, m, n, k):
        t1 = matmul_time(m, n, k, MEGABLOCKS_TILE, A100).total_s
        t2 = matmul_time(m, n, 2 * k, MEGABLOCKS_TILE, A100).total_s
        assert t2 >= t1

    @given(DIMS, DIMS, DIMS, st.integers(2, 16))
    def test_batched_at_least_single(self, m, n, k, b):
        single = matmul_time(m, n, k, MEGABLOCKS_TILE, A100).total_s
        batched = batched_matmul_time(b, m, n, k, MEGABLOCKS_TILE, A100).total_s
        assert batched >= single

    @given(DIMS, DIMS, DIMS)
    def test_memory_at_least_compulsory(self, m, n, k):
        kt = matmul_time(m, n, k, MEGABLOCKS_TILE, A100)
        compulsory = (m * k + k * n + m * n) * 2 / A100.hbm_bytes_per_s
        assert kt.memory_s >= compulsory * 0.999


class TestGroupedInvariants:
    @given(
        st.lists(st.integers(1, 64), min_size=1, max_size=16),
        st.integers(1, 32),
    )
    def test_grouped_time_positive(self, tokens_blocks, ffn_blocks):
        problems = [
            GroupedProblem(t * 128, ffn_blocks * 128, 512) for t in tokens_blocks
        ]
        t = grouped_matmul_time(problems, A100).total_s
        assert np.isfinite(t) and t > 0

    @given(st.lists(st.integers(1, 32), min_size=2, max_size=8))
    def test_padding_to_max_never_cheaper(self, tokens_blocks):
        """The dMoE claim in cost-model form: computing actual group
        sizes costs at most what padding every group to the max costs."""
        actual = [GroupedProblem(t * 128, 2048, 512) for t in tokens_blocks]
        mx = max(tokens_blocks)
        padded = [GroupedProblem(mx * 128, 2048, 512)] * len(tokens_blocks)
        t_actual = grouped_matmul_time(actual, A100).total_s
        t_padded = grouped_matmul_time(padded, A100).total_s
        assert t_actual <= t_padded * 1.001

    @given(st.lists(st.integers(1, 32), min_size=1, max_size=8))
    def test_transpose_penalty_nonnegative(self, tokens_blocks):
        problems = [GroupedProblem(t * 128, 2048, 512) for t in tokens_blocks]
        plain = grouped_matmul_time(problems, A100).total_s
        trans = grouped_matmul_time(problems, A100, transposed_sparse=True).total_s
        assert trans >= plain * 0.999


class TestCommsInvariants:
    @given(st.floats(1.0, 1e10), st.integers(2, 64))
    def test_all_reduce_positive_and_monotone_in_bytes(self, nbytes, world):
        t1 = all_reduce_time(nbytes, world, A100)
        t2 = all_reduce_time(2 * nbytes, world, A100)
        assert 0 < t1 <= t2

    @given(st.floats(1.0, 1e10), st.integers(2, 64))
    def test_all_to_all_cheaper_than_all_reduce(self, nbytes, world):
        assert all_to_all_time(nbytes, world, A100) <= all_reduce_time(
            nbytes, world, A100
        )


class TestTileSetInvariants:
    @given(st.integers(256, 8192))
    def test_some_tile_always_beats_nothing(self, s):
        times = [matmul_time(s, s, s, t, A100).total_s for t in CUTLASS_TILES]
        assert min(times) > 0
        # The spread between best and worst tile is bounded (sanity).
        assert max(times) / min(times) < 10

import pytest

from repro.gpu.comms import all_gather_time, all_reduce_time, all_to_all_time
from repro.gpu.device import A100_SXM4_80GB as A100


class TestAllReduce:
    def test_zero_for_single_rank(self):
        assert all_reduce_time(1e9, 1, A100) == 0.0

    def test_ring_volume(self):
        """2*(w-1)/w of the buffer crosses the link."""
        t = all_reduce_time(1e9, 8, A100)
        expected_volume = 2 * 7 / 8 * 1e9 / A100.nvlink_bytes_per_s
        assert t >= expected_volume
        assert t < expected_volume * 1.5  # latency small for 1GB

    def test_monotone_in_world(self):
        assert all_reduce_time(1e9, 8, A100) > all_reduce_time(1e9, 2, A100)


class TestAllToAll:
    def test_zero_for_single_rank(self):
        assert all_to_all_time(1e9, 1, A100) == 0.0

    def test_volume_fraction(self):
        t = all_to_all_time(8e8, 8, A100)
        expected = 7 / 8 * 8e8 / A100.nvlink_bytes_per_s
        assert abs(t - expected) < 1e-4

    def test_cheaper_than_all_reduce_same_bytes(self):
        assert all_to_all_time(1e9, 8, A100) < all_reduce_time(1e9, 8, A100)


class TestAllGather:
    def test_volume(self):
        t = all_gather_time(1e8, 4, A100)
        assert t >= 3 * 1e8 / A100.nvlink_bytes_per_s

    def test_zero_bytes(self):
        assert all_gather_time(0, 8, A100) == 0.0

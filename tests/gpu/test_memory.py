"""Memory model: Table 3 reproduction and §6.1's memory claims."""

import pytest

from repro.configs import TABLE1, TABLE2, TABLE3_MICRO_BATCH_SIZES
from repro.gpu.memory import (
    TUTEL_PEAK_CAPACITY_FACTOR,
    dense_memory,
    max_micro_batch,
    megablocks_expansion,
    moe_memory,
    tutel_expansion,
)


class TestTable3Dense:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_megatron_micro_batch_matches_paper(self, name):
        cfg = TABLE1[name]
        got = max_micro_batch(lambda b: dense_memory(cfg, b))
        assert got == TABLE3_MICRO_BATCH_SIZES["Megatron-LM"][cfg.name]


class TestTable3MegaBlocks:
    @pytest.mark.parametrize("name", list(TABLE2))
    def test_megablocks_micro_batch_matches_paper(self, name):
        cfg = TABLE2[name]
        exp = megablocks_expansion(cfg.top_k)
        got = max_micro_batch(lambda b: moe_memory(cfg, b, exp))
        assert got == TABLE3_MICRO_BATCH_SIZES["MegaBlocks"][cfg.name]


class TestTable3Tutel:
    @pytest.mark.parametrize("name", list(TABLE2))
    def test_tutel_micro_batch_matches_paper(self, name):
        cfg = TABLE2[name]
        exp = tutel_expansion(cfg.top_k, TUTEL_PEAK_CAPACITY_FACTOR[name])
        got = max_micro_batch(lambda b: moe_memory(cfg, b, exp))
        assert got == TABLE3_MICRO_BATCH_SIZES["Tutel"][cfg.name]

    @pytest.mark.parametrize(
        "name,factor", [("XS", 2), ("Small", 4), ("Medium", 8)]
    )
    def test_tutel_micro_batch_reduction_factors(self, name, factor):
        """§6.1: Tutel's micro batch reduced 2x/4x/8x vs MegaBlocks."""
        mb = TABLE3_MICRO_BATCH_SIZES["MegaBlocks"][TABLE2[name].name]
        tu = TABLE3_MICRO_BATCH_SIZES["Tutel"][TABLE2[name].name]
        assert mb == factor * tu


class TestMemoryShape:
    def test_memory_monotone_in_micro_batch(self):
        cfg = TABLE1["Small"]
        totals = [dense_memory(cfg, b).total_bytes for b in (1, 2, 4, 8)]
        assert all(a < b for a, b in zip(totals, totals[1:]))

    def test_memory_monotone_in_expansion(self):
        cfg = TABLE2["Small"]
        a = moe_memory(cfg, 8, expansion=1.0).total_bytes
        b = moe_memory(cfg, 8, expansion=4.0).total_bytes
        assert b > a

    def test_expert_sharding_reduces_weight_bytes(self):
        cfg = TABLE2["Medium"]
        sharded = moe_memory(cfg, 1, 1.0, expert_parallel=8).weights_bytes
        replicated = moe_memory(cfg, 1, 1.0, expert_parallel=1).weights_bytes
        assert sharded < replicated / 4

    def test_moe_weights_dominate_dense(self):
        """§6.1: MoEs need many times more weight storage."""
        moe_w = moe_memory(TABLE2["Medium"], 1, 1.0).weights_bytes
        dense_w = dense_memory(TABLE1["Medium"], 1).weights_bytes
        assert moe_w > 3 * dense_w

    def test_max_micro_batch_none_when_nothing_fits(self):
        cfg = TABLE2["Medium"]
        got = max_micro_batch(
            lambda b: moe_memory(cfg, b, 1.0), capacity_bytes=1.0
        )
        assert got is None

    def test_megablocks_expansion_near_one(self):
        assert 1.0 <= megablocks_expansion(1) < 1.05
        assert megablocks_expansion(2) == pytest.approx(2.02)

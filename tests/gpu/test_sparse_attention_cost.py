import pytest

from repro.gpu.sparse_attention_cost import (
    attention_crossover_window,
    dense_attention_time,
    sparse_attention_time,
)


class TestDenseAttentionTime:
    def test_quadratic_in_sequence(self):
        t1 = dense_attention_time(2048, 16, 64, 8)
        t2 = dense_attention_time(4096, 16, 64, 8)
        assert 2.5 < t2 / t1 < 6.0  # ~4x for the quadratic parts

    def test_positive(self):
        assert dense_attention_time(1024, 8, 64, 1) > 0


class TestSparseAttentionTime:
    def test_linear_in_window(self):
        t2 = sparse_attention_time(8192, 2, 16, 64, 8)
        t8 = sparse_attention_time(8192, 8, 16, 64, 8)
        assert 2.0 < t8 / t2 < 5.0

    def test_rejects_indivisible_seq(self):
        with pytest.raises(ValueError):
            sparse_attention_time(1000, 2, 8, 64, 1)

    def test_full_window_close_to_dense(self):
        """window = all blocks ~ dense causal attention cost (within 2x:
        the sparse path keeps the causal half only, dense computes all)."""
        seq = 4096
        dense = dense_attention_time(seq, 16, 64, 8)
        sparse = sparse_attention_time(seq, seq // 128, 16, 64, 8)
        assert sparse < dense * 1.2  # causal band is ~half the dense work

    def test_narrow_window_much_cheaper_at_long_seq(self):
        """The §4 payoff: at long sequences a local window wins big."""
        seq = 16384
        dense = dense_attention_time(seq, 16, 64, 4)
        sparse = sparse_attention_time(seq, 4, 16, 64, 4)
        assert sparse < dense / 4


class TestCrossover:
    def test_crossover_exists_for_long_sequences(self):
        w = attention_crossover_window(8192, 16, 64, 8)
        assert w >= 1  # some window beats dense

    def test_crossover_window_grows_with_sequence(self):
        w_short = attention_crossover_window(2048, 16, 64, 8)
        w_long = attention_crossover_window(8192, 16, 64, 8)
        assert w_long >= w_short

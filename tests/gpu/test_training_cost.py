"""End-to-end step cost model: Figures 7/8 shape claims."""

import pytest

from repro.configs import TABLE1, TABLE2, TABLE3_MICRO_BATCH_SIZES as T3
from repro.configs.flops import transformer_train_flops
from repro.gpu.device import A100_SXM4_80GB as A100
from repro.gpu.training_cost import (
    TUTEL_AVG_DYNAMIC_CF,
    dense_step_time,
    moe_layer_time,
    moe_step_time,
    training_time_s,
)


class TestDenseStep:
    def test_step_time_positive_and_ordered_by_model_size(self):
        times = [
            dense_step_time(TABLE1[n], T3["Megatron-LM"][TABLE1[n].name]).total_s
            for n in ("XS", "Small", "Medium", "Large", "XL")
        ]
        assert all(t > 0 for t in times)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_sustained_throughput_in_reasonable_band(self):
        """Paper: 21-48% of the 2.5 PFLOP peak, increasing with size.

        The model lands in a somewhat higher band (no dropout, idealized
        overlap); the *monotone increase* is the shape claim.
        """
        fracs = []
        for n in ("XS", "Small", "Medium", "Large", "XL"):
            cfg = TABLE1[n]
            st = dense_step_time(cfg, T3["Megatron-LM"][cfg.name])
            frac = transformer_train_flops(cfg, 512) / st.total_s / (8 * 312e12)
            fracs.append(frac)
            assert 0.15 < frac < 0.75
        assert all(a < b for a, b in zip(fracs, fracs[1:]))

    def test_smaller_micro_batch_less_efficient(self):
        cfg = TABLE1["Small"]
        t32 = dense_step_time(cfg, 32).total_s
        t4 = dense_step_time(cfg, 4).total_s
        assert t4 > t32  # same total work, worse efficiency + overheads


class TestMoELayerCost:
    def test_breakdown_positive(self):
        cost = moe_layer_time(TABLE2["XS"], 64, A100, "megablocks")
        for part in (cost.router_s, cost.permute_s, cost.all_to_all_s, cost.expert_s):
            assert part > 0
        assert cost.total_s == pytest.approx(
            cost.router_s + cost.permute_s + cost.all_to_all_s + cost.expert_s
        )

    def test_unknown_implementation_raises(self):
        with pytest.raises(ValueError):
            moe_layer_time(TABLE2["XS"], 64, A100, "gshard")

    def test_tutel_cost_grows_with_capacity_factor(self):
        base = moe_layer_time(TABLE2["XS"], 64, A100, "tutel", capacity_factor=1.0)
        padded = moe_layer_time(TABLE2["XS"], 64, A100, "tutel", capacity_factor=2.0)
        assert padded.expert_s > 1.5 * base.expert_s

    def test_megablocks_matches_tutel_cf1_uniform(self):
        """With balanced routing and cf=1 both do the same math."""
        mb = moe_layer_time(TABLE2["XS"], 64, A100, "megablocks")
        tu = moe_layer_time(TABLE2["XS"], 64, A100, "tutel", capacity_factor=1.0)
        assert abs(mb.expert_s - tu.expert_s) / tu.expert_s < 0.1

    def test_imbalance_costs_actual_not_max(self):
        """Skewed tokens_per_expert: dMoE pays sum, not E * max."""
        uniform = moe_layer_time(
            TABLE2["XS"], 64, A100, "megablocks",
            tokens_per_expert=[8192] * 8,
        ).expert_s
        skewed = moe_layer_time(
            TABLE2["XS"], 64, A100, "megablocks",
            tokens_per_expert=[2048, 4096, 6144, 8192, 10240, 12288, 10240, 12288],
        ).expert_s
        assert abs(skewed - uniform) / uniform < 0.15


class TestFigure7Claims:
    def _speedups(self):
        out = {}
        for name, cfg in TABLE2.items():
            mb = moe_step_time(cfg, T3["MegaBlocks"][cfg.name], "megablocks")
            tu = moe_step_time(
                cfg,
                T3["Tutel"][cfg.name],
                "tutel",
                capacity_factor=TUTEL_AVG_DYNAMIC_CF,
            )
            out[name] = tu.total_s / mb.total_s
        return out

    def test_megablocks_beats_tutel_everywhere(self):
        assert all(s > 1.2 for s in self._speedups().values())

    def test_advantage_grows_with_model_size(self):
        """Fig 7: 1.38x -> 2.0x -> 4.35x; the growth is the shape claim."""
        s = self._speedups()
        assert s["XS"] < s["Small"] < s["Medium"]

    def test_xs_speedup_matches_paper_band(self):
        s = self._speedups()
        assert 1.2 <= s["XS"] <= 1.6  # paper: 1.38

    def test_dmoe_step_time_comparable_to_dense(self):
        """dMoE step ~ dense step (the quality gain is free in time)."""
        for name, cfg in TABLE2.items():
            mb = moe_step_time(cfg, T3["MegaBlocks"][cfg.name], "megablocks").total_s
            dn = dense_step_time(cfg.base, T3["Megatron-LM"][cfg.base.name]).total_s
            assert mb / dn < 1.35


class TestTrainingTime:
    def test_scales_with_tokens(self):
        st = dense_step_time(TABLE1["XS"], 64)
        t1 = training_time_s(st, 1_000_000_000, 512, 1024)
        t10 = training_time_s(st, 10_000_000_000, 512, 1024)
        assert 9 < t10 / t1 < 11

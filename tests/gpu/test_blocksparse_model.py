"""Block-sparse kernel cost model: Figure 9 and the §5.1.3/5.1.4 ablations."""

import numpy as np
import pytest

from repro.gpu.blocksparse import (
    TRANSPOSED_OPS,
    GroupedProblem,
    block_sparse_op_time,
    dsd_explicit_transpose_time,
    grouped_matmul_time,
    moe_layer_problems,
    sdd_overlaunch_time,
)
from repro.gpu.device import A100_SXM4_80GB as A100
from repro.gpu.matmul import batched_matmul_time
from repro.gpu.tiling import MEGABLOCKS_TILE

OPS = ["fwd1", "fwd2", "bwd2_data", "bwd2_weight", "bwd1_data", "bwd1_weight"]


class TestProblemShapes:
    def test_six_ops_have_expected_shapes(self):
        probs = {op: moe_layer_problems([256], 512, 2048, op)[0] for op in OPS}
        assert probs["fwd1"] == GroupedProblem(256, 2048, 512)
        assert probs["fwd2"] == GroupedProblem(256, 512, 2048)
        assert probs["bwd2_weight"] == GroupedProblem(2048, 512, 256)
        assert probs["bwd1_weight"] == GroupedProblem(512, 2048, 256)

    def test_zero_token_experts_skipped(self):
        probs = moe_layer_problems([0, 128, 0], 64, 256, "fwd1")
        assert len(probs) == 1

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            moe_layer_problems([128], 64, 256, "sideways")


class TestGroupedMatmul:
    def test_empty_problem_list(self):
        kt = grouped_matmul_time([], A100)
        assert kt.grid == 0
        assert kt.total_s == A100.kernel_launch_latency_s

    def test_imbalanced_groups_cost_what_they_compute(self):
        """Variable group sizes: total ~ sum of work, not max * count.

        This is the heart of the dMoE efficiency claim: an imbalanced
        assignment costs its actual FLOPs, unlike padding to the max.
        """
        balanced = [GroupedProblem(1024, 2048, 512)] * 4
        imbalanced = [
            GroupedProblem(256, 2048, 512),
            GroupedProblem(512, 2048, 512),
            GroupedProblem(1024, 2048, 512),
            GroupedProblem(2304, 2048, 512),
        ]  # same total tokens
        t_bal = grouped_matmul_time(balanced, A100).total_s
        t_imb = grouped_matmul_time(imbalanced, A100).total_s
        assert abs(t_imb - t_bal) / t_bal < 0.15
        # Padding-to-max would cost ~ 4*2304/4096 = 2.25x more.
        t_padded = grouped_matmul_time(
            [GroupedProblem(2304, 2048, 512)] * 4, A100
        ).total_s
        assert t_padded > 1.7 * t_bal

    def test_transposed_sparse_never_cheaper(self):
        probs = [GroupedProblem(2048, 512, 8192)] * 8
        plain = grouped_matmul_time(probs, A100).total_s
        transposed = grouped_matmul_time(probs, A100, transposed_sparse=True).total_s
        assert transposed >= plain

    def test_row_search_adds_cost(self):
        probs = [GroupedProblem(4096, 2048, 512)] * 8
        plain = grouped_matmul_time(probs, A100).total_s
        searched = grouped_matmul_time(probs, A100, search_rows=True).total_s
        assert searched > plain


class TestFigure9Claims:
    """Block-sparse kernels ~on-par with cuBLAS batched (98.6% +- 4%)."""

    def _ratios(self):
        ratios = []
        for h, mbs in ((512, 64), (768, 32), (1024, 8)):
            f, tpe, E = 4 * h, mbs * 128, 8
            for op in OPS:
                p = moe_layer_problems([tpe] * E, h, f, op)[0]
                t_bs = block_sparse_op_time([tpe] * E, h, f, op, A100).total_s
                t_cb = batched_matmul_time(
                    E, p.m, p.n, p.k, MEGABLOCKS_TILE, A100
                ).total_s
                ratios.append(t_cb / t_bs)
        return np.array(ratios)

    def test_18_problem_average_near_parity(self):
        r = self._ratios()
        assert len(r) == 18
        assert 0.95 <= r.mean() <= 1.02  # paper: 0.986

    def test_min_within_paper_band(self):
        r = self._ratios()
        assert r.min() >= 0.88  # paper min: 0.91

    def test_transposed_ops_are_the_slowest(self):
        """§6.3: the D S^T D weight-gradient ops show the extra overhead."""
        h, mbs = 512, 64
        f, tpe, E = 4 * h, mbs * 128, 8
        times = {
            op: block_sparse_op_time([tpe] * E, h, f, op, A100).total_s
            for op in OPS
        }
        # Weight-grad ops are no faster than their same-shape data ops.
        assert times["bwd2_weight"] >= times["fwd2"] * 0.95
        assert "bwd2_weight" in TRANSPOSED_OPS and "bwd1_weight" in TRANSPOSED_OPS


class TestAblations:
    def test_overlaunch_overhead_grows_with_expert_count(self):
        """§5.1.3: empty-threadblock cost significant at high expert counts."""
        h, f = 1024, 4096
        base_64 = block_sparse_op_time([512] * 64, h, f, "fwd1", A100).total_s
        over_64 = sdd_overlaunch_time([512] * 64, h, f, A100).total_s
        overhead_64 = over_64 - base_64
        base_4 = block_sparse_op_time([512] * 4, h, f, "fwd1", A100).total_s
        over_4 = sdd_overlaunch_time([512] * 4, h, f, A100).total_s
        overhead_4 = over_4 - base_4
        assert overhead_64 > overhead_4
        assert overhead_64 > 0.02 * base_64  # non-negligible

    def test_overlaunch_grid_is_dense(self):
        kt = sdd_overlaunch_time([512] * 8, 512, 2048, A100)
        base = block_sparse_op_time([512] * 8, 512, 2048, "fwd1", A100)
        assert kt.grid == base.grid * 8  # dense grid = nnz * num_experts

    def test_explicit_transpose_slower_than_secondary_index(self):
        """§5.1.4: copying values costs more than indirection."""
        h, f = 1024, 4096
        args = ([2048] * 8, h, f)
        indexed = block_sparse_op_time(*args, "bwd2_weight", A100).total_s
        explicit = dsd_explicit_transpose_time(*args, A100).total_s
        assert explicit > indexed

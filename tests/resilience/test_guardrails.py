"""Numeric guardrails: sentinels, spike detector, skip-and-rewind."""

import numpy as np
import pytest

from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.nn import TransformerLM
from repro.resilience import counters
from repro.resilience.faults import (
    NAN_GRAD,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
)
from repro.resilience.guardrails import (
    GRAD_OVERFLOW,
    LOSS_SPIKE,
    NONFINITE_GRAD,
    NONFINITE_LOSS,
    OK,
    GuardrailConfig,
    LossSpikeDetector,
    NumericGuard,
)
from repro.training import Adam, Trainer, TrainerConfig


@pytest.fixture(autouse=True)
def _fresh_counters():
    counters.reset()
    yield
    counters.reset()


class TestCounters:
    def test_increment_get_reset(self):
        assert counters.get("x") == 0
        assert counters.increment("x") == 1
        assert counters.increment("x", by=2) == 3
        assert counters.snapshot() == {"x": 3}
        counters.reset()
        assert counters.get("x") == 0

    def test_summary_lists_counts(self):
        counters.increment("router_fallback")
        assert "router_fallback" in counters.summary()


class TestLossSpikeDetector:
    def test_no_spike_before_min_history(self):
        det = LossSpikeDetector(window=8, factor=2.0, min_history=5)
        for loss in (1.0, 1.1, 0.9, 1.0):
            assert not det.is_spike(100.0)
            det.record(loss)

    def test_detects_spike_over_rolling_median(self):
        det = LossSpikeDetector(window=8, factor=4.0, min_history=5)
        for loss in (1.0, 1.1, 0.9, 1.0, 1.05):
            det.record(loss)
        assert det.median == pytest.approx(1.0)
        assert not det.is_spike(3.9)
        assert det.is_spike(4.1)

    def test_spikes_do_not_poison_window(self):
        """Only recorded (healthy) losses move the median."""
        det = LossSpikeDetector(window=8, factor=2.0, min_history=3)
        for loss in (1.0, 1.0, 1.0):
            det.record(loss)
        assert det.is_spike(50.0)
        assert det.is_spike(50.0)  # still a spike — 50 was never recorded
        assert det.median == pytest.approx(1.0)

    def test_factor_zero_disables(self):
        det = LossSpikeDetector(window=4, factor=0.0, min_history=1)
        det.record(1.0)
        det.record(1.0)
        assert not det.is_spike(1e9)


class TestNumericGuard:
    def test_loss_verdicts(self):
        guard = NumericGuard(GuardrailConfig(spike_min_history=2, spike_factor=4.0))
        assert guard.check_loss(float("nan")) == NONFINITE_LOSS
        assert guard.check_loss(float("inf")) == NONFINITE_LOSS
        assert guard.check_loss(1.0) == OK
        guard.record_good(1.0)
        guard.record_good(1.0)
        assert guard.check_loss(100.0) == LOSS_SPIKE

    def test_rewind_due_after_k_consecutive_bad(self):
        guard = NumericGuard(GuardrailConfig(max_consecutive_bad=3))
        assert not guard.record_bad(NONFINITE_LOSS)
        assert not guard.record_bad(NONFINITE_GRAD)
        assert guard.record_bad(GRAD_OVERFLOW)
        guard.record_rewind()
        assert guard.bad_streak == 0
        assert guard.rewinds == 1
        assert counters.get("guardrail_rewinds") == 1

    def test_good_step_resets_streak(self):
        guard = NumericGuard(GuardrailConfig(max_consecutive_bad=2))
        guard.record_bad(NONFINITE_LOSS)
        guard.record_good(1.0)
        assert guard.bad_streak == 0
        assert guard.bad_steps == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GuardrailConfig(spike_window=1)
        with pytest.raises(ValueError):
            GuardrailConfig(max_consecutive_bad=0)
        with pytest.raises(ValueError):
            NumericGuard().record_bad("ok")


def _tiny_trainer(injector=None, guardrails=None, steps=8, use_scaler=False):
    pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=3, branching=4), seed=1)
    ds = LMDataset(pile.token_stream(8_000, 32), seq_len=16)
    train, val = ds.split(0.1)
    model = TransformerLM(64, 16, 2, 2, 16, rng=0)
    cfg = TrainerConfig(
        global_batch=4,
        micro_batch=4,
        max_steps=steps,
        eval_every=0,
        log_every=1,
        guardrails=guardrails,
        use_grad_scaler=use_scaler,
    )
    return Trainer(
        model,
        train,
        val,
        cfg,
        optimizer=Adam(model.parameters(), lr=1e-3),
        rng=5,
        fault_injector=injector,
    )


class TestTrainerGuardrails:
    def test_injected_nan_grad_skips_step(self):
        injector = FaultInjector(FaultSchedule([FaultEvent(NAN_GRAD, step=2)]))
        tr = _tiny_trainer(injector, GuardrailConfig(), steps=6)
        hist = tr.train()
        assert tr.skipped_steps == 1
        assert tr.guard.verdict_counts[NONFINITE_GRAD] == 1
        assert counters.get("guardrail_nonfinite_grad") == 1
        # Parameters stayed finite and training continued.
        for p in tr.model.parameters():
            assert np.isfinite(p.data).all()
        assert np.isfinite(hist.records[-1].loss)

    def test_injected_nan_with_scaler_counts_overflow(self):
        injector = FaultInjector(FaultSchedule([FaultEvent(NAN_GRAD, step=1)]))
        tr = _tiny_trainer(
            injector, GuardrailConfig(), steps=4, use_scaler=True
        )
        tr.train()
        assert tr.guard.verdict_counts[GRAD_OVERFLOW] == 1
        assert tr.grad_scaler.num_overflows == 1

    def test_k_consecutive_bad_steps_trigger_rewind(self):
        events = [FaultEvent(NAN_GRAD, step=s) for s in (2, 3)]
        injector = FaultInjector(FaultSchedule(events))
        guard_cfg = GuardrailConfig(max_consecutive_bad=2)
        tr = _tiny_trainer(injector, guard_cfg, steps=6)
        tr.train()
        assert tr.guard.rewinds == 1
        assert counters.get("guardrail_rewinds") == 1
        for p in tr.model.parameters():
            assert np.isfinite(p.data).all()

    def test_rewind_restores_last_known_good_parameters(self):
        """After K bad steps, parameters equal the pre-fault snapshot."""
        injector = FaultInjector(
            FaultSchedule([FaultEvent(NAN_GRAD, step=s) for s in (3, 4, 5)])
        )
        tr = _tiny_trainer(
            injector, GuardrailConfig(max_consecutive_bad=3), steps=6
        )
        # Run the three good steps, snapshot reference state.
        for step in range(3):
            tr.train_step(step)
        reference = [p.data.copy() for p in tr.model.parameters()]
        ref_t = tr.optimizer.t
        for step in range(3, 6):
            tr.train_step(step)
        assert tr.guard.rewinds == 1
        for p, ref in zip(tr.model.parameters(), reference):
            np.testing.assert_array_equal(p.data, ref)
        assert tr.optimizer.t == ref_t

    def test_no_guardrails_preserves_legacy_scaler_behaviour(self):
        injector = FaultInjector(FaultSchedule([FaultEvent(NAN_GRAD, step=1)]))
        tr = _tiny_trainer(injector, None, steps=3, use_scaler=True)
        tr.train()
        assert tr.guard is None
        assert tr.skipped_steps == 1
        assert tr.grad_scaler.num_overflows == 1

"""Fault-injection harness: schedules, retry policy, collective hooks."""

import numpy as np
import pytest

from repro.distributed.collectives import (
    all_reduce,
    all_to_all,
    get_fault_hook,
)
from repro.resilience import counters
from repro.resilience.faults import (
    CORRUPT_PAYLOAD,
    DELAY,
    NAN_GRAD,
    RANK_FAILURE,
    RETRIES_EXHAUSTED,
    TIMEOUT_EXHAUSTED,
    CollectiveFault,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    RetryExhaustedError,
    RetryPolicy,
    inject_faults,
)


@pytest.fixture(autouse=True)
def _fresh_counters():
    counters.reset()
    yield
    counters.reset()


class TestFaultSchedule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor_strike")

    def test_match_consume_exhausts(self):
        sched = FaultSchedule([FaultEvent(RANK_FAILURE, step=3, count=2)])
        ev = sched.match({RANK_FAILURE}, step=3)
        assert ev is not None
        sched.consume(ev)
        sched.consume(ev)
        assert sched.match({RANK_FAILURE}, step=3) is None
        assert sched.pending == 0

    def test_step_and_op_filters(self):
        sched = FaultSchedule(
            [FaultEvent(RANK_FAILURE, step=5, op="all_reduce")]
        )
        assert sched.match({RANK_FAILURE}, step=4, op="all_reduce") is None
        assert sched.match({RANK_FAILURE}, step=5, op="all_to_all") is None
        assert sched.match({RANK_FAILURE}, step=5, op="all_reduce") is not None

    def test_wildcard_step_matches_any(self):
        sched = FaultSchedule([FaultEvent(NAN_GRAD)])
        assert sched.match({NAN_GRAD}, step=17) is not None

    def test_random_schedule_is_deterministic(self):
        a = FaultSchedule.random(7, 50, nan_grad_rate=0.2, rank_failure_rate=0.1)
        b = FaultSchedule.random(7, 50, nan_grad_rate=0.2, rank_failure_rate=0.1)
        assert [(e.kind, e.step, e.op) for e in a.events] == [
            (e.kind, e.step, e.op) for e in b.events
        ]
        c = FaultSchedule.random(8, 50, nan_grad_rate=0.2, rank_failure_rate=0.1)
        assert [(e.kind, e.step) for e in a.events] != [
            (e.kind, e.step) for e in c.events
        ]


class TestRetryPolicy:
    def test_recovers_after_transient_failures(self):
        policy = RetryPolicy(max_retries=3)
        failures = [0]

        def flaky(attempt):
            if failures[0] < 2:
                failures[0] += 1
                raise CollectiveFault("op", None, attempt)
            return "ok"

        assert policy.run(flaky) == "ok"
        assert policy.retries == 2
        assert policy.simulated_wait_s > 0

    def test_gives_up_after_max_retries(self):
        policy = RetryPolicy(max_retries=2)

        def dead(attempt):
            raise CollectiveFault("op", None, attempt)

        with pytest.raises(CollectiveFault):
            policy.run(dead)
        assert policy.gave_up == 1
        assert counters.get("collective_gave_up") == 1

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_retries=3, base_delay_s=1.0, backoff=2.0)
        failures = [0]

        def flaky(attempt):
            if failures[0] < 3:
                failures[0] += 1
                raise CollectiveFault("op", None, attempt)
            return None

        policy.run(flaky)
        assert policy.simulated_wait_s == pytest.approx(1.0 + 2.0 + 4.0)

    def test_timeout_bounds_total_wait(self):
        policy = RetryPolicy(max_retries=10, base_delay_s=1.0, timeout_s=2.5)

        def dead(attempt):
            raise CollectiveFault("op", None, attempt)

        with pytest.raises(CollectiveFault):
            policy.run(dead)
        assert policy.simulated_wait_s <= 2.5

    def test_final_retry_on_exact_budget_is_allowed(self):
        """Backoff waits 0.05 + 0.1 + 0.2 land exactly on a 0.35s budget
        — float accumulation (0.15000000000000002 + 0.2) must not
        spuriously reject the final retry."""
        policy = RetryPolicy(
            max_retries=10, base_delay_s=0.05, backoff=2.0, timeout_s=0.35
        )
        failures = [0]

        def flaky(attempt):
            if failures[0] < 3:
                failures[0] += 1
                raise CollectiveFault("op", None, attempt)
            return "ok"

        assert policy.run(flaky) == "ok"
        assert policy.retries == 3
        assert policy.gave_up == 0
        assert policy.simulated_wait_s == pytest.approx(0.35)

    def test_retries_exhausted_reason(self):
        policy = RetryPolicy(max_retries=2, timeout_s=1e9)

        def dead(attempt):
            raise CollectiveFault("op", 7, attempt)

        with pytest.raises(RetryExhaustedError) as exc_info:
            policy.run(dead)
        err = exc_info.value
        assert err.reason == RETRIES_EXHAUSTED
        assert "retry budget exhausted" in str(err)
        assert isinstance(err.__cause__, CollectiveFault)
        assert err.op == "op" and err.step == 7

    def test_timeout_exhausted_reason_not_mistyped_as_retries(self):
        """Running out of time budget with retries to spare must report
        timeout exhaustion, not retries exhaustion."""
        policy = RetryPolicy(max_retries=50, base_delay_s=1.0, timeout_s=2.5)

        def dead(attempt):
            raise CollectiveFault("op", None, attempt)

        with pytest.raises(RetryExhaustedError) as exc_info:
            policy.run(dead)
        err = exc_info.value
        assert err.reason == TIMEOUT_EXHAUSTED
        assert "timeout budget exhausted" in str(err)
        assert err.waited_s == pytest.approx(1.0)  # one 1s wait happened

    def test_exhaustion_error_is_a_collective_fault(self):
        """Existing handlers catch CollectiveFault; the typed error must
        keep flowing through them."""
        policy = RetryPolicy(max_retries=0)

        def dead(attempt):
            raise CollectiveFault("op", None, attempt)

        with pytest.raises(CollectiveFault):
            policy.run(dead)


class TestCollectiveInjection:
    def test_rank_failure_raises_without_policy(self):
        injector = FaultInjector(
            FaultSchedule([FaultEvent(RANK_FAILURE, op="all_reduce")])
        )
        shards = [np.ones(4), np.ones(4)]
        with inject_faults(injector):
            with pytest.raises(CollectiveFault):
                all_reduce(shards)
        # Hook uninstalled on exit; collective works again.
        assert get_fault_hook() is None
        out = all_reduce(shards)
        np.testing.assert_array_equal(out[0], 2 * np.ones(4))

    def test_transient_failure_recovered_by_policy(self):
        policy = RetryPolicy(max_retries=3)
        injector = FaultInjector(
            FaultSchedule([FaultEvent(RANK_FAILURE, op="all_reduce", count=2)]),
            policy=policy,
        )
        shards = [np.full(4, 1.5), np.full(4, 2.5)]
        with inject_faults(injector):
            out = all_reduce(shards)
        np.testing.assert_array_equal(out[0], np.full(4, 4.0))
        assert policy.retries == 2
        assert counters.get("collective_retries") == 2

    def test_corrupt_payload_plants_nan_in_copy(self):
        injector = FaultInjector(
            FaultSchedule([FaultEvent(CORRUPT_PAYLOAD, op="all_to_all")])
        )
        buffers = [
            [np.ones((2, 3)), np.ones((2, 3))],
            [np.ones((2, 3)), np.ones((2, 3))],
        ]
        with inject_faults(injector):
            received = all_to_all(buffers)
        flat = np.concatenate([a.reshape(-1) for row in received for a in row])
        assert np.isnan(flat).sum() == 1
        # Caller buffers were never mutated.
        for row in buffers:
            for arr in row:
                assert np.isfinite(arr).all()

    def test_delay_accrues_simulated_latency(self):
        injector = FaultInjector(
            FaultSchedule([FaultEvent(DELAY, op="all_reduce", delay_s=0.25)])
        )
        with inject_faults(injector):
            out = all_reduce([np.ones(2), np.ones(2)])
        np.testing.assert_array_equal(out[0], 2 * np.ones(2))
        assert injector.simulated_delay_s == pytest.approx(0.25)


class TestGradientInjection:
    def test_nan_grad_fires_once_at_step(self):
        from repro.nn import Linear

        layer = Linear(3, 3, rng=0)
        for p in layer.parameters():
            p.grad = np.zeros_like(p.data)
        injector = FaultInjector(FaultSchedule([FaultEvent(NAN_GRAD, step=4)]))
        assert not injector.corrupt_gradients(3, layer.parameters())
        assert injector.corrupt_gradients(4, list(layer.parameters()))
        grads = np.concatenate(
            [p.grad.reshape(-1) for p in layer.parameters()]
        )
        assert np.isnan(grads).sum() == 1
        # Exhausted: does not fire again.
        assert not injector.corrupt_gradients(4, list(layer.parameters()))


class TestExpertParallelRecovery:
    def _setup(self):
        from repro.core import dMoE
        from repro.distributed.expert_parallel import ExpertParallelDMoE
        from repro.distributed.mesh import DeviceMesh

        layer = dMoE(16, 32, num_experts=4, block_size=8, rng=0)
        mesh = DeviceMesh(expert_parallel=2)
        rng = np.random.default_rng(3)
        x = [
            rng.standard_normal((6, 16)).astype(np.float64) for _ in range(2)
        ]
        return layer, mesh, x

    def test_corrupted_exchange_is_retried_to_clean_result(self):
        from repro.distributed.expert_parallel import ExpertParallelDMoE

        layer, mesh, x = self._setup()
        clean = ExpertParallelDMoE(layer, mesh).forward(x)

        policy = RetryPolicy(max_retries=3)
        ep = ExpertParallelDMoE(layer, mesh, retry_policy=policy)
        injector = FaultInjector(
            FaultSchedule([FaultEvent(CORRUPT_PAYLOAD, op="all_to_all")])
        )
        with inject_faults(injector):
            recovered = ep.forward(x)
        for a, b in zip(clean.outputs_per_rank, recovered.outputs_per_rank):
            np.testing.assert_array_equal(a, b)
        assert counters.get("ep_corrupt_payload_detected") >= 1
        assert policy.retries >= 1

    def test_retry_does_not_double_count_comm_volume(self):
        """Comm volume is per *logical* exchange: a retried all-to-all
        must log exactly the same records as a clean run."""
        from repro.distributed.expert_parallel import ExpertParallelDMoE

        layer, mesh, x = self._setup()
        clean = ExpertParallelDMoE(
            layer, mesh, retry_policy=RetryPolicy(max_retries=3)
        ).forward(x)

        policy = RetryPolicy(max_retries=3)
        ep = ExpertParallelDMoE(layer, mesh, retry_policy=policy)
        injector = FaultInjector(
            FaultSchedule(
                [FaultEvent(CORRUPT_PAYLOAD, op="all_to_all", count=2)]
            )
        )
        with inject_faults(injector):
            faulty = ep.forward(x)
        assert policy.retries >= 1  # retries actually happened

        clean_log, faulty_log = clean.comm_log, faulty.comm_log
        assert faulty_log.counts() == clean_log.counts()
        assert faulty_log.total_bytes_per_rank(
            "all_to_all"
        ) == clean_log.total_bytes_per_rank("all_to_all")
        assert [r.bytes_by_rank for r in faulty_log.records] == [
            r.bytes_by_rank for r in clean_log.records
        ]

    def test_unvalidated_path_lets_corruption_through(self):
        """Without a retry policy the legacy fast path is unchanged —
        corruption propagates (that is what the guardrails are for)."""
        from repro.distributed.expert_parallel import ExpertParallelDMoE

        layer, mesh, x = self._setup()
        ep = ExpertParallelDMoE(layer, mesh)
        injector = FaultInjector(
            FaultSchedule([FaultEvent(CORRUPT_PAYLOAD, op="all_to_all")])
        )
        with inject_faults(injector):
            result = ep.forward(x)
        flat = np.concatenate(
            [o.reshape(-1) for o in result.outputs_per_rank]
        )
        assert not np.isfinite(flat).all()

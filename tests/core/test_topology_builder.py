import numpy as np
import pytest

from repro.core import expert_of_padded_row, make_topology
from repro.core.topology_builder import (
    TOPOLOGY_CACHE_SIZE,
    cached_block_diagonal_topology,
    clear_topology_cache,
    topology_cache_len,
)
from repro.moe import make_padded_plan
from repro.sparse import stats


class TestMakeTopology:
    def test_figure_3c_structure(self):
        """Variable block rows per expert, fixed ffn columns (Fig 3C)."""
        idx = np.array([[0]] * 5 + [[2]] * 1)  # expert1 empty
        plan = make_padded_plan(idx, 3, block_size=4)
        topo = make_topology(plan, ffn_hidden_size=8)
        topo.validate()
        # expert0: ceil(5/4)=2 block rows; expert2: 1; each 2 block cols.
        assert topo.nnz_blocks == (2 + 0 + 1) * 2
        assert topo.shape == (plan.total_padded, 3 * 8)

    def test_block_diagonal_disjoint_columns(self):
        idx = np.array([[0], [1]])
        plan = make_padded_plan(idx, 2, block_size=2)
        topo = make_topology(plan, ffn_hidden_size=4)
        mask = topo.to_block_mask()
        assert mask[:1, :2].all() and mask[1:, 2:].all()
        assert not mask[:1, 2:].any() and not mask[1:, :2].any()

    def test_rejects_ffn_not_multiple_of_block(self):
        plan = make_padded_plan(np.array([[0]]), 1, block_size=4)
        with pytest.raises(ValueError):
            make_topology(plan, ffn_hidden_size=6)


class TestTopologyCache:
    def setup_method(self):
        clear_topology_cache()
        stats.reset()

    def test_repeated_layout_returns_same_object(self):
        idx = np.array([[0]] * 5 + [[2]] * 1)
        plan_a = make_padded_plan(idx, 3, block_size=4)
        plan_b = make_padded_plan(idx, 3, block_size=4)
        topo_a = make_topology(plan_a, ffn_hidden_size=8)
        topo_b = make_topology(plan_b, ffn_hidden_size=8)
        assert topo_a is topo_b
        snap = stats.snapshot()["cache"]
        assert snap == {"hits": 1, "misses": 1, "evictions": 0}
        assert stats.cache_hit_rate() == 0.5

    def test_different_layouts_are_distinct(self):
        a = cached_block_diagonal_topology(np.array([1, 2]), 2, 4)
        b = cached_block_diagonal_topology(np.array([2, 1]), 2, 4)
        assert a is not b
        assert topology_cache_len() == 2

    def test_scalar_and_array_columns_share_entries(self):
        a = cached_block_diagonal_topology(np.array([1, 2]), 3, 4)
        b = cached_block_diagonal_topology(np.array([1, 2]), np.array([3, 3]), 4)
        # Uniform widths hash differently as scalar vs per-group key, but
        # both produce valid equal topologies.
        assert a == b

    def test_lru_eviction(self):
        for i in range(TOPOLOGY_CACHE_SIZE + 3):
            cached_block_diagonal_topology(np.array([1 + i]), 1, 2)
        assert topology_cache_len() == TOPOLOGY_CACHE_SIZE
        assert stats.snapshot()["cache"]["evictions"] == 3

    def test_cached_topology_is_valid_and_plan_warmed(self):
        topo = cached_block_diagonal_topology(np.array([2, 0, 3]), 2, 4)
        topo.validate()
        from repro.sparse import dispatch

        assert "_dispatch_plan" in topo.__dict__
        assert dispatch.analyze(topo).num_groups == 2


class TestExpertOfPaddedRow:
    def test_repeats_by_padded_counts(self):
        idx = np.array([[0]] * 3 + [[1]] * 1)
        plan = make_padded_plan(idx, 2, block_size=4)
        rows = expert_of_padded_row(plan)
        assert len(rows) == plan.total_padded
        np.testing.assert_array_equal(rows, [0, 0, 0, 0, 1, 1, 1, 1])

import numpy as np
import pytest

from repro.core import expert_of_padded_row, make_topology
from repro.moe import make_padded_plan


class TestMakeTopology:
    def test_figure_3c_structure(self):
        """Variable block rows per expert, fixed ffn columns (Fig 3C)."""
        idx = np.array([[0]] * 5 + [[2]] * 1)  # expert1 empty
        plan = make_padded_plan(idx, 3, block_size=4)
        topo = make_topology(plan, ffn_hidden_size=8)
        topo.validate()
        # expert0: ceil(5/4)=2 block rows; expert2: 1; each 2 block cols.
        assert topo.nnz_blocks == (2 + 0 + 1) * 2
        assert topo.shape == (plan.total_padded, 3 * 8)

    def test_block_diagonal_disjoint_columns(self):
        idx = np.array([[0], [1]])
        plan = make_padded_plan(idx, 2, block_size=2)
        topo = make_topology(plan, ffn_hidden_size=4)
        mask = topo.to_block_mask()
        assert mask[:1, :2].all() and mask[1:, 2:].all()
        assert not mask[:1, 2:].any() and not mask[1:, :2].any()

    def test_rejects_ffn_not_multiple_of_block(self):
        plan = make_padded_plan(np.array([[0]]), 1, block_size=4)
        with pytest.raises(ValueError):
            make_topology(plan, ffn_hidden_size=6)


class TestExpertOfPaddedRow:
    def test_repeats_by_padded_counts(self):
        idx = np.array([[0]] * 3 + [[1]] * 1)
        plan = make_padded_plan(idx, 2, block_size=4)
        rows = expert_of_padded_row(plan)
        assert len(rows) == plan.total_padded
        np.testing.assert_array_equal(rows, [0, 0, 0, 0, 1, 1, 1, 1])

"""Variable-sized experts (paper §4.1 future work)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import VariableSizedDMoE, dMoE


class TestConstruction:
    def test_rejects_non_block_multiple_sizes(self):
        with pytest.raises(ValueError):
            VariableSizedDMoE(8, [8, 10], block_size=4)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            VariableSizedDMoE(8, [8, 0], block_size=4)

    def test_column_layout(self):
        v = VariableSizedDMoE(8, [8, 16, 24], block_size=8, rng=0)
        np.testing.assert_array_equal(v.experts.column_starts, [0, 8, 24, 48])
        assert v.experts.expert_slice(1) == slice(8, 24)


class TestForwardBackward:
    def test_output_shape_and_gradients(self, rng):
        v = VariableSizedDMoE(8, [8, 16, 24], block_size=8, rng=0)
        x = Tensor(rng.standard_normal((20, 8)).astype(np.float32), requires_grad=True)
        out, aux = v(x)
        assert out.shape == (20, 8)
        ((out * out).sum() + aux).backward()
        assert all(p.grad is not None for p in v.parameters())
        assert x.grad is not None

    def test_topology_columns_vary_per_expert(self, rng):
        v = VariableSizedDMoE(8, [8, 16], block_size=8, rng=0)
        v(Tensor(rng.standard_normal((20, 8)).astype(np.float32)))
        topo = v.last_topology
        topo.validate()
        assert topo.shape[1] == 8 + 16
        # Expert 1's groups are twice as wide as expert 0's.
        mask = topo.to_block_mask()
        widths = mask.sum(axis=1)
        assert set(widths[widths > 0].tolist()) <= {1, 2}

    def test_equal_sizes_match_uniform_dmoe(self, rng):
        """With all experts the same width, the layer must reproduce the
        uniform dMoE exactly given identical weights."""
        uniform = dMoE(8, 16, 3, block_size=8, rng=3, load_balance_coef=0.01)
        variable = VariableSizedDMoE(
            8, [16, 16, 16], block_size=8, rng=9, load_balance_coef=0.01
        )
        # Map uniform weights into the concatenated layout.
        variable.router.proj.weight.data[...] = uniform.router.proj.weight.data
        variable.experts.w1.data[...] = uniform.experts.w1_flat().data
        variable.experts.b1.data[...] = uniform.experts.b1_flat().data
        variable.experts.w2.data[...] = uniform.experts.w2_flat().data
        variable.experts.b2.data[...] = uniform.experts.b2.data

        x = rng.standard_normal((22, 8))
        out_u, aux_u = uniform(Tensor(x.copy(), dtype=np.float64))
        out_v, aux_v = variable(Tensor(x.copy(), dtype=np.float64))
        np.testing.assert_allclose(out_v.data, out_u.data, atol=1e-10)
        np.testing.assert_allclose(float(aux_v.data), float(aux_u.data), atol=1e-10)

    def test_bigger_expert_does_more_work(self, rng):
        """Routing everything to the wide expert uses more blocks than
        routing to the narrow one."""
        v = VariableSizedDMoE(8, [8, 32], block_size=8, rng=0, load_balance_coef=0.0)
        v.router.proj.weight.data[...] = 0.0
        v.router.proj.weight.data[:, 0] = 0.0  # ties -> expert 0 (narrow)
        x = Tensor(rng.standard_normal((16, 8)).astype(np.float32))
        v(x)
        narrow_blocks = v.last_topology.nnz_blocks
        v.router.proj.weight.data[:, 1] = 100.0  # push everything to expert 1
        # Recompute routing on definite-positive features so expert 1 wins.
        v(Tensor(np.abs(rng.standard_normal((16, 8))).astype(np.float32)))
        wide_blocks = v.last_topology.nnz_blocks
        assert wide_blocks > narrow_blocks

    def test_trains(self, rng):
        from repro.training import Adam

        v = VariableSizedDMoE(8, [8, 16, 24], block_size=8, rng=0)
        opt = Adam(v.parameters(), lr=1e-2)
        x = Tensor(rng.standard_normal((24, 8)).astype(np.float32))
        tgt = Tensor(rng.standard_normal((24, 8)).astype(np.float32))
        losses = []
        for _ in range(30):
            opt.zero_grad()
            out, aux = v(x)
            diff = out - tgt
            loss = (diff * diff).mean() + aux
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]

"""dMoE correctness: dropless invariants and cross-formulation equivalence.

The strongest checks in the suite: the block-sparse dMoE must agree with
the dense dynamic-capacity (Tutel-style) layer to floating-point noise on
identical weights — the paper's claim is that the formulations compute
the *same function*, only with different efficiency.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.core import dMoE
from repro.moe import DynamicCapacityMoELayer, MoELayer


def _pair(hidden=8, ffn=16, experts=4, top_k=1, bs=4, seed=0):
    """A dMoE and a dense dropless layer sharing identical parameters."""
    dm = dMoE(
        hidden, ffn, experts, top_k=top_k, block_size=bs, rng=seed,
        load_balance_coef=0.01,
    )
    dyn = DynamicCapacityMoELayer(
        hidden_size=hidden, ffn_hidden_size=ffn, num_experts=experts,
        top_k=top_k, rng=seed + 100, load_balance_coef=0.01,
    )
    dyn.load_state_dict(dm.state_dict())
    return dm, dyn


class TestShapeAndValidation:
    def test_output_shapes(self, rng):
        dm = dMoE(8, 16, 4, block_size=4, rng=0)
        out, aux = dm(Tensor(rng.standard_normal((12, 8)).astype(np.float32)))
        assert out.shape == (12, 8)
        out, _ = dm(Tensor(rng.standard_normal((2, 6, 8)).astype(np.float32)))
        assert out.shape == (2, 6, 8)

    def test_rejects_ffn_not_block_multiple(self):
        with pytest.raises(ValueError):
            dMoE(8, 18, 4, block_size=4)

    def test_exposes_plan_and_topology(self, rng):
        dm = dMoE(8, 16, 4, block_size=4, rng=0)
        dm(Tensor(rng.standard_normal((12, 8)).astype(np.float32)))
        assert dm.last_plan is not None
        dm.last_topology.validate()


class TestDroplessInvariants:
    def test_no_token_is_ever_dropped(self, rng):
        """Every routed copy appears in the plan — the core guarantee."""
        dm = dMoE(8, 16, 4, top_k=2, block_size=4, rng=0)
        dm(Tensor(rng.standard_normal((25, 8)).astype(np.float32)))
        plan = dm.last_plan
        placed = plan.copy_indices[plan.copy_indices >= 0]
        assert len(placed) == 25 * 2

    def test_output_nonzero_for_every_token(self, rng):
        """Unlike cf=1 MoE, no token silently becomes zero."""
        dm = dMoE(8, 16, 4, block_size=4, rng=0, load_balance_coef=0.0)
        out, _ = dm(Tensor(rng.standard_normal((40, 8)).astype(np.float32)))
        norms = np.abs(out.data).max(axis=1)
        assert (norms > 1e-8).all()

    def test_extreme_imbalance_all_tokens_one_expert(self, rng):
        """Pathological routing (everything to expert 0) still works."""
        dm = dMoE(8, 16, 4, block_size=4, rng=0, load_balance_coef=0.0)
        # Zero router weights: all scores tie, and ties break to expert 0.
        dm.router.proj.weight.data[...] = 0.0
        x = Tensor(rng.standard_normal((20, 8)).astype(np.float32))
        out, _ = dm(x)
        counts = dm.last_plan.tokens_per_expert
        assert counts[0] == 20 and counts[1:].sum() == 0
        assert np.isfinite(out.data).all()

    def test_topology_rows_match_padded_tokens(self, rng):
        dm = dMoE(8, 16, 4, block_size=4, rng=0)
        dm(Tensor(rng.standard_normal((13, 8)).astype(np.float32)))
        assert dm.last_topology.shape[0] == dm.last_plan.total_padded


class TestEquivalenceWithDenseDropless:
    @pytest.mark.parametrize("top_k", [1, 2])
    def test_forward_matches_dynamic_capacity(self, rng, top_k):
        dm, dyn = _pair(top_k=top_k)
        x = rng.standard_normal((30, 8))
        out1, aux1 = dm(Tensor(x.copy(), dtype=np.float64))
        out2, aux2 = dyn(Tensor(x.copy(), dtype=np.float64))
        np.testing.assert_allclose(out1.data, out2.data, atol=1e-10)
        np.testing.assert_allclose(float(aux1.data), float(aux2.data), atol=1e-10)

    def test_forward_matches_high_capacity_moe(self, rng):
        dm, _ = _pair()
        moe = MoELayer(
            hidden_size=8, ffn_hidden_size=16, num_experts=4,
            capacity_factor=64.0, rng=5, load_balance_coef=0.01,
        )
        moe.load_state_dict(dm.state_dict())
        x = rng.standard_normal((30, 8))
        out1, _ = dm(Tensor(x.copy(), dtype=np.float64))
        out2, _ = moe(Tensor(x.copy(), dtype=np.float64))
        np.testing.assert_allclose(out1.data, out2.data, atol=1e-10)

    def test_gradients_match_dense_dropless(self, rng):
        """Backward through block-sparse kernels == dense backward."""
        dm, dyn = _pair()
        x = rng.standard_normal((24, 8))
        for layer in (dm, dyn):
            out, aux = layer(Tensor(x.copy(), dtype=np.float64))
            ((out * out).sum() + aux).backward()
        for (n1, p1), (n2, p2) in zip(
            sorted(dm.named_parameters()), sorted(dyn.named_parameters())
        ):
            assert n1 == n2
            np.testing.assert_allclose(
                p1.grad, p2.grad, atol=1e-8, err_msg=f"grad mismatch: {n1}"
            )

    @given(st.integers(0, 2**31 - 1), st.integers(1, 48))
    def test_property_equivalence_random_batches(self, seed, num_tokens):
        """Forward equivalence holds for any batch size / routing draw."""
        dm, dyn = _pair(seed=3)
        x = np.random.default_rng(seed).standard_normal((num_tokens, 8))
        out1, _ = dm(Tensor(x.copy(), dtype=np.float64))
        out2, _ = dyn(Tensor(x.copy(), dtype=np.float64))
        np.testing.assert_allclose(out1.data, out2.data, atol=1e-9)


class TestBlockSizeInvariance:
    def test_output_independent_of_block_size(self, rng):
        """The block size is an implementation detail: results identical."""
        x = rng.standard_normal((20, 8))
        outs = []
        for bs in (2, 4, 8):
            dm = dMoE(8, 16, 4, block_size=bs, rng=42, load_balance_coef=0.0)
            out, _ = dm(Tensor(x.copy(), dtype=np.float64))
            outs.append(out.data)
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-10)
        np.testing.assert_allclose(outs[0], outs[2], atol=1e-10)


class TestTraining:
    def test_loss_decreases_on_fixed_batch(self, rng):
        """A few Adam steps on one batch must reduce a regression loss."""
        from repro.training import Adam

        dm = dMoE(8, 16, 4, block_size=4, rng=0, load_balance_coef=0.01)
        opt = Adam(dm.parameters(), lr=1e-2)
        x = Tensor(rng.standard_normal((32, 8)).astype(np.float32))
        target = rng.standard_normal((32, 8)).astype(np.float32)
        losses = []
        for _ in range(40):
            opt.zero_grad()
            out, aux = dm(x)
            diff = out - Tensor(target)
            loss = (diff * diff).mean() + aux
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.85

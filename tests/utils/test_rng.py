import numpy as np
import pytest

from repro.utils.rng import get_rng, global_seed, seed_all, spawn_rng


class TestGetRng:
    def test_none_returns_global(self):
        seed_all(7)
        a = get_rng(None).integers(0, 1000, 5)
        seed_all(7)
        b = get_rng(None).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_int_seeds_fresh_generator(self):
        a = get_rng(3).integers(0, 1000, 5)
        b = get_rng(3).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert get_rng(g) is g

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            get_rng("seed")

    def test_global_seed_tracks(self):
        seed_all(99)
        assert global_seed() == 99


class TestSpawnRng:
    def test_children_are_independent_and_deterministic(self):
        kids1 = spawn_rng(5, n=3)
        kids2 = spawn_rng(5, n=3)
        for a, b in zip(kids1, kids2):
            assert np.array_equal(a.integers(0, 100, 4), b.integers(0, 100, 4))

    def test_children_differ_from_each_other(self):
        kids = spawn_rng(5, n=2)
        assert not np.array_equal(
            kids[0].integers(0, 10**9, 8), kids[1].integers(0, 10**9, 8)
        )

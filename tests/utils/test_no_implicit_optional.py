"""Repo-wide implicit-Optional lint.

PEP 484 outlawed the implicit-Optional convention (``x: int = None``),
and mypy/ruff both flag it — but neither tool is a hard dependency of
this repo, so the CI-enforceable check lives here as a plain test that
walks every source file with ``ast``.  The same rule is configured for
ruff in ``pyproject.toml`` (``RUF013``) for editors that run it.

A parameter annotated with a type that cannot be ``None`` must not
default to ``None``; spell it ``Optional[T]`` (or ``T | None``).
Module-level aliases whose definition includes ``None`` (e.g.
``RngLike = Union[None, int, Generator]``) are resolved and allowed.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Set

SRC = Path(__file__).resolve().parents[2] / "src"


def _collect_none_aliases(tree: ast.Module) -> Set[str]:
    """Names assigned at module level to a type expression including None."""
    aliases: Set[str] = set()
    for node in tree.body:
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if isinstance(target, ast.Name) and value is not None:
            text = ast.unparse(value)
            if "None" in text or "Optional" in text:
                aliases.add(target.id)
    return aliases


def _annotation_allows_none(ann: ast.expr, aliases: Set[str]) -> bool:
    text = ast.unparse(ann)
    if "Optional" in text or "None" in text:
        return True
    if text in ("Any", "object", '"Any"', "'Any'"):
        return True
    # A bare name that resolves to a None-including alias (local or
    # imported — aliases are collected across the whole tree).
    return text in aliases


def _check_function(
    node: ast.AST, aliases: Set[str], path: Path, failures: List[str]
) -> None:
    args = node.args
    positional = args.posonlyargs + args.args
    for arg, default in zip(
        positional[len(positional) - len(args.defaults) :], args.defaults
    ):
        _check_param(node, arg, default, aliases, path, failures)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            _check_param(node, arg, default, aliases, path, failures)


def _check_param(node, arg, default, aliases, path, failures) -> None:
    if not (isinstance(default, ast.Constant) and default.value is None):
        return
    if arg.annotation is None:
        return
    if not _annotation_allows_none(arg.annotation, aliases):
        failures.append(
            f"{path}:{node.lineno} {node.name}({arg.arg}: "
            f"{ast.unparse(arg.annotation)} = None) — annotate as "
            f"Optional[...]"
        )


def test_no_implicit_optional_in_src():
    assert SRC.is_dir(), SRC
    # Aliases are shared across modules (RngLike is imported widely);
    # collect them in a first pass over every file.
    trees: Dict[Path, ast.Module] = {}
    aliases: Set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        trees[path] = tree
        aliases |= _collect_none_aliases(tree)

    failures: List[str] = []
    for path, tree in trees.items():
        rel = path.relative_to(SRC.parent)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _check_function(node, aliases, rel, failures)
    assert not failures, (
        "implicit-Optional parameters found (annotate with Optional[...]"
        " or T | None):\n" + "\n".join(failures)
    )


def test_lint_catches_offender(tmp_path):
    """The checker itself must flag the pattern it guards against."""
    bad = ast.parse("def f(x: int = None): ...")
    failures: List[str] = []
    for node in ast.walk(bad):
        if isinstance(node, ast.FunctionDef):
            _check_function(node, set(), Path("bad.py"), failures)
    assert len(failures) == 1 and "x: int = None" in failures[0]


def test_lint_allows_resolved_alias():
    good = ast.parse(
        "RngLike = Union[None, int]\n"
        "def f(rng: RngLike = None): ...\n"
        "def g(x: Optional[int] = None): ...\n"
        "def h(y: 'int | None' = None): ...\n"
    )
    aliases = _collect_none_aliases(good)
    failures: List[str] = []
    for node in ast.walk(good):
        if isinstance(node, ast.FunctionDef):
            _check_function(node, aliases, Path("good.py"), failures)
    assert failures == []

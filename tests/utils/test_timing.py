from repro.utils.timing import Timer, format_duration


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.elapsed >= 0.0
        assert t.mean >= 0.0

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.count == 0
        assert t.elapsed == 0.0

    def test_mean_empty(self):
        assert Timer().mean == 0.0


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(2.5e-6) == "2.5us"

    def test_milliseconds(self):
        assert format_duration(3.2e-3) == "3.2ms"

    def test_seconds(self):
        assert format_duration(12.0) == "12.0s"

    def test_minutes(self):
        assert format_duration(600.0) == "10.0min"

    def test_hours(self):
        assert format_duration(7200.0) == "2.0h"

    def test_negative(self):
        assert format_duration(-0.5).startswith("-")

import pytest

from repro.utils.timing import Timer, format_duration


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.elapsed >= 0.0
        assert t.mean >= 0.0

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.count == 0
        assert t.elapsed == 0.0
        assert t.last == 0.0

    def test_mean_empty(self):
        assert Timer().mean == 0.0

    def test_last_lap_recorded(self):
        t = Timer()
        with t:
            pass
        assert t.last >= 0.0
        assert t.last == pytest.approx(t.elapsed)

    def test_running_property(self):
        t = Timer()
        assert not t.running
        with t:
            assert t.running
        assert not t.running


class TestTimerMisuse:
    def test_reentrant_enter_raises(self):
        t = Timer()
        t.__enter__()
        with pytest.raises(RuntimeError, match="not re-entrant"):
            t.__enter__()
        t.__exit__(None, None, None)

    def test_reentrant_error_survives_optimized_mode(self):
        # The old implementation used `assert`, which `python -O` strips;
        # a RuntimeError must be raised regardless of interpreter flags.
        t = Timer()
        t.__enter__()
        with pytest.raises(RuntimeError):
            with t:
                pass
        t.__exit__(None, None, None)

    def test_exit_without_enter_raises(self):
        with pytest.raises(RuntimeError, match="matching __enter__"):
            Timer().__exit__(None, None, None)

    def test_double_exit_raises(self):
        t = Timer()
        t.__enter__()
        t.__exit__(None, None, None)
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)

    def test_state_intact_after_rejected_reentry(self):
        t = Timer()
        with t:
            pass
        t.__enter__()
        with pytest.raises(RuntimeError):
            t.__enter__()
        t.__exit__(None, None, None)
        assert t.count == 2
        assert not t.running

    def test_reset_while_running_raises(self):
        t = Timer()
        t.__enter__()
        with pytest.raises(RuntimeError, match="while a lap is running"):
            t.reset()
        t.__exit__(None, None, None)


class TestTimerTime:
    def test_context_manager_returns_lap(self):
        t = Timer()
        with t.time():
            pass
        assert t.count == 1
        assert t.last >= 0.0

    def test_decorator_records_each_call(self):
        t = Timer()

        @t.time
        def work(x):
            return x * 2

        assert work(3) == 6
        assert work(4) == 8
        assert t.count == 2

    def test_decorator_preserves_metadata(self):
        t = Timer()

        @t.time
        def documented():
            """docstring"""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "docstring"

    def test_decorator_records_lap_on_exception(self):
        t = Timer()

        @t.time
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            boom()
        assert t.count == 1
        assert not t.running


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(2.5e-6) == "2.5us"

    def test_milliseconds(self):
        assert format_duration(3.2e-3) == "3.2ms"

    def test_seconds(self):
        assert format_duration(12.0) == "12.0s"

    def test_minutes(self):
        assert format_duration(600.0) == "10.0min"

    def test_hours(self):
        assert format_duration(7200.0) == "2.0h"

    def test_negative(self):
        assert format_duration(-0.5).startswith("-")

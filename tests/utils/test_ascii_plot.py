import numpy as np
import pytest

from repro.utils.ascii_plot import line_chart


class TestLineChart:
    def test_renders_markers_and_legend(self):
        out = line_chart({"loss": [3, 2, 1], "val": [3.1, 2.5, 2.0]})
        assert "o loss" in out and "x val" in out
        body = "\n".join(out.splitlines()[1:-2])  # between the borders
        assert "o" in body and "x" in body

    def test_title_included(self):
        out = line_chart({"a": [1, 2]}, title="Figure 7")
        assert out.splitlines()[0] == "Figure 7"

    def test_empty_series_dict(self):
        assert line_chart({}) == "(no data)"

    def test_constant_series_no_crash(self):
        out = line_chart({"flat": [2.0, 2.0, 2.0]})
        assert "flat" in out

    def test_explicit_x_length_check(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2, 3]}, x=[0, 1])

    def test_bounds_in_labels(self):
        out = line_chart({"a": [0.0, 10.0]})
        assert "10" in out and "0" in out

    def test_dimensions(self):
        out = line_chart({"a": np.linspace(0, 1, 30)}, width=40, height=8)
        rows = out.splitlines()
        # header + top + 8 + bottom + legend
        assert len(rows) == 11
        assert all(len(r) <= 60 for r in rows)

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.shapes import broadcast_shapes, ceil_div, prod, round_up


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_remainder(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_one(self):
        assert ceil_div(1, 128) == 1

    def test_negative_numerator_raises(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 4)

    def test_zero_divisor_raises(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_definition(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or q == 0


class TestRoundUp:
    def test_already_multiple(self):
        assert round_up(256, 128) == 256

    def test_rounds(self):
        assert round_up(129, 128) == 256

    def test_zero(self):
        assert round_up(0, 128) == 0

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_properties(self, a, m):
        r = round_up(a, m)
        assert r >= a
        assert r % m == 0
        assert r - a < m


class TestProd:
    def test_empty(self):
        assert prod([]) == 1

    def test_values(self):
        assert prod([2, 3, 4]) == 24


class TestBroadcastShapes:
    def test_same(self):
        assert broadcast_shapes((2, 3), (2, 3)) == (2, 3)

    def test_ones_expand(self):
        assert broadcast_shapes((2, 1), (1, 3)) == (2, 3)

    def test_rank_extension(self):
        assert broadcast_shapes((5, 2, 3), (3,)) == (5, 2, 3)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            broadcast_shapes((2, 3), (2, 4))

import logging

import pytest

from repro.utils import logging as repro_logging
from repro.utils.logging import _HANDLER_TAG, configure, get_logger, unconfigure


@pytest.fixture
def clean_repro_logger():
    """Detach everything from the 'repro' logger, restore it afterwards."""
    root = logging.getLogger("repro")
    saved_handlers = list(root.handlers)
    saved_level = root.level
    saved_configured = repro_logging._CONFIGURED
    for h in saved_handlers:
        root.removeHandler(h)
    root.setLevel(logging.NOTSET)
    repro_logging._CONFIGURED = False
    yield root
    for h in list(root.handlers):
        root.removeHandler(h)
    for h in saved_handlers:
        root.addHandler(h)
    root.setLevel(saved_level)
    repro_logging._CONFIGURED = saved_configured


class TestGetLogger:
    def test_namespace_prefixed(self):
        lg = get_logger("training")
        assert lg.name == "repro.training"

    def test_already_namespaced_kept(self):
        assert get_logger("repro.gpu").name == "repro.gpu"

    def test_root_logger(self):
        assert get_logger().name == "repro"

    def test_same_logger_instance(self):
        assert get_logger("x") is get_logger("x")

    def test_handler_attached_once(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1


class TestConfigurePolicy:
    def test_attaches_default_handler_once(self, clean_repro_logger):
        assert configure() is True
        assert configure() is False  # idempotent per process
        root = clean_repro_logger
        assert len(root.handlers) == 1
        assert getattr(root.handlers[0], _HANDLER_TAG, False)
        assert root.level == logging.INFO

    def test_respects_preexisting_handler(self, clean_repro_logger):
        root = clean_repro_logger
        app_handler = logging.NullHandler()
        root.addHandler(app_handler)
        assert configure() is False
        assert root.handlers == [app_handler]
        # Not latched: after the app tears down, force can still attach.
        root.removeHandler(app_handler)
        assert configure(force=True) is True

    def test_respects_preexisting_level(self, clean_repro_logger):
        root = clean_repro_logger
        root.setLevel(logging.DEBUG)
        configure()
        assert root.level == logging.DEBUG

    def test_env_opt_out(self, clean_repro_logger, monkeypatch):
        monkeypatch.setenv("REPRO_NO_LOG_CONFIG", "1")
        assert configure() is False
        assert clean_repro_logger.handlers == []

    def test_env_opt_out_zero_means_configure(self, clean_repro_logger,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_NO_LOG_CONFIG", "0")
        assert configure() is True

    def test_unconfigure_removes_only_our_handler(self, clean_repro_logger):
        root = clean_repro_logger
        configure()
        app_handler = logging.NullHandler()
        root.addHandler(app_handler)
        unconfigure()
        assert root.handlers == [app_handler]

    def test_reconfigure_after_unconfigure(self, clean_repro_logger):
        configure()
        unconfigure()
        assert configure() is True
        assert len(clean_repro_logger.handlers) == 1

    def test_get_logger_triggers_configure(self, clean_repro_logger):
        get_logger("anything")
        assert len(clean_repro_logger.handlers) == 1

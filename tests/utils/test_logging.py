import logging

from repro.utils.logging import get_logger


class TestGetLogger:
    def test_namespace_prefixed(self):
        lg = get_logger("training")
        assert lg.name == "repro.training"

    def test_already_namespaced_kept(self):
        assert get_logger("repro.gpu").name == "repro.gpu"

    def test_root_logger(self):
        assert get_logger().name == "repro"

    def test_same_logger_instance(self):
        assert get_logger("x") is get_logger("x")

    def test_handler_attached_once(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1

"""Block-sparse attention layer: equivalence with dense attention and
window semantics (the §4 general-purpose-primitive claim)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import CausalSelfAttention
from repro.nn.sparse_attention import BlockSparseCausalSelfAttention

BS = 4
HID, HEADS, SEQ = 16, 2, 16


def _pair(window_blocks=None):
    sparse = BlockSparseCausalSelfAttention(
        HID, HEADS, block_size=BS, window_blocks=window_blocks, rng=0
    )
    dense = CausalSelfAttention(HID, HEADS, rng=1)
    dense.load_state_dict(sparse.state_dict())
    return sparse, dense


class TestEquivalenceWithDense:
    def test_full_window_matches_dense_attention(self, rng):
        sparse, dense = _pair(window_blocks=None)
        x = rng.standard_normal((2, SEQ, HID))
        out_s = sparse(Tensor(x.copy(), dtype=np.float64)).data
        out_d = dense(Tensor(x.copy(), dtype=np.float64)).data
        np.testing.assert_allclose(out_s, out_d, atol=1e-8)

    def test_gradients_match_dense(self, rng):
        sparse, dense = _pair(window_blocks=None)
        x = rng.standard_normal((1, SEQ, HID))
        for layer in (sparse, dense):
            out = layer(Tensor(x.copy(), dtype=np.float64))
            (out * out).sum().backward()
        for (n1, p1), (n2, p2) in zip(
            sorted(sparse.named_parameters()), sorted(dense.named_parameters())
        ):
            np.testing.assert_allclose(p1.grad, p2.grad, atol=1e-6, err_msg=n1)


class TestWindowSemantics:
    def test_narrow_window_limits_context(self, rng):
        """With window_blocks=1 a query cannot see beyond its block, so
        perturbing a distant past token leaves later blocks unchanged."""
        layer = BlockSparseCausalSelfAttention(
            HID, HEADS, block_size=BS, window_blocks=1, rng=0
        )
        layer.eval()
        x = rng.standard_normal((1, SEQ, HID))
        base = layer(Tensor(x.copy(), dtype=np.float64)).data.copy()
        x2 = x.copy()
        x2[0, 0] += 5.0  # block 0
        pert = layer(Tensor(x2, dtype=np.float64)).data
        # Blocks 1..3 attend only within themselves: unchanged.
        np.testing.assert_allclose(pert[0, BS:], base[0, BS:], atol=1e-8)
        assert np.abs(pert[0, :BS] - base[0, :BS]).max() > 1e-4

    def test_causality_holds(self, rng):
        layer = BlockSparseCausalSelfAttention(
            HID, HEADS, block_size=BS, window_blocks=2, rng=0
        )
        layer.eval()
        x = rng.standard_normal((1, SEQ, HID))
        base = layer(Tensor(x.copy(), dtype=np.float64)).data.copy()
        x2 = x.copy()
        x2[0, 10] += 5.0
        pert = layer(Tensor(x2, dtype=np.float64)).data
        np.testing.assert_allclose(pert[0, :10], base[0, :10], atol=1e-8)

    def test_flops_linear_in_window(self):
        layer1 = BlockSparseCausalSelfAttention(HID, HEADS, block_size=BS, window_blocks=1)
        layer2 = BlockSparseCausalSelfAttention(HID, HEADS, block_size=BS, window_blocks=2)
        f1 = layer1.attention_flops(64)
        f2 = layer2.attention_flops(64)
        assert 1.5 < f2 / f1 <= 2.0

    def test_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            BlockSparseCausalSelfAttention(16, 3, block_size=BS)

    def test_topology_cached(self, rng):
        layer = BlockSparseCausalSelfAttention(
            HID, HEADS, block_size=BS, window_blocks=2, rng=0
        )
        x = Tensor(rng.standard_normal((1, SEQ, HID)).astype(np.float32))
        layer(x)
        t1 = layer._topology(SEQ)
        layer(x)
        assert layer._topology(SEQ) is t1

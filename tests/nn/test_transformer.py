import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import dMoE
from repro.nn import MLP, TransformerLM


class TestMLP:
    def test_shape(self, rng):
        mlp = MLP(8, 32, rng=0)
        assert mlp(Tensor(rng.standard_normal((3, 8)))).shape == (3, 8)

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            MLP(8, 32, activation="swish")


class TestTransformerLM:
    def _model(self, **kw):
        args = dict(
            vocab_size=40, hidden_size=16, num_layers=2, num_heads=2,
            max_seq_len=12, rng=0,
        )
        args.update(kw)
        return TransformerLM(**args)

    def test_logits_shape(self, rng):
        m = self._model()
        out = m(rng.integers(0, 40, (3, 10)))
        assert out.logits.shape == (3, 10, 40)
        assert out.aux_loss is None  # dense model

    def test_too_long_sequence_raises(self, rng):
        m = self._model()
        with pytest.raises(ValueError):
            m(rng.integers(0, 40, (1, 13)))

    def test_initial_loss_near_log_vocab(self, rng):
        m = self._model()
        ids = rng.integers(0, 40, (4, 12))
        tgt = rng.integers(0, 40, (4, 12))
        loss, lm, aux = m.loss(ids, tgt)
        assert abs(float(lm.data) - np.log(40)) < 0.5
        assert aux is None

    def test_all_parameters_receive_gradients(self, rng):
        m = self._model()
        loss, _, _ = m.loss(rng.integers(0, 40, (2, 12)), rng.integers(0, 40, (2, 12)))
        loss.backward()
        missing = [n for n, p in m.named_parameters() if p.grad is None]
        assert missing == []

    def test_tied_embeddings_share_storage(self, rng):
        m = self._model(tie_embeddings=True)
        names = [n for n, _ in m.named_parameters()]
        assert not any("lm_head" in n for n in names)

    def test_untied_head(self, rng):
        m = self._model(tie_embeddings=False)
        assert any("lm_head" in n for n, _ in m.named_parameters())
        assert m(rng.integers(0, 40, (1, 4))).logits.shape == (1, 4, 40)

    def test_moe_ffn_factory_accumulates_aux_loss(self, rng):
        m = self._model(
            ffn_factory=lambda i: dMoE(
                16, 32, num_experts=4, block_size=8, rng=i, load_balance_coef=0.01
            )
        )
        out = m(rng.integers(0, 40, (2, 12)))
        assert out.aux_loss is not None
        # Two layers contribute; aux loss is positive for a softmax router.
        assert float(out.aux_loss.data) > 0

    def test_moe_loss_includes_aux(self, rng):
        m = self._model(
            ffn_factory=lambda i: dMoE(
                16, 32, num_experts=4, block_size=8, rng=i, load_balance_coef=0.05
            )
        )
        total, lm, aux = m.loss(
            rng.integers(0, 40, (2, 12)), rng.integers(0, 40, (2, 12))
        )
        assert abs(float(total.data) - float(lm.data) - float(aux.data)) < 1e-5

    def test_deterministic_given_seed(self, rng):
        ids = rng.integers(0, 40, (2, 8))
        a = self._model()(ids).logits.data
        b = self._model()(ids).logits.data
        np.testing.assert_array_equal(a, b)

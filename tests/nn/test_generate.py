import numpy as np
import pytest

from repro.nn import TransformerLM


def _model():
    return TransformerLM(
        vocab_size=32, hidden_size=16, num_layers=1, num_heads=2,
        max_seq_len=8, rng=0,
    )


class TestGenerate:
    def test_output_shape(self):
        m = _model()
        out = m.generate(np.array([[1, 2, 3]]), max_new_tokens=4, rng=0)
        assert out.shape == (1, 7)
        np.testing.assert_array_equal(out[:, :3], [[1, 2, 3]])

    def test_1d_prompt_accepted(self):
        m = _model()
        out = m.generate(np.array([1, 2]), max_new_tokens=2, rng=0)
        assert out.shape == (1, 4)

    def test_greedy_deterministic(self):
        m = _model()
        a = m.generate(np.array([[5]]), 6, temperature=0.0)
        b = m.generate(np.array([[5]]), 6, temperature=0.0)
        np.testing.assert_array_equal(a, b)

    def test_sampling_deterministic_given_rng(self):
        m = _model()
        a = m.generate(np.array([[5]]), 6, temperature=1.0, rng=3)
        b = m.generate(np.array([[5]]), 6, temperature=1.0, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_tokens_in_vocab(self):
        m = _model()
        out = m.generate(np.array([[0]]), 10, temperature=1.5, rng=1)
        assert out.min() >= 0 and out.max() < 32

    def test_window_slides_past_max_seq_len(self):
        m = _model()
        out = m.generate(np.array([[1, 2, 3, 4, 5, 6, 7]]), 6, rng=0)
        assert out.shape == (1, 13)  # exceeded max_seq_len=8 without error

    def test_top_k_restricts_support(self):
        m = _model()
        # With top_k=1 sampling must equal greedy.
        greedy = m.generate(np.array([[3]]), 5, temperature=0.0)
        topk1 = m.generate(np.array([[3]]), 5, temperature=1.0, top_k=1, rng=0)
        np.testing.assert_array_equal(greedy, topk1)

    def test_training_mode_restored(self):
        m = _model()
        m.train()
        m.generate(np.array([[1]]), 2, rng=0)
        assert m.training

    def test_batched_prompts(self):
        m = _model()
        out = m.generate(np.array([[1, 2], [3, 4]]), 3, rng=0)
        assert out.shape == (2, 5)

import numpy as np
import pytest

from repro.nn import TransformerLM


def _model():
    return TransformerLM(
        vocab_size=32, hidden_size=16, num_layers=1, num_heads=2,
        max_seq_len=8, rng=0,
    )


class TestGenerate:
    def test_output_shape(self):
        m = _model()
        out = m.generate(np.array([[1, 2, 3]]), max_new_tokens=4, rng=0)
        assert out.shape == (1, 7)
        np.testing.assert_array_equal(out[:, :3], [[1, 2, 3]])

    def test_1d_prompt_accepted(self):
        m = _model()
        out = m.generate(np.array([1, 2]), max_new_tokens=2, rng=0)
        assert out.shape == (1, 4)

    def test_greedy_deterministic(self):
        m = _model()
        a = m.generate(np.array([[5]]), 6, temperature=0.0)
        b = m.generate(np.array([[5]]), 6, temperature=0.0)
        np.testing.assert_array_equal(a, b)

    def test_sampling_deterministic_given_rng(self):
        m = _model()
        a = m.generate(np.array([[5]]), 6, temperature=1.0, rng=3)
        b = m.generate(np.array([[5]]), 6, temperature=1.0, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_tokens_in_vocab(self):
        m = _model()
        out = m.generate(np.array([[0]]), 10, temperature=1.5, rng=1)
        assert out.min() >= 0 and out.max() < 32

    def test_window_slides_past_max_seq_len(self):
        m = _model()
        out = m.generate(np.array([[1, 2, 3, 4, 5, 6, 7]]), 6, rng=0)
        assert out.shape == (1, 13)  # exceeded max_seq_len=8 without error

    def test_top_k_restricts_support(self):
        m = _model()
        # With top_k=1 sampling must equal greedy.
        greedy = m.generate(np.array([[3]]), 5, temperature=0.0)
        topk1 = m.generate(np.array([[3]]), 5, temperature=1.0, top_k=1, rng=0)
        np.testing.assert_array_equal(greedy, topk1)

    def test_training_mode_restored(self):
        m = _model()
        m.train()
        m.generate(np.array([[1]]), 2, rng=0)
        assert m.training

    def test_batched_prompts(self):
        m = _model()
        out = m.generate(np.array([[1, 2], [3, 4]]), 3, rng=0)
        assert out.shape == (2, 5)


class TestEosEarlyStop:
    def _eos_for(self, m, prompt):
        """First greedy token: an eos id guaranteed to fire immediately."""
        return int(m.generate(np.asarray(prompt), 1, temperature=0.0)[0, -1])

    def test_stops_at_eos(self):
        m = _model()
        eos = self._eos_for(m, [[1, 2]])
        out = m.generate(
            np.array([[1, 2]]), 8, temperature=0.0, eos_token_id=eos
        )
        assert out.shape == (1, 3)  # truncated: prompt + the eos token
        assert out[0, -1] == eos

    def test_default_no_eos_keeps_full_length(self):
        m = _model()
        out = m.generate(np.array([[1, 2]]), 8, temperature=0.0)
        assert out.shape == (1, 10)

    def test_finished_rows_masked_with_eos(self):
        """Rows that hit eos early emit eos while the rest keep sampling."""
        m = _model()
        prompts = np.array([[1, 2], [9, 4]])
        solo0 = m.generate(prompts[:1], 6, temperature=0.0)
        solo1 = m.generate(prompts[1:], 6, temperature=0.0)
        eos = int(solo0[0, 2])  # row 0's first greedy token
        assert int(solo1[0, 2]) != eos  # ...which row 1 does not emit first
        out = m.generate(prompts, 6, temperature=0.0, eos_token_id=eos)
        assert (out[0, 2:] == eos).all()  # row 0 done at step 1, padded
        # Row 1 keeps its solo greedy continuation (until/unless it
        # happens to emit eos itself, which greedy solo1 shows it doesn't
        # within this window — asserted above for the first step).
        n = out.shape[1]
        ref = solo1[0, :n]
        cut = n if eos not in ref[2:] else 3 + int(np.argmax(ref[2:] == eos))
        np.testing.assert_array_equal(out[1, :cut], ref[:cut])

    def test_eos_never_sampled_runs_to_budget(self):
        m = _model()
        out = m.generate(
            np.array([[1, 2]]), 5, temperature=0.0, eos_token_id=-1
        )
        assert out.shape == (1, 7)  # -1 can never be sampled

    def test_eos_rng_consumption_unchanged(self):
        """eos masking does not perturb the other rows' RNG stream."""
        m = _model()
        prompts = np.array([[1, 2], [9, 4]])
        base = m.generate(prompts, 5, temperature=1.0, top_k=4, rng=7)
        eos = int(base[0, 2])
        with_eos = m.generate(
            prompts, 5, temperature=1.0, top_k=4, rng=7, eos_token_id=eos
        )
        # Row 1's tokens match the no-eos run until row 1 itself finishes.
        n = with_eos.shape[1]
        row1 = with_eos[1]
        ref1 = base[1, :n]
        cut = n if eos not in ref1[2:] else 2 + int(np.argmax(ref1[2:] == eos)) + 1
        np.testing.assert_array_equal(row1[:cut], ref1[:cut])

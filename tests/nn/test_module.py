import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter, Sequential


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=0)
        self.fc2 = Linear(8, 2, rng=1)

    def forward(self, x):
        return self.fc2(self.fc1(x))


class TestRegistration:
    def test_parameters_found_recursively(self):
        m = Toy()
        names = [n for n, _ in m.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names

    def test_num_parameters(self):
        m = Toy()
        assert m.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_modules_iteration(self):
        m = Toy()
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds.count("Linear") == 2

    def test_direct_parameter_attr(self):
        class P(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(3))

        assert len(list(P().parameters())) == 1


class TestModes:
    def test_train_eval_recursive(self):
        m = Toy()
        m.eval()
        assert not m.fc1.training
        m.train()
        assert m.fc2.training

    def test_zero_grad(self):
        m = Toy()
        for p in m.parameters():
            p.grad = np.ones_like(p.data)
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        b.fc1.weight.data += 1.0  # make them differ
        assert not np.array_equal(a.fc1.weight.data, b.fc1.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.fc1.weight.data, b.fc1.weight.data)

    def test_state_dict_copies(self):
        m = Toy()
        sd = m.state_dict()
        sd["fc1.weight"][...] = 0
        assert np.abs(m.fc1.weight.data).max() > 0

    def test_missing_key_raises(self):
        m = Toy()
        sd = m.state_dict()
        del sd["fc1.weight"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_shape_mismatch_raises(self):
        m = Toy()
        sd = m.state_dict()
        sd["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)


class TestContainers:
    def test_module_list_indexing(self):
        ml = ModuleList([Linear(2, 2, rng=i) for i in range(3)])
        assert len(ml) == 3
        assert isinstance(ml[1], Linear)
        assert len(list(ml)) == 3

    def test_module_list_registers_params(self):
        ml = ModuleList([Linear(2, 2, rng=0)])
        assert len(list(ml.parameters())) == 2

    def test_sequential(self, rng):
        from repro.autograd import Tensor

        seq = Sequential(Linear(4, 8, rng=0), Linear(8, 2, rng=1))
        out = seq(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)

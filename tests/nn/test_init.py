import numpy as np
import pytest

from repro.nn import init


class TestInitializers:
    def test_normal_std(self):
        w = init.normal((2000, 50), std=0.02, rng=0)
        assert abs(w.std() - 0.02) < 0.002
        assert w.dtype == np.float32

    def test_scaled_normal_shrinks_with_depth(self):
        a = init.scaled_normal((1000, 50), 0.02, num_layers=1, rng=0)
        b = init.scaled_normal((1000, 50), 0.02, num_layers=8, rng=0)
        assert b.std() < a.std()
        assert b.std() == pytest.approx(a.std() / np.sqrt(8), rel=0.05)

    def test_xavier_uniform_bounds(self):
        w = init.xavier_uniform((64, 64), rng=0)
        limit = np.sqrt(6.0 / 128)
        assert w.min() >= -limit and w.max() <= limit

    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 3)) == 0)
        assert np.all(init.ones(5) == 1)

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(
            init.normal((4, 4), rng=7), init.normal((4, 4), rng=7)
        )

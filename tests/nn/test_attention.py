import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import CausalSelfAttention


class TestCausalSelfAttention:
    def test_output_shape(self, rng):
        attn = CausalSelfAttention(16, 4, rng=0)
        x = Tensor(rng.standard_normal((2, 5, 16)).astype(np.float32))
        assert attn(x).shape == (2, 5, 16)

    def test_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(16, 3)

    def test_causality(self, rng):
        """Changing a future token must not change past outputs."""
        attn = CausalSelfAttention(8, 2, rng=0)
        attn.eval()
        x = rng.standard_normal((1, 6, 8)).astype(np.float32)
        base = attn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 4] += 10.0  # perturb position 4
        pert = attn(Tensor(x2)).data
        np.testing.assert_allclose(pert[0, :4], base[0, :4], atol=1e-5)
        assert np.abs(pert[0, 4:] - base[0, 4:]).max() > 1e-3

    def test_gradients_flow(self, rng):
        attn = CausalSelfAttention(8, 2, rng=0)
        x = Tensor(rng.standard_normal((1, 4, 8)).astype(np.float32), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.qkv.weight.grad is not None
        assert attn.proj.weight.grad is not None

    def test_single_token_sequence(self, rng):
        attn = CausalSelfAttention(8, 2, rng=0)
        out = attn(Tensor(rng.standard_normal((2, 1, 8)).astype(np.float32)))
        assert out.shape == (2, 1, 8)
        assert np.isfinite(out.data).all()

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import Dropout, Embedding, LayerNorm, Linear


class TestLinear:
    def test_forward_shape(self, rng):
        lin = Linear(4, 6, rng=0)
        assert lin(Tensor(rng.standard_normal((5, 4)))).shape == (5, 6)

    def test_no_bias(self):
        lin = Linear(4, 6, bias=False, rng=0)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_matches_manual(self, rng):
        lin = Linear(3, 2, rng=0)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        want = x @ lin.weight.data + lin.bias.data
        np.testing.assert_allclose(lin(Tensor(x)).data, want, rtol=1e-5)

    def test_gradients_flow_to_params(self, rng):
        lin = Linear(3, 2, rng=0)
        out = lin(Tensor(rng.standard_normal((4, 3))))
        out.sum().backward()
        assert lin.weight.grad is not None and lin.bias.grad is not None

    def test_3d_input(self, rng):
        lin = Linear(3, 2, rng=0)
        assert lin(Tensor(rng.standard_normal((2, 5, 3)))).shape == (2, 5, 2)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=0)
        out = emb(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 4)

    def test_grad_to_table(self):
        emb = Embedding(10, 4, rng=0)
        emb(np.array([1, 1, 2])).sum().backward()
        assert emb.weight.grad is not None
        # Row 1 used twice: gradient doubled relative to row 2.
        np.testing.assert_allclose(emb.weight.grad[1], 2 * emb.weight.grad[2])
        np.testing.assert_allclose(emb.weight.grad[5], 0.0)


class TestLayerNorm:
    def test_identity_at_init_stats(self, rng):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.standard_normal((4, 8)).astype(np.float32)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0, atol=1e-5)

    def test_param_count(self):
        assert LayerNorm(8).num_parameters() == 16


class TestDropout:
    def test_eval_mode_identity(self, rng):
        d = Dropout(0.9)
        d.eval()
        x = Tensor(rng.standard_normal((10,)))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_train_mode_zeroes_some(self, rng):
        d = Dropout(0.5, rng=0)
        out = d(Tensor(np.ones(1000)))
        assert (out.data == 0).sum() > 300

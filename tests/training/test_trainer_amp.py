"""Trainer-integrated mixed precision and router weight normalization."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.moe import Router
from repro.nn import TransformerLM
from repro.training import Adam, Trainer, TrainerConfig


def _setup(steps=6, **cfg_kw):
    pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=2), seed=1)
    ds = LMDataset(pile.token_stream(8_000, 32), seq_len=16)
    train, val = ds.split(0.1)
    model = TransformerLM(64, 16, 1, 2, 16, rng=0)
    cfg = TrainerConfig(
        global_batch=8, micro_batch=4, max_steps=steps, eval_every=0,
        log_every=2, **cfg_kw,
    )
    return Trainer(
        model, train, val, cfg,
        optimizer=Adam(model.parameters(), lr=1e-3),
        rng=99,  # pinned so parallel trainer instances draw the same batches
    )


class TestTrainerGradScaler:
    def test_scaler_created_only_when_enabled(self):
        assert _setup().grad_scaler is None
        tr = _setup(use_grad_scaler=True)
        assert tr.grad_scaler is not None

    def test_training_with_scaler_converges(self):
        tr = _setup(steps=15, use_grad_scaler=True)
        hist = tr.train()
        assert hist.records[-1].loss < hist.records[0].loss
        assert tr.skipped_steps == 0  # no overflows at these magnitudes

    def test_gradients_unscaled_before_step(self):
        """With and without the scaler, one step lands on (nearly) the
        same parameters — scaling must be fully transparent."""
        tr_plain = _setup(steps=1)
        tr_amp = _setup(steps=1, use_grad_scaler=True)
        tr_amp.model.load_state_dict(tr_plain.model.state_dict())
        tr_plain.train_step(0)
        tr_amp.train_step(0)
        for (n1, p1), (n2, p2) in zip(
            tr_plain.model.named_parameters(), tr_amp.model.named_parameters()
        ):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-5, err_msg=n1)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_overflow_skips_step_and_backs_off(self):
        tr = _setup(steps=1, use_grad_scaler=True)
        # Poison one parameter so the loss (and gradients) go non-finite.
        before_scale = tr.grad_scaler.scale
        for p in tr.optimizer.params:
            pass
        p.data[...] = np.inf
        params_before = tr.model.tok_emb.weight.data.copy()
        tr.train_step(0)
        assert tr.skipped_steps == 1
        assert tr.grad_scaler.scale < before_scale
        np.testing.assert_array_equal(tr.model.tok_emb.weight.data, params_before)


class TestRouterWeightNormalization:
    def test_top2_weights_sum_to_one_when_normalized(self, rng):
        r = Router(8, 4, top_k=2, normalize_weights=True, rng=0)
        res = r(Tensor(rng.standard_normal((12, 8)).astype(np.float32)))
        np.testing.assert_allclose(res.expert_weights.data.sum(axis=1), 1.0, rtol=1e-5)

    def test_unnormalized_weights_are_raw_probabilities(self, rng):
        r = Router(8, 4, top_k=2, normalize_weights=False, rng=0)
        res = r(Tensor(rng.standard_normal((12, 8)).astype(np.float32)))
        assert (res.expert_weights.data.sum(axis=1) < 1.0 + 1e-6).all()

    def test_top1_normalization_is_noop(self, rng):
        x = rng.standard_normal((12, 8)).astype(np.float32)
        a = Router(8, 4, top_k=1, normalize_weights=True, rng=0)(Tensor(x.copy()))
        b = Router(8, 4, top_k=1, normalize_weights=False, rng=0)(Tensor(x.copy()))
        np.testing.assert_allclose(a.expert_weights.data, b.expert_weights.data)

    def test_normalized_weights_still_differentiable(self, rng):
        r = Router(8, 4, top_k=2, normalize_weights=True, rng=0, load_balance_coef=0.0)
        res = r(Tensor(rng.standard_normal((6, 8)).astype(np.float32)))
        res.expert_weights.sum().backward()
        assert r.proj.weight.grad is not None

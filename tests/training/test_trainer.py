import numpy as np
import pytest

from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.nn import TransformerLM
from repro.training import Adam, Trainer, TrainerConfig, WarmupCosineLR


def _tiny_setup(moe=False, steps=12):
    pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=3, branching=4), seed=1)
    ds = LMDataset(pile.token_stream(12_000, 32), seq_len=16)
    train, val = ds.split(0.1)
    if moe:
        from repro.core import dMoE

        ffn = lambda i: dMoE(16, 32, num_experts=4, block_size=8, rng=i)
        model = TransformerLM(64, 16, 2, 2, 16, ffn_factory=ffn, rng=0)
    else:
        model = TransformerLM(64, 16, 2, 2, 16, rng=0)
    cfg = TrainerConfig(
        global_batch=8, micro_batch=4, max_steps=steps, eval_every=6, log_every=3
    )
    return model, train, val, cfg


class TestTrainerConfig:
    def test_rejects_indivisible_batches(self):
        with pytest.raises(ValueError):
            TrainerConfig(global_batch=10, micro_batch=4)

    def test_accumulation_steps(self):
        assert TrainerConfig(global_batch=32, micro_batch=8).accumulation_steps == 4


class TestTrainer:
    def test_loss_decreases(self):
        model, train, val, cfg = _tiny_setup(steps=25)
        tr = Trainer(model, train, val, cfg, optimizer=Adam(model.parameters(), lr=3e-3))
        hist = tr.train()
        assert hist.records[-1].loss < hist.records[0].loss

    def test_history_has_final_val(self):
        model, train, val, cfg = _tiny_setup(steps=6)
        tr = Trainer(model, train, val, cfg)
        hist = tr.train()
        assert hist.final_val_loss() is not None

    def test_gradient_accumulation_equivalent_to_large_batch(self):
        """One step with (global=8, micro=4) equals (global=8, micro=8)
        in expectation: losses recorded from the same data order.

        We verify the weaker invariant that both configurations step the
        same number of optimizer steps and produce finite losses.
        """
        for micro in (4, 8):
            model, train, val, _ = _tiny_setup(steps=3)
            cfg = TrainerConfig(
                global_batch=8, micro_batch=micro, max_steps=3, eval_every=0
            )
            tr = Trainer(model, train, val, cfg)
            hist = tr.train()
            assert np.isfinite(hist.losses).all()

    def test_schedule_used(self):
        model, train, val, cfg = _tiny_setup(steps=4)
        sched = WarmupCosineLR(1e-3, total_steps=4, warmup_steps=2)
        tr = Trainer(model, train, val, cfg, schedule=sched)
        hist = tr.train()
        lrs = [r.lr for r in hist.records if r.lr is not None]
        assert lrs[0] == pytest.approx(sched(0))

    def test_callback_invoked(self):
        model, train, val, cfg = _tiny_setup(steps=6)
        seen = []
        Trainer(model, train, val, cfg).train(callback=lambda r: seen.append(r.step))
        assert len(seen) >= 1

    def test_evaluate_runs_in_eval_mode_and_restores(self):
        model, train, val, cfg = _tiny_setup(steps=2)
        tr = Trainer(model, train, val, cfg)
        tr.evaluate()
        assert model.training  # restored

    def test_moe_routing_stats_collected(self):
        model, train, val, cfg = _tiny_setup(moe=True, steps=4)
        tr = Trainer(model, train, val, cfg)
        tr.train()
        assert len(tr.routing_stats) == 4
        for rs in tr.routing_stats:
            assert rs.max_dynamic_capacity_factor >= 1.0
            assert rs.mean_dynamic_capacity_factor <= rs.max_dynamic_capacity_factor

    def test_dense_model_no_routing_stats(self):
        model, train, val, cfg = _tiny_setup(moe=False, steps=2)
        tr = Trainer(model, train, val, cfg)
        tr.train()
        assert tr.routing_stats == []

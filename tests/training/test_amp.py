import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Parameter
from repro.training import GradScaler, MasterWeights, to_half


class TestToHalf:
    def test_rounds_to_fp16_grid(self):
        x = np.array([1.0 + 2**-13], dtype=np.float32)
        assert to_half(x)[0] == np.float32(np.float16(x[0]))

    def test_preserves_representable(self):
        x = np.array([0.5, 1.0, 2.0, -4.0], dtype=np.float32)
        np.testing.assert_array_equal(to_half(x), x)

    def test_overflow_to_inf(self):
        assert np.isinf(to_half(np.array([1e6], dtype=np.float32)))[0]


class TestGradScaler:
    def _param(self, grad):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.asarray(grad, dtype=np.float32)
        return p

    def test_scale_loss(self):
        s = GradScaler(init_scale=8.0)
        loss = Tensor(np.float32(2.0))
        assert float(s.scale_loss(loss).data) == 16.0

    def test_unscale_divides(self):
        s = GradScaler(init_scale=8.0)
        p = self._param([8.0, 16.0])
        assert s.unscale_and_check([p])
        np.testing.assert_allclose(p.grad, [1.0, 2.0])

    def test_overflow_backs_off_and_zeroes(self):
        s = GradScaler(init_scale=8.0)
        p = self._param([np.inf, 1.0])
        assert not s.unscale_and_check([p])
        assert p.grad is None
        assert s.scale == 4.0
        assert s.num_overflows == 1

    def test_nan_detected(self):
        s = GradScaler(init_scale=8.0)
        assert not s.unscale_and_check([self._param([np.nan, 0.0])])

    def test_growth_after_interval(self):
        s = GradScaler(init_scale=2.0, growth_interval=3)
        for _ in range(3):
            assert s.unscale_and_check([self._param([1.0, 1.0])])
        assert s.scale == 4.0

    def test_scale_clamped(self):
        s = GradScaler(init_scale=1.0, min_scale=1.0)
        s.unscale_and_check([self._param([np.inf, 0.0])])
        assert s.scale == 1.0

    def test_overflow_resets_growth_counter(self):
        s = GradScaler(init_scale=4.0, growth_interval=2)
        s.unscale_and_check([self._param([1.0, 1.0])])
        s.unscale_and_check([self._param([np.inf, 1.0])])  # backoff to 2
        s.unscale_and_check([self._param([1.0, 1.0])])
        assert s.scale == 2.0  # one clean step, no growth yet


class TestMasterWeights:
    def test_masters_keep_precision_working_rounds(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        mw = MasterWeights([p])
        tiny = np.array([2**-14], dtype=np.float32)  # below fp16 ulp at 1.0
        for _ in range(8):
            mw.apply_update([-tiny])  # master += tiny each step
        mw.sync_working()
        assert mw.masters[0][0] > 1.0  # master accumulated
        # Working weight moved only by what fp16 can represent.
        assert mw.max_divergence() < 2**-10

    def test_sync_working_casts(self):
        p = Parameter(np.array([0.1], dtype=np.float32))
        mw = MasterWeights([p])
        mw.masters[0][0] = 0.30000001
        mw.sync_working()
        assert p.data[0] == np.float32(np.float16(0.30000001))

    def test_full_amp_step_trains(self):
        """Loss scaling + master weights descend a simple objective."""
        from repro.nn import Linear

        rng = np.random.default_rng(0)
        lin = Linear(4, 1, rng=0)
        params = list(lin.parameters())
        mw = MasterWeights(params)
        scaler = GradScaler(init_scale=2.0**10)
        x = rng.standard_normal((64, 4)).astype(np.float32)
        y = (x @ np.array([[1.0], [-2.0], [0.5], [0.0]], dtype=np.float32))
        first = last = None
        for _ in range(60):
            for p in params:
                p.grad = None
            pred = lin(Tensor(x))
            diff = pred - Tensor(y)
            loss = (diff * diff).mean()
            scaler.scale_loss(loss).backward()
            if scaler.unscale_and_check(params):
                mw.apply_update([0.05 * p.grad for p in params])
                mw.sync_working()
            last = float(loss.data)
            first = first if first is not None else last
        assert last < first * 0.2

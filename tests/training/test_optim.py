import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Parameter
from repro.training import SGD, Adam, clip_grad_norm


def _quadratic_params(rng, n=3):
    ps = [Parameter(rng.standard_normal(4).astype(np.float32)) for _ in range(n)]
    return ps


class TestClipGradNorm:
    def test_no_clip_below_threshold(self, rng):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.array([0.3, 0.0, 0.0, 0.0], dtype=np.float32)
        norm = clip_grad_norm([p], 1.0)
        assert abs(norm - 0.3) < 1e-6
        np.testing.assert_allclose(p.grad, [0.3, 0, 0, 0])

    def test_clips_to_max_norm(self, rng):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([3.0, 4.0], dtype=np.float32)
        norm = clip_grad_norm([p], 1.0)
        assert abs(norm - 5.0) < 1e-5
        assert abs(np.linalg.norm(p.grad) - 1.0) < 1e-5

    def test_global_norm_across_params(self):
        ps = [Parameter(np.zeros(1, dtype=np.float32)) for _ in range(2)]
        ps[0].grad = np.array([3.0], dtype=np.float32)
        ps[1].grad = np.array([4.0], dtype=np.float32)
        clip_grad_norm(ps, 1.0)
        total = np.sqrt(sum(float((p.grad**2).sum()) for p in ps))
        assert abs(total - 1.0) < 1e-5

    def test_none_grads_skipped(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        assert clip_grad_norm([p], 1.0) == 0.0


class TestSGD:
    def test_descends_quadratic(self, rng):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        for _ in range(50):
            opt.zero_grad()
            p.grad = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 0.01

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([5.0], dtype=np.float32))
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(20):
                p.grad = 2 * p.data
                opt.step()
            return abs(float(p.data[0]))

        assert run(0.9) < run(0.0)

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_descends_quadratic(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = Adam([p], lr=0.3)
        for _ in range(100):
            p.grad = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 0.05

    def test_lr_override_per_step(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = Adam([p], lr=0.0)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step(lr=0.1)
        assert p.data[0] < 5.0  # moved despite base lr 0

    def test_first_step_magnitude_is_lr(self):
        """Bias correction: first Adam update has magnitude ~lr."""
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0], dtype=np.float32)
        opt.step()
        assert abs(abs(p.data[0]) - 0.01) < 1e-4

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_state_size(self):
        p = Parameter(np.zeros(10, dtype=np.float32))
        opt = Adam([p])
        assert opt.state_size_bytes() == 2 * 10 * 4

    def test_skips_none_grads(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad: no movement, no crash
        assert p.data[0] == 1.0

    def test_trains_real_model(self, rng):
        """Adam on a tiny regression net reduces the loss."""
        from repro.nn import Linear, Sequential

        net = Sequential(Linear(4, 8, rng=0), Linear(8, 1, rng=1))
        opt = Adam(net.parameters(), lr=1e-2)
        x = rng.standard_normal((32, 4)).astype(np.float32)
        y = x[:, :1] * 2.0
        first = last = None
        for _ in range(60):
            opt.zero_grad()
            pred = net(Tensor(x))
            diff = pred - Tensor(y)
            loss = (diff * diff).mean()
            loss.backward()
            opt.step()
            last = float(loss.data)
            first = first if first is not None else last
        assert last < first * 0.3

import numpy as np
import pytest

from repro.training import (
    History,
    TrainingRecord,
    loss_equivalent_speedup,
    pareto_frontier,
    time_to_loss,
)


class TestHistory:
    def test_accessors(self):
        h = History()
        h.log(TrainingRecord(step=0, tokens=100, loss=2.0))
        h.log(TrainingRecord(step=1, tokens=200, loss=1.5, val_loss=1.8))
        np.testing.assert_array_equal(h.steps, [0, 1])
        np.testing.assert_array_equal(h.losses, [2.0, 1.5])
        s, v = h.val_points
        np.testing.assert_array_equal(s, [1])
        assert h.final_val_loss() == 1.8

    def test_final_val_none_when_absent(self):
        h = History()
        h.log(TrainingRecord(0, 1, 2.0))
        assert h.final_val_loss() is None

    def test_smoothing_reduces_variance(self, rng):
        h = History()
        noise = 2.0 + rng.standard_normal(200) * 0.5
        for i, l in enumerate(noise):
            h.log(TrainingRecord(i, i, float(l)))
        assert h.smoothed_losses(0.05).std() < h.losses.std() / 2

    def test_empty_history_dtypes(self):
        # An untyped np.array([]) defaults to float64; steps must stay
        # integral even with zero records so downstream indexing works.
        h = History()
        assert h.steps.dtype == np.int64
        assert h.losses.dtype == np.float64
        assert h.step_times.dtype == np.float64
        assert len(h.steps) == len(h.losses) == len(h.step_times) == 0

    def test_step_times_nan_where_untimed(self):
        h = History()
        h.log(TrainingRecord(step=0, tokens=1, loss=2.0))
        h.log(TrainingRecord(step=1, tokens=2, loss=1.5, step_time=0.25))
        st = h.step_times
        assert np.isnan(st[0])
        assert st[1] == 0.25

    def test_phase_times_round_trip(self):
        phases = {"forward": 0.1, "backward": 0.2}
        r = TrainingRecord(step=0, tokens=1, loss=1.0, phase_times=phases)
        assert r.phase_times == phases
        assert TrainingRecord(step=0, tokens=1, loss=1.0).phase_times is None


class TestTimeToLoss:
    def test_interpolates(self):
        t = time_to_loss([0, 10, 20], [3.0, 2.0, 1.0], 1.5)
        assert t == pytest.approx(15.0)

    def test_exact_hit(self):
        assert time_to_loss([0, 10], [3.0, 2.0], 3.0) == 0.0

    def test_never_reached(self):
        assert time_to_loss([0, 10], [3.0, 2.0], 1.0) is None

    def test_non_monotone_uses_running_min(self):
        t = time_to_loss([0, 10, 20, 30], [3.0, 1.9, 2.5, 1.0], 2.0)
        assert t is not None and t < 10.1

    def test_empty(self):
        assert time_to_loss([], [], 1.0) is None

    def test_reached_at_exact_first_record(self):
        # Target already satisfied by the very first point: return
        # times[0] without interpolating against a missing predecessor.
        assert time_to_loss([5.0, 10.0], [2.0, 1.0], 2.5) == 5.0
        assert time_to_loss([5.0], [2.0], 2.0) == 5.0

    def test_flat_segment_no_division_by_zero(self):
        # l0 == l1 on the straddling segment (plateau created by the
        # running minimum): must return the later time, not NaN/inf.
        t = time_to_loss([0, 10, 20], [3.0, 3.0, 1.0], 3.0)
        assert t == 0.0
        t = time_to_loss([0, 10, 20, 30], [3.0, 2.0, 2.5, 2.0], 2.0)
        assert t == pytest.approx(10.0)

    def test_noisy_losses_monotone_hit_time(self):
        # A later noisy spike above the target must not delay the hit.
        times = [0, 1, 2, 3, 4]
        losses = [3.0, 1.8, 2.6, 2.4, 1.7]
        t = time_to_loss(times, losses, 2.0)
        assert t is not None
        assert t <= 1.0 + 1e-12


class TestParetoFrontier:
    def test_dominated_points_removed(self):
        pts = [(1.0, 3.0), (2.0, 2.0), (3.0, 2.5), (4.0, 1.0)]
        f = pareto_frontier(pts)
        assert (3.0, 2.5) not in f
        assert f == [(1.0, 3.0), (2.0, 2.0), (4.0, 1.0)]

    def test_single_point(self):
        assert pareto_frontier([(1.0, 1.0)]) == [(1.0, 1.0)]

    def test_tie_in_loss_keeps_faster_point(self):
        # Equal loss at two times: only the faster one is on the
        # frontier (strict < comparison).
        f = pareto_frontier([(1.0, 2.0), (3.0, 2.0)])
        assert f == [(1.0, 2.0)]

    def test_tie_in_time_keeps_better_loss(self):
        # Same time, different losses: sorted order puts the lower loss
        # second, so the frontier keeps both sorted entries only if each
        # improves; the worse-loss twin is dominated.
        f = pareto_frontier([(1.0, 3.0), (1.0, 2.0)])
        assert (1.0, 2.0) in f
        assert len([p for p in f if p[0] == 1.0]) <= 2

    def test_duplicate_points(self):
        f = pareto_frontier([(1.0, 1.0), (1.0, 1.0)])
        assert f == [(1.0, 1.0)]

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestLossEquivalentSpeedup:
    def test_2x_faster_curve(self):
        ref = ([0, 10, 20, 40], [3.0, 2.5, 2.0, 1.5])
        target = ([0, 5, 10, 20], [3.0, 2.5, 2.0, 1.5])
        s = loss_equivalent_speedup(ref, target)
        assert s == pytest.approx(2.0)

    def test_none_when_reference_never_reaches(self):
        ref = ([0, 10], [3.0, 2.5])
        target = ([0, 10], [3.0, 1.0])
        assert loss_equivalent_speedup(ref, target) is None

    def test_identity_curve_speedup_one(self):
        c = ([0, 10, 20], [3.0, 2.0, 1.0])
        assert loss_equivalent_speedup(c, c) == pytest.approx(1.0)

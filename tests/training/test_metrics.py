import numpy as np
import pytest

from repro.training import (
    History,
    TrainingRecord,
    loss_equivalent_speedup,
    pareto_frontier,
    time_to_loss,
)


class TestHistory:
    def test_accessors(self):
        h = History()
        h.log(TrainingRecord(step=0, tokens=100, loss=2.0))
        h.log(TrainingRecord(step=1, tokens=200, loss=1.5, val_loss=1.8))
        np.testing.assert_array_equal(h.steps, [0, 1])
        np.testing.assert_array_equal(h.losses, [2.0, 1.5])
        s, v = h.val_points
        np.testing.assert_array_equal(s, [1])
        assert h.final_val_loss() == 1.8

    def test_final_val_none_when_absent(self):
        h = History()
        h.log(TrainingRecord(0, 1, 2.0))
        assert h.final_val_loss() is None

    def test_smoothing_reduces_variance(self, rng):
        h = History()
        noise = 2.0 + rng.standard_normal(200) * 0.5
        for i, l in enumerate(noise):
            h.log(TrainingRecord(i, i, float(l)))
        assert h.smoothed_losses(0.05).std() < h.losses.std() / 2


class TestTimeToLoss:
    def test_interpolates(self):
        t = time_to_loss([0, 10, 20], [3.0, 2.0, 1.0], 1.5)
        assert t == pytest.approx(15.0)

    def test_exact_hit(self):
        assert time_to_loss([0, 10], [3.0, 2.0], 3.0) == 0.0

    def test_never_reached(self):
        assert time_to_loss([0, 10], [3.0, 2.0], 1.0) is None

    def test_non_monotone_uses_running_min(self):
        t = time_to_loss([0, 10, 20, 30], [3.0, 1.9, 2.5, 1.0], 2.0)
        assert t is not None and t < 10.1

    def test_empty(self):
        assert time_to_loss([], [], 1.0) is None


class TestParetoFrontier:
    def test_dominated_points_removed(self):
        pts = [(1.0, 3.0), (2.0, 2.0), (3.0, 2.5), (4.0, 1.0)]
        f = pareto_frontier(pts)
        assert (3.0, 2.5) not in f
        assert f == [(1.0, 3.0), (2.0, 2.0), (4.0, 1.0)]

    def test_single_point(self):
        assert pareto_frontier([(1.0, 1.0)]) == [(1.0, 1.0)]


class TestLossEquivalentSpeedup:
    def test_2x_faster_curve(self):
        ref = ([0, 10, 20, 40], [3.0, 2.5, 2.0, 1.5])
        target = ([0, 5, 10, 20], [3.0, 2.5, 2.0, 1.5])
        s = loss_equivalent_speedup(ref, target)
        assert s == pytest.approx(2.0)

    def test_none_when_reference_never_reaches(self):
        ref = ([0, 10], [3.0, 2.5])
        target = ([0, 10], [3.0, 1.0])
        assert loss_equivalent_speedup(ref, target) is None

    def test_identity_curve_speedup_one(self):
        c = ([0, 10, 20], [3.0, 2.0, 1.0])
        assert loss_equivalent_speedup(c, c) == pytest.approx(1.0)

"""Resume equivalence: N + checkpoint + resume + N == 2N straight.

The fault-tolerance story rests on checkpoints being *perfect* restore
points: model, Adam moments, grad-scaler state, data order, and RNG
streams must all round-trip bit-exactly, or a recovered run silently
trains a different model.  These tests assert bit-identity, not
tolerance.
"""

import numpy as np
import pytest

from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.nn import TransformerLM
from repro.training import (
    Adam,
    CheckpointManager,
    CheckpointError,
    Trainer,
    TrainerConfig,
    WarmupCosineLR,
)


def _setup(max_steps, use_scaler=False, moe=False, trainer_seed=11):
    pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=3, branching=4), seed=1)
    ds = LMDataset(pile.token_stream(10_000, 32), seq_len=16)
    train, val = ds.split(0.1)
    if moe:
        from repro.core import dMoE

        ffn = lambda i: dMoE(16, 32, num_experts=4, block_size=8, rng=i)
        model = TransformerLM(64, 16, 2, 2, 16, ffn_factory=ffn, rng=0)
    else:
        model = TransformerLM(64, 16, 2, 2, 16, rng=0)
    cfg = TrainerConfig(
        global_batch=8,
        micro_batch=4,
        max_steps=max_steps,
        eval_every=0,
        log_every=1,
        use_grad_scaler=use_scaler,
    )
    # Identical model init + a private trainer RNG: the straight and the
    # resumed runs see identical parameter and data-order streams.
    return Trainer(
        model,
        train,
        val,
        cfg,
        optimizer=Adam(model.parameters(), lr=2e-3),
        schedule=WarmupCosineLR(2e-3, total_steps=max_steps, warmup_steps=2),
        rng=trainer_seed,
    )


def _losses(history):
    return {r.step: r.loss for r in history.records}


@pytest.mark.parametrize("use_scaler", [False, True], ids=["fp32", "scaler"])
class TestResumeEquivalence:
    def test_bit_exact_resume(self, tmp_path, use_scaler):
        n, total = 3, 6
        straight = _setup(total, use_scaler)
        straight.train()

        first = _setup(total, use_scaler)
        first.config.max_steps = n
        first.train()
        path = str(tmp_path / "mid.npz")
        first.save(path, step=n)

        resumed = _setup(total, use_scaler)
        resumed.fit(resume=path)

        # Per-step losses of the second half are bit-identical.
        want = _losses(straight.history)
        got = _losses(resumed.history)
        for step in range(n, total):
            assert got[step] == want[step], f"loss diverged at step {step}"
        # Parameters and optimizer state are bit-identical.
        for a, b in zip(
            straight.model.parameters(), resumed.model.parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)
        assert resumed.optimizer.t == straight.optimizer.t
        for a, b in zip(straight.optimizer._m, resumed.optimizer._m):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(straight.optimizer._v, resumed.optimizer._v):
            np.testing.assert_array_equal(a, b)
        if use_scaler:
            assert (
                resumed.grad_scaler.state_dict()
                == straight.grad_scaler.state_dict()
            )
        # RNG streams ended in the same place: next draws match.
        assert straight.rng.random() == resumed.rng.random()

    def test_resume_across_epoch_boundary(self, tmp_path, use_scaler):
        """The epoch shuffle order/position round-trips mid-epoch.

        The dataset is small enough (14 batches per epoch, 20 drawn)
        that the straight run re-shuffles mid-way, so the resumed run
        must restore both the in-flight epoch order and the RNG stream
        that generates the next shuffle.
        """
        pile = SyntheticPile(
            PileConfig(vocab_size=64, num_domains=3, branching=4), seed=1
        )
        ds = LMDataset(pile.token_stream(1_000, 32), seq_len=16)
        train, _ = ds.split(0.1)
        assert len(train) // 4 < 20  # epoch really is crossed

        def make(steps):
            model = TransformerLM(64, 16, 2, 2, 16, rng=0)
            cfg = TrainerConfig(
                global_batch=8,
                micro_batch=4,
                max_steps=steps,
                eval_every=0,
                log_every=1,
                use_grad_scaler=use_scaler,
            )
            return Trainer(
                model,
                train,
                None,
                cfg,
                optimizer=Adam(model.parameters(), lr=2e-3),
                rng=11,
            )

        n, total = 5, 10
        straight = make(total)
        straight.train()

        first = make(n)
        first.train()
        path = str(tmp_path / "mid.npz")
        first.save(path, step=n)

        resumed = make(total)
        resumed.fit(resume=path)
        for a, b in zip(
            straight.model.parameters(), resumed.model.parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)


class TestResumeMoE:
    def test_dmoe_model_resumes_bit_exactly(self, tmp_path):
        n, total = 2, 4
        straight = _setup(total, moe=True)
        straight.train()

        first = _setup(total, moe=True)
        first.config.max_steps = n
        first.train()
        path = str(tmp_path / "mid.npz")
        first.save(path, step=n)

        resumed = _setup(total, moe=True)
        resumed.fit(resume=path)
        for (name, a), (_, b) in zip(
            straight.model.named_parameters(),
            resumed.model.named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)


class TestFitCheckpointing:
    def test_fit_writes_rotating_checkpoints_and_resumes(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ckpts"), keep_last=2)
        tr = _setup(6)
        tr.fit(checkpoint_manager=mgr, checkpoint_every=2)
        assert mgr.steps == [4, 6]

        resumed = _setup(6)
        resumed.fit(resume=mgr)  # picks the newest (step 6, final state)
        for a, b in zip(tr.model.parameters(), resumed.model.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_resume_from_empty_manager_raises(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "none"))
        tr = _setup(2)
        with pytest.raises(CheckpointError):
            tr.fit(resume=mgr)

    def test_scaler_config_mismatch_rejected(self, tmp_path):
        tr = _setup(2, use_scaler=False)
        tr.train()
        path = str(tmp_path / "fp32.npz")
        tr.save(path, step=2)
        other = _setup(2, use_scaler=True)
        with pytest.raises(CheckpointError, match="grad-scaler"):
            other.fit(resume=path)

    def test_plain_checkpoint_cannot_resume_bit_exactly(self, tmp_path):
        from repro.training import save_checkpoint

        tr = _setup(2)
        path = str(tmp_path / "plain.npz")
        save_checkpoint(path, tr.model, tr.optimizer, step=1)
        with pytest.raises(CheckpointError, match="trainer state"):
            tr.fit(resume=path)

import numpy as np
import pytest

from repro.training import ConstantLR, WarmupCosineLR, WarmupLinearLR


class TestConstant:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s(0) == s(100) == 0.1


class TestWarmupCosine:
    def test_warmup_ramps_linearly(self):
        s = WarmupCosineLR(1.0, total_steps=100, warmup_steps=10)
        assert s(0) == pytest.approx(0.1)
        assert s(4) == pytest.approx(0.5)
        assert s(9) == pytest.approx(1.0)

    def test_peak_at_end_of_warmup(self):
        s = WarmupCosineLR(1.0, total_steps=100, warmup_steps=10)
        assert s(10) == pytest.approx(1.0)

    def test_decays_to_min(self):
        s = WarmupCosineLR(1.0, total_steps=100, warmup_steps=0, min_lr=0.1)
        assert s(100) == pytest.approx(0.1)
        assert s(1000) == pytest.approx(0.1)  # clamped past the end

    def test_midpoint_is_average(self):
        s = WarmupCosineLR(1.0, total_steps=100, warmup_steps=0, min_lr=0.0)
        assert s(50) == pytest.approx(0.5, abs=0.02)

    def test_monotone_decay_after_warmup(self):
        s = WarmupCosineLR(1.0, total_steps=50, warmup_steps=5)
        vals = [s(i) for i in range(5, 51)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            WarmupCosineLR(1.0, total_steps=0)
        with pytest.raises(ValueError):
            WarmupCosineLR(1.0, total_steps=10, warmup_steps=20)


class TestWarmupLinear:
    def test_linear_decay(self):
        s = WarmupLinearLR(1.0, total_steps=100, warmup_steps=0)
        assert s(50) == pytest.approx(0.5)
        assert s(100) == pytest.approx(0.0)

    def test_warmup(self):
        s = WarmupLinearLR(1.0, total_steps=100, warmup_steps=10)
        assert s(0) == pytest.approx(0.1)

import os

import numpy as np
import pytest

from repro.nn import Linear, Sequential
from repro.training import (
    Adam,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
)


def _model():
    return Sequential(Linear(4, 8, rng=0), Linear(8, 2, rng=1))


class TestSaveLoad:
    def test_roundtrip_parameters(self, tmp_path):
        m = _model()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, m, step=7)
        m2 = _model()
        for p in m2.parameters():
            p.data += 1.0
        meta = load_checkpoint(path, m2)
        assert meta["step"] == 7
        for (n1, p1), (n2, p2) in zip(
            m.named_parameters(), m2.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_roundtrip_adam_state(self, tmp_path):
        m = _model()
        opt = Adam(m.parameters(), lr=1e-2)
        # Take a few steps to populate moments.
        rng = np.random.default_rng(0)
        for _ in range(3):
            for p in opt.params:
                p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
            opt.step()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, m, opt, step=3)

        m2 = _model()
        opt2 = Adam(m2.parameters(), lr=1e-2)
        load_checkpoint(path, m2, opt2)
        assert opt2.t == opt.t
        for a, b in zip(opt._m, opt2._m):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(opt._v, opt2._v):
            np.testing.assert_array_equal(a, b)

    def test_resume_training_is_equivalent(self, tmp_path):
        """Train 6 steps straight == train 3, checkpoint, restore, 3 more."""
        rng = np.random.default_rng(1)
        grads = [
            [rng.standard_normal(p.shape).astype(np.float32) for p in
             [q.data for q in _model().parameters()]]
            for _ in range(6)
        ]

        def train(model, opt, gs):
            for g in gs:
                for p, gg in zip(opt.params, g):
                    p.grad = gg.copy()
                opt.step()

        m1 = _model()
        o1 = Adam(m1.parameters(), lr=1e-2)
        train(m1, o1, grads)

        m2 = _model()
        o2 = Adam(m2.parameters(), lr=1e-2)
        train(m2, o2, grads[:3])
        path = str(tmp_path / "mid.npz")
        save_checkpoint(path, m2, o2, step=3)
        m3 = _model()
        o3 = Adam(m3.parameters(), lr=1e-2)
        load_checkpoint(path, m3, o3)
        train(m3, o3, grads[3:])

        for p1, p3 in zip(m1.parameters(), m3.parameters()):
            np.testing.assert_allclose(p1.data, p3.data, atol=1e-7)

    def test_missing_adam_state_raises(self, tmp_path):
        m = _model()
        path = str(tmp_path / "noadam.npz")
        save_checkpoint(path, m)
        with pytest.raises(KeyError):
            load_checkpoint(path, _model(), Adam(_model().parameters()))

    def test_extra_metadata(self, tmp_path):
        m = _model()
        path = str(tmp_path / "meta.npz")
        save_checkpoint(path, m, step=1, extra={"val_loss": 2.5})
        meta = load_checkpoint(path, _model())
        assert meta["extra"]["val_loss"] == 2.5

    def test_extra_arrays_roundtrip(self, tmp_path):
        m = _model()
        path = str(tmp_path / "arrays.npz")
        order = np.arange(10, dtype=np.int64)[::-1].copy()
        save_checkpoint(path, m, extra_arrays={"epoch_order": order})
        meta = load_checkpoint(path, _model())
        np.testing.assert_array_equal(meta["extra_arrays"]["epoch_order"], order)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "clean.npz")
        save_checkpoint(path, _model())
        assert os.listdir(tmp_path) == ["clean.npz"]


class TestValidation:
    def test_truncated_checkpoint_rejected_with_clear_error(self, tmp_path):
        """A checkpoint cut off mid-write fails as corrupt, not as a
        cryptic zipfile exception."""
        path = tmp_path / "trunc.npz"
        save_checkpoint(str(path), _model(), step=2)
        blob = path.read_bytes()
        for frac in (0.25, 0.6, 0.95):
            path.write_bytes(blob[: int(len(blob) * frac)])
            with pytest.raises(CheckpointCorruptError):
                load_checkpoint(str(path), _model())

    def test_bitflip_caught_by_checksum(self, tmp_path):
        path = tmp_path / "flip.npz"
        save_checkpoint(str(path), _model(), step=2)
        blob = bytearray(path.read_bytes())
        # Flip one byte inside an array's payload region (stored data is
        # uncompressed, so zip-member CRCs are the only other guard; find
        # a spot that damages array bytes, not the JSON metadata).
        blob[len(blob) // 3] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(str(path), _model())

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(str(path), _model())

    def test_missing_file_still_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(str(tmp_path / "nope.npz"), _model())

    def test_optimizer_param_count_mismatch_is_clear(self, tmp_path):
        path = str(tmp_path / "adam.npz")
        m = _model()
        opt = Adam(m.parameters())
        save_checkpoint(path, m, opt, step=1)
        # Optimizer over a subset of parameters: count differs.
        m2 = _model()
        opt2 = Adam(list(m2.parameters())[:2])
        with pytest.raises(ValueError, match="parameter count mismatch"):
            load_checkpoint(path, m2, opt2)

    def test_model_untouched_when_checksum_fails(self, tmp_path):
        """Validation happens before any state is mutated."""
        path = tmp_path / "half.npz"
        m = _model()
        save_checkpoint(str(path), m, step=1)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        m2 = _model()
        before = [p.data.copy() for p in m2.parameters()]
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(str(path), m2)
        for p, b in zip(m2.parameters(), before):
            np.testing.assert_array_equal(p.data, b)


class TestCheckpointManager:
    def test_rotation_keeps_last_n(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ckpts"), keep_last=2)
        m = _model()
        for step in (1, 2, 3, 4):
            mgr.save(m, step=step)
        assert mgr.steps == [3, 4]
        assert os.path.exists(mgr.path_for(4))
        assert not os.path.exists(mgr.path_for(1))
        assert mgr.latest_path() == mgr.path_for(4)

    def test_best_checkpoint_survives_rotation(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ckpts"), keep_last=2)
        m = _model()
        mgr.save(m, step=1, metric=1.0)
        mgr.save(m, step=2, metric=2.0)  # worse
        mgr.save(m, step=3, metric=1.5)
        mgr.save(m, step=4, metric=1.2)
        assert mgr.best == {"step": 1, "metric": 1.0}
        assert os.path.exists(mgr.best_path)
        load_checkpoint(mgr.best_path, _model())  # valid and loadable

    def test_index_rebuilt_from_directory(self, tmp_path):
        directory = str(tmp_path / "ckpts")
        mgr = CheckpointManager(directory, keep_last=3)
        m = _model()
        for step in (5, 6):
            mgr.save(m, step=step)
        os.remove(os.path.join(directory, "index.json"))
        fresh = CheckpointManager(directory, keep_last=3)
        assert fresh.steps == [5, 6]

    def test_load_latest_falls_back_past_corrupt_newest(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ckpts"), keep_last=3)
        m = _model()
        mgr.save(m, step=1)
        marker = _model()
        for p in marker.parameters():
            p.data += 1.0
        mgr.save(marker, step=2)
        # Corrupt the newest checkpoint on disk.
        path = mgr.path_for(2)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        m2 = _model()
        meta = mgr.load_latest(m2)
        assert meta["step"] == 1
        for a, b in zip(m2.parameters(), m.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_latest_raises_when_nothing_valid(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "empty"))
        with pytest.raises(CheckpointError):
            mgr.load_latest(_model())

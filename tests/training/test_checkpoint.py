import numpy as np
import pytest

from repro.nn import Linear, Sequential
from repro.training import Adam, load_checkpoint, save_checkpoint


def _model():
    return Sequential(Linear(4, 8, rng=0), Linear(8, 2, rng=1))


class TestSaveLoad:
    def test_roundtrip_parameters(self, tmp_path):
        m = _model()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, m, step=7)
        m2 = _model()
        for p in m2.parameters():
            p.data += 1.0
        meta = load_checkpoint(path, m2)
        assert meta["step"] == 7
        for (n1, p1), (n2, p2) in zip(
            m.named_parameters(), m2.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_roundtrip_adam_state(self, tmp_path):
        m = _model()
        opt = Adam(m.parameters(), lr=1e-2)
        # Take a few steps to populate moments.
        rng = np.random.default_rng(0)
        for _ in range(3):
            for p in opt.params:
                p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
            opt.step()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, m, opt, step=3)

        m2 = _model()
        opt2 = Adam(m2.parameters(), lr=1e-2)
        load_checkpoint(path, m2, opt2)
        assert opt2.t == opt.t
        for a, b in zip(opt._m, opt2._m):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(opt._v, opt2._v):
            np.testing.assert_array_equal(a, b)

    def test_resume_training_is_equivalent(self, tmp_path):
        """Train 6 steps straight == train 3, checkpoint, restore, 3 more."""
        rng = np.random.default_rng(1)
        grads = [
            [rng.standard_normal(p.shape).astype(np.float32) for p in
             [q.data for q in _model().parameters()]]
            for _ in range(6)
        ]

        def train(model, opt, gs):
            for g in gs:
                for p, gg in zip(opt.params, g):
                    p.grad = gg.copy()
                opt.step()

        m1 = _model()
        o1 = Adam(m1.parameters(), lr=1e-2)
        train(m1, o1, grads)

        m2 = _model()
        o2 = Adam(m2.parameters(), lr=1e-2)
        train(m2, o2, grads[:3])
        path = str(tmp_path / "mid.npz")
        save_checkpoint(path, m2, o2, step=3)
        m3 = _model()
        o3 = Adam(m3.parameters(), lr=1e-2)
        load_checkpoint(path, m3, o3)
        train(m3, o3, grads[3:])

        for p1, p3 in zip(m1.parameters(), m3.parameters()):
            np.testing.assert_allclose(p1.data, p3.data, atol=1e-7)

    def test_missing_adam_state_raises(self, tmp_path):
        m = _model()
        path = str(tmp_path / "noadam.npz")
        save_checkpoint(path, m)
        with pytest.raises(KeyError):
            load_checkpoint(path, _model(), Adam(_model().parameters()))

    def test_extra_metadata(self, tmp_path):
        m = _model()
        path = str(tmp_path / "meta.npz")
        save_checkpoint(path, m, step=1, extra={"val_loss": 2.5})
        meta = load_checkpoint(path, _model())
        assert meta["extra"]["val_loss"] == 2.5

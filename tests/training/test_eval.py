import numpy as np
import pytest

from repro.data import LMDataset
from repro.nn import TransformerLM
from repro.training.eval import bits_per_token, evaluate_lm, perplexity


class TestMetricConversions:
    def test_perplexity(self):
        assert perplexity(0.0) == 1.0
        assert perplexity(np.log(10.0)) == pytest.approx(10.0)

    def test_bits_per_token(self):
        assert bits_per_token(np.log(2.0)) == pytest.approx(1.0)


class TestEvaluateLM:
    def _setup(self):
        rng = np.random.default_rng(0)
        ds = LMDataset(rng.integers(0, 32, 2001), seq_len=20)
        model = TransformerLM(32, 16, 1, 2, 20, rng=0)
        return model, ds

    def test_random_model_near_log_vocab(self):
        model, ds = self._setup()
        nll, acc = evaluate_lm(model, ds, max_batches=4)
        assert abs(nll - np.log(32)) < 0.5
        assert 0.0 <= acc <= 0.2  # chance level ~1/32

    def test_restores_training_mode(self):
        model, ds = self._setup()
        model.train()
        evaluate_lm(model, ds, max_batches=1)
        assert model.training

    def test_max_batches_respected(self):
        model, ds = self._setup()
        a = evaluate_lm(model, ds, batch_size=2, max_batches=1)
        b = evaluate_lm(model, ds, batch_size=2, max_batches=None)
        assert a != b  # different coverage gives different numbers

    def test_memorized_sequence_high_accuracy(self):
        """A model trained to memorize one batch scores near 100%."""
        from repro.autograd import Tensor
        from repro.training import Adam

        rng = np.random.default_rng(1)
        tokens = np.tile(np.arange(16), 200)  # deterministic cycle
        ds = LMDataset(tokens, seq_len=16)
        model = TransformerLM(16, 32, 2, 2, 16, rng=0)
        opt = Adam(model.parameters(), lr=5e-3)
        batch = ds.batch(np.arange(8))
        for _ in range(60):
            opt.zero_grad()
            loss, _, _ = model.loss(batch.inputs, batch.targets)
            loss.backward()
            opt.step()
        nll, acc = evaluate_lm(model, ds, max_batches=2)
        assert acc > 0.9
        assert perplexity(nll) < 2.0

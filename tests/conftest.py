"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.sparse.topology import Topology
from repro.utils.rng import seed_all

# One moderate profile for everything: property tests are CPU-bound numpy,
# so the default deadline trips on slow CI machines.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _deterministic_seed():
    """Every test starts from the same global RNG state."""
    seed_all(1234)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def random_topology(
    rng: np.random.Generator,
    block_rows: int = 5,
    block_cols: int = 6,
    block_size: int = 4,
    density: float = 0.5,
) -> Topology:
    """A random block mask topology (may be empty)."""
    mask = rng.random((block_rows, block_cols)) < density
    return Topology.from_block_mask(mask, block_size)

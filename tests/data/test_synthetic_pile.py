import numpy as np
import pytest

from repro.data import PileConfig, SyntheticPile


class TestGeneration:
    def test_shapes_and_range(self):
        pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=3), seed=0)
        toks = pile.sample_sequences(5, 20)
        assert toks.shape == (5, 20)
        assert toks.min() >= 0 and toks.max() < 64

    def test_deterministic_given_seed(self):
        a = SyntheticPile(seed=3).sample_sequences(4, 16, rng=7)
        b = SyntheticPile(seed=3).sample_sequences(4, 16, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SyntheticPile(seed=3).sample_sequences(4, 64, rng=7)
        b = SyntheticPile(seed=4).sample_sequences(4, 64, rng=7)
        assert not np.array_equal(a, b)

    def test_domains_returned(self):
        pile = SyntheticPile(PileConfig(num_domains=5), seed=0)
        toks, doms = pile.sample_sequences(10, 8, return_domains=True)
        assert doms.shape == (10,)
        assert doms.min() >= 0 and doms.max() < 5

    def test_token_stream_length(self):
        pile = SyntheticPile(seed=0)
        stream = pile.token_stream(1000, seq_len=64)
        assert stream.shape == (1000,)


class TestStatistics:
    def test_unigram_is_skewed(self):
        """Zipfian marginal: top tokens dominate, like real text."""
        pile = SyntheticPile(PileConfig(vocab_size=256), seed=0)
        toks = pile.sample_sequences(200, 64).reshape(-1)
        counts = np.bincount(toks, minlength=256)
        top10 = np.sort(counts)[::-1][:10].sum()
        assert top10 > 0.2 * counts.sum()

    def test_entropy_floor_below_unigram_entropy(self):
        """The Markov structure makes the data learnable: conditional
        entropy is far below log(vocab)."""
        cfg = PileConfig(vocab_size=128, branching=4)
        pile = SyntheticPile(cfg, seed=0)
        assert pile.entropy_rate_estimate() < 0.6 * np.log(cfg.vocab_size)

    def test_domains_have_distinct_statistics(self):
        """Expert-specialization needs domain heterogeneity."""
        pile = SyntheticPile(PileConfig(vocab_size=128, num_domains=4), seed=0)
        toks, doms = pile.sample_sequences(400, 32, return_domains=True)
        uni = []
        for d in range(4):
            sel = toks[doms == d].reshape(-1)
            if len(sel) == 0:
                continue
            counts = np.bincount(sel, minlength=128) / len(sel)
            uni.append(counts)
        # Total-variation distance between any two domains is substantial.
        tv = 0.5 * np.abs(uni[0] - uni[1]).sum()
        assert tv > 0.2

import pytest

from repro.data import BPETokenizer

CORPUS = [
    "the quick brown fox jumps over the lazy dog",
    "the lazy dog sleeps while the quick fox runs",
    "pack my box with five dozen liquor jugs",
    "the the the quick quick brown",
] * 5


class TestTraining:
    def test_learns_merges(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=200)
        assert len(tok.merges) > 0
        assert tok.vocab_size <= 260

    def test_deterministic(self):
        a = BPETokenizer.train(CORPUS, vocab_size=100)
        b = BPETokenizer.train(CORPUS, vocab_size=100)
        assert a.merges == b.merges
        assert a.vocab == b.vocab

    def test_frequent_words_become_single_tokens(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=300)
        ids = tok.encode("the")
        assert len(ids) == 1  # "the" is the most frequent word


class TestEncodeDecode:
    def test_roundtrip_on_training_text(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=300)
        text = "the quick brown fox"
        assert tok.decode(tok.encode(text)) == text

    def test_unknown_characters_map_to_unk(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=100)
        ids = tok.encode("zzzzqqq éé")
        assert all(isinstance(i, int) for i in ids)
        assert tok.unk_id in ids or len(ids) > 0

    def test_empty_string(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=100)
        assert tok.encode("") == []
        assert tok.decode([]) == ""

    def test_case_insensitive(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=200)
        assert tok.encode("THE Quick") == tok.encode("the quick")

    def test_punctuation_separated(self):
        tok = BPETokenizer.train(CORPUS + ["hello, world!"], vocab_size=200)
        text = tok.decode(tok.encode("hello, world!"))
        assert "hello" in text and "world" in text

import numpy as np
import pytest

from repro.data import LMDataset


class TestLMDataset:
    def test_windows_and_shift(self):
        tokens = np.arange(11)
        ds = LMDataset(tokens, seq_len=5)
        assert len(ds) == 2
        np.testing.assert_array_equal(ds.inputs[0], [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(ds.targets[0], [1, 2, 3, 4, 5])
        np.testing.assert_array_equal(ds.inputs[1], [5, 6, 7, 8, 9])
        np.testing.assert_array_equal(ds.targets[1], [6, 7, 8, 9, 10])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            LMDataset(np.arange(4), seq_len=5)

    def test_invalid_seq_len(self):
        with pytest.raises(ValueError):
            LMDataset(np.arange(10), seq_len=0)

    def test_iter_batches_covers_epoch(self):
        ds = LMDataset(np.arange(101), seq_len=10)
        seen = 0
        for batch in ds.iter_batches(2, shuffle=False):
            assert batch.inputs.shape == (2, 10)
            seen += 1
        assert seen == len(ds) // 2

    def test_shuffle_deterministic_with_seed(self):
        ds = LMDataset(np.arange(201), seq_len=10)
        a = [b.inputs.copy() for b in ds.iter_batches(4, rng=0)]
        b = [b.inputs.copy() for b in ds.iter_batches(4, rng=0)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_drop_last_false_keeps_remainder(self):
        ds = LMDataset(np.arange(51), seq_len=10)  # 5 windows
        batches = list(ds.iter_batches(2, shuffle=False, drop_last=False))
        assert sum(len(b.inputs) for b in batches) == 5

    def test_batch_targets_shifted(self):
        ds = LMDataset(np.arange(101), seq_len=10)
        batch = ds.batch(np.array([0]))
        np.testing.assert_array_equal(batch.inputs[0][1:], batch.targets[0][:-1])

    def test_split_disjoint_and_complete(self):
        ds = LMDataset(np.arange(501), seq_len=10)
        train, val = ds.split(0.2)
        assert len(train) + len(val) == len(ds)
        assert len(val) == 10

    def test_split_invalid_fraction(self):
        ds = LMDataset(np.arange(101), seq_len=10)
        with pytest.raises(ValueError):
            ds.split(1.5)

    def test_num_tokens(self):
        ds = LMDataset(np.arange(101), seq_len=10)
        assert ds.batch(np.array([0, 1])).num_tokens == 20

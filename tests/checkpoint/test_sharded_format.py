"""Sharded v3 format: streaming writes, atomic publish, validation.

The format's whole durability story is "the manifest rename is the
publish": shard files are fsynced before the manifest names them, so a
directory without a manifest is by definition a torn write and a
manifest entry whose shard is missing/damaged makes the checkpoint
corrupt.  These tests pin each clause of that contract, plus the lazy
reader, the expert sharding layout, and the v2 → v3 migration path.
"""

import json
import os

import numpy as np
import pytest

from repro.checkpoint import (
    MANIFEST_NAME,
    CheckpointCorruptError,
    CheckpointState,
    ShardReader,
    ShardWriter,
    describe_checkpoint,
    is_sharded_path,
    load_checkpoint,
    load_sharded_state,
    migrate_v2_to_v3,
    save_checkpoint,
    write_npz_state,
    write_sharded_state,
    write_state,
)
from repro.distributed import DeviceMesh
from repro.nn import Linear, Sequential
from repro.training import Adam


def _model():
    return Sequential(Linear(4, 8, rng=0), Linear(8, 2, rng=1))


def _state(rng_seed=0, mesh=None):
    rng = np.random.default_rng(rng_seed)
    arrays = {
        "model/w": rng.standard_normal((4, 8)).astype(np.float32),
        "model/experts.w1": rng.standard_normal((4, 3, 5)).astype(np.float32),
        "extra/order": np.arange(10, dtype=np.int64),
    }
    meta = {"step": 7, "extra": {"val_loss": 1.5}}
    if mesh is not None:
        meta["mesh"] = {
            "world": mesh.world,
            "expert_parallel": mesh.expert_parallel,
        }
    return CheckpointState(
        arrays=arrays, meta=meta, expert_axes={"model/experts.w1": (0, 4)}
    )


class TestShardWriterReader:
    def test_roundtrip(self, tmp_path):
        state = _state()
        path = str(tmp_path / "ckpt")
        write_sharded_state(path, state)
        reader = ShardReader(path)
        assert sorted(reader.keys()) == sorted(state.arrays)
        for key, arr in state.arrays.items():
            np.testing.assert_array_equal(reader[key], arr)
        assert reader.meta["step"] == 7

    def test_expert_tensor_is_one_shard_per_expert(self, tmp_path):
        mesh = DeviceMesh(world=4, expert_parallel=4)
        path = str(tmp_path / "ckpt")
        write_sharded_state(path, _state(mesh=mesh), mesh=mesh)
        reader = ShardReader(path)
        entries = reader.entries("model/experts.w1")
        assert len(entries) == 4
        for e, entry in enumerate(sorted(entries, key=lambda x: x["part"]["index"])):
            assert entry["part"] == {
                "axis": 0,
                "index": e,
                "count": 4,
                "rank": mesh.owner_of_expert(e, 4),
            }
        # Reassembly restores the stacked tensor bit-exactly.
        np.testing.assert_array_equal(
            reader["model/experts.w1"], _state().arrays["model/experts.w1"]
        )

    def test_write_state_annotates_ranks_from_meta_mesh(self, tmp_path):
        """The async/sync serializer recovers the mesh from the state's
        own metadata — no separate mesh plumbing required."""
        mesh = DeviceMesh(world=2, expert_parallel=2)
        path = str(tmp_path / "ckpt")
        write_state(path, _state(mesh=mesh))
        entries = ShardReader(path).entries("model/experts.w1")
        assert [e["part"]["rank"] for e in
                sorted(entries, key=lambda x: x["part"]["index"])] == [0, 0, 1, 1]

    def test_lazy_read_touches_only_requested_shards(self, tmp_path):
        path = str(tmp_path / "ckpt")
        write_sharded_state(path, _state())
        reader = ShardReader(path)
        # Damage a shard the read below never asks for.
        victim = reader.entries("model/experts.w1")[0]["file"]
        with open(os.path.join(path, victim), "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.write(b"\xff")
        np.testing.assert_array_equal(
            reader["extra/order"], np.arange(10, dtype=np.int64)
        )

    def test_writer_refuses_puts_after_finalize(self, tmp_path):
        w = ShardWriter(str(tmp_path / "ckpt"))
        w.put("a", np.zeros(3))
        w.finalize({})
        with pytest.raises(Exception, match="finalized"):
            w.put("b", np.zeros(3))

    def test_expert_extent_mismatch_fails_loudly(self, tmp_path):
        w = ShardWriter(str(tmp_path / "ckpt"))
        with pytest.raises(Exception, match="num_experts"):
            w.put_expert_sharded("k", np.zeros((3, 2)), num_experts=4)
        w.abort()
        assert not os.path.isdir(str(tmp_path / "ckpt"))


class TestTornAndCorrupt:
    def test_directory_without_manifest_is_torn(self, tmp_path):
        path = str(tmp_path / "ckpt")
        w = ShardWriter(path)
        w.put("model/w", np.zeros((2, 2), dtype=np.float32))
        # Writer dies before finalize: shards exist, manifest does not.
        assert os.path.isdir(os.path.join(path, "shards"))
        with pytest.raises(CheckpointCorruptError, match="torn"):
            ShardReader(path)

    def test_missing_path_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardReader(str(tmp_path / "nope"))

    def test_bit_flipped_shard_fails_crc(self, tmp_path):
        path = str(tmp_path / "ckpt")
        write_sharded_state(path, _state())
        reader = ShardReader(path)
        victim = reader.entries("model/w")[0]["file"]
        with open(os.path.join(path, victim), "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            ShardReader(path)["model/w"]

    def test_deleted_shard_is_corrupt(self, tmp_path):
        path = str(tmp_path / "ckpt")
        write_sharded_state(path, _state())
        victim = ShardReader(path).entries("extra/order")[0]["file"]
        os.remove(os.path.join(path, victim))
        with pytest.raises(CheckpointCorruptError, match="missing"):
            load_sharded_state(path)

    def test_truncated_manifest_is_corrupt(self, tmp_path):
        path = str(tmp_path / "ckpt")
        write_sharded_state(path, _state())
        mpath = os.path.join(path, MANIFEST_NAME)
        blob = open(mpath, "rb").read()
        with open(mpath, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointCorruptError, match="JSON"):
            ShardReader(path)

    def test_wrong_format_version_is_corrupt(self, tmp_path):
        path = str(tmp_path / "ckpt")
        write_sharded_state(path, _state())
        mpath = os.path.join(path, MANIFEST_NAME)
        manifest = json.load(open(mpath))
        manifest["format_version"] = 99
        json.dump(manifest, open(mpath, "w"))
        with pytest.raises(CheckpointCorruptError, match="format_version"):
            ShardReader(path)

    def test_validation_precedes_mutation(self, tmp_path):
        """A corrupt load leaves the destination model untouched."""
        m = _model()
        path = str(tmp_path / "ckpt")
        save_checkpoint(path, m, step=1)
        victim = ShardReader(path).manifest["shards"][0]["file"]
        with open(os.path.join(path, victim), "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.write(b"\x00")
        m2 = _model()
        before = [p.data.copy() for p in m2.parameters()]
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, m2)
        for p, b in zip(m2.parameters(), before):
            np.testing.assert_array_equal(p.data, b)


class TestDispatchAndMigration:
    def test_path_dispatch(self):
        assert not is_sharded_path("x/ckpt.npz")
        assert is_sharded_path("x/ckpt-00000010")

    def test_save_load_full_model_roundtrip(self, tmp_path):
        m = _model()
        opt = Adam(m.parameters(), lr=1e-2)
        rng = np.random.default_rng(3)
        for _ in range(2):
            for p in opt.params:
                p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
            opt.step()
        path = str(tmp_path / "ckpt-dir")
        save_checkpoint(path, m, opt, step=2)
        m2, opt2 = _model(), None
        opt2 = Adam(m2.parameters(), lr=1e-2)
        meta = load_checkpoint(path, m2, opt2)
        assert meta["step"] == 2 and meta["format_version"] == 3
        for p1, p2 in zip(m.parameters(), m2.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)
        for a, b in zip(opt._m, opt2._m):
            np.testing.assert_array_equal(a, b)
        assert opt2.t == opt.t

    def test_migrate_v2_to_v3_is_bit_identical(self, tmp_path):
        state = _state()
        src = str(tmp_path / "old.npz")
        write_npz_state(src, state)
        dst = str(tmp_path / "new-sharded")
        migrate_v2_to_v3(src, dst)
        migrated = load_sharded_state(dst)
        assert migrated.meta["migrated_from"] == 2
        assert sorted(migrated.arrays) == sorted(state.arrays)
        for key, arr in state.arrays.items():
            np.testing.assert_array_equal(migrated.arrays[key], arr)
        # And the migrated checkpoint loads through the public API.
        m = _model()
        path2 = str(tmp_path / "m2")
        save_checkpoint(path2, m, step=5)
        assert load_checkpoint(path2, _model())["step"] == 5

    def test_describe_both_formats(self, tmp_path):
        state = _state(mesh=DeviceMesh(world=4, expert_parallel=4))
        npz = str(tmp_path / "a.npz")
        shard = str(tmp_path / "a-dir")
        write_npz_state(npz, state)
        write_sharded_state(shard, state)
        d2, d3 = describe_checkpoint(npz), describe_checkpoint(shard, verify=True)
        assert d2["format_version"] == 2 and d3["format_version"] == 3
        assert d2["step"] == d3["step"] == 7
        assert d3["mesh"] == {"world": 4, "expert_parallel": 4}
        assert d3["num_tensors"] == 3
        # 2 whole tensors + 4 expert shards.
        assert d3["num_shards"] == 6
        assert d2["total_bytes"] == d3["total_bytes"]

    def test_describe_verify_catches_damage(self, tmp_path):
        path = str(tmp_path / "ckpt")
        write_sharded_state(path, _state())
        victim = ShardReader(path).manifest["shards"][0]["file"]
        with open(os.path.join(path, victim), "r+b") as fh:
            fh.seek(-2, os.SEEK_END)
            fh.write(b"\x00\x01")
        describe_checkpoint(path)  # listing alone stays lazy
        with pytest.raises(CheckpointCorruptError):
            describe_checkpoint(path, verify=True)

    def test_overwrite_replaces_previous_checkpoint(self, tmp_path):
        path = str(tmp_path / "ckpt")
        write_sharded_state(path, _state(rng_seed=0))
        first = ShardReader(path)["model/w"].copy()
        write_sharded_state(path, _state(rng_seed=1))
        second = ShardReader(path)["model/w"]
        assert not np.array_equal(first, second)
        # No stale shards accumulate across overwrites.
        manifest = ShardReader(path).manifest
        on_disk = set(os.listdir(os.path.join(path, "shards")))
        named = {os.path.basename(e["file"]) for e in manifest["shards"]}
        assert on_disk == named

"""CheckpointManager over mixed formats and broken checkpoints.

The rotation index must survive a format migration mid-run (``.npz``
files and sharded directories side by side) and ``load_latest`` must
fall back past every flavor of damage: torn directory, corrupt shard,
valid-manifest-missing-shard, truncated ``.npz``.
"""

import json
import os
import shutil

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointError,
    CheckpointManager,
    MANIFEST_NAME,
    ShardReader,
    save_checkpoint,
)
from repro.nn import Linear, Sequential
from repro.training import Adam


def _model(rng=0):
    return Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng + 1))


class TestMixedFormatIndex:
    def test_rebuild_recognizes_both_formats(self, tmp_path):
        d = str(tmp_path / "run")
        m = _model()
        mgr = CheckpointManager(d, keep_last=5, fmt="npz")
        mgr.save(m, step=1)
        mgr2 = CheckpointManager(d, keep_last=5, fmt="sharded")
        mgr2.save(m, step=2)
        os.remove(os.path.join(d, "index.json"))
        rebuilt = CheckpointManager(d, keep_last=5)
        assert rebuilt.steps == [1, 2]
        assert rebuilt.latest_path().endswith("ckpt-00000002")

    def test_rotation_removes_directories(self, tmp_path):
        d = str(tmp_path / "run")
        mgr = CheckpointManager(d, keep_last=2, keep_best=False, fmt="sharded")
        m = _model()
        for step in (1, 2, 3):
            mgr.save(m, step=step)
        assert mgr.steps == [2, 3]
        assert not os.path.exists(os.path.join(d, "ckpt-00000001"))
        assert os.path.isdir(os.path.join(d, "ckpt-00000003"))

    def test_best_checkpoint_copies_directory(self, tmp_path):
        d = str(tmp_path / "run")
        mgr = CheckpointManager(d, keep_last=1, fmt="sharded")
        m = _model()
        mgr.save(m, step=1, metric=2.0)
        mgr.save(m, step=2, metric=1.0)  # better; step 1 pruned
        mgr.save(m, step=3, metric=5.0)  # worse
        assert mgr.best == {"step": 2, "metric": 1.0}
        best = os.path.join(d, "ckpt-best")
        assert os.path.isdir(best)
        assert ShardReader(best).meta["step"] == 2


class TestLoadLatestFallback:
    def _mgr_with_three(self, tmp_path):
        d = str(tmp_path / "run")
        mgr = CheckpointManager(d, keep_last=5, keep_best=False, fmt="sharded")
        models = {}
        for step in (1, 2, 3):
            m = _model(rng=step * 10)
            opt = Adam(m.parameters(), lr=1e-2)
            mgr.save(m, opt, step=step)
            models[step] = m
        return d, mgr, models

    def test_skips_torn_directory(self, tmp_path):
        d, mgr, models = self._mgr_with_three(tmp_path)
        os.remove(os.path.join(d, "ckpt-00000003", MANIFEST_NAME))
        m = _model(rng=99)
        meta = mgr.load_latest(m, Adam(m.parameters(), lr=1e-2))
        assert meta["step"] == 2
        for p1, p2 in zip(models[2].parameters(), m.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_skips_valid_manifest_missing_shard(self, tmp_path):
        d, mgr, models = self._mgr_with_three(tmp_path)
        victim_dir = os.path.join(d, "ckpt-00000003")
        victim = ShardReader(victim_dir).manifest["shards"][0]["file"]
        os.remove(os.path.join(victim_dir, victim))
        m = _model(rng=99)
        assert mgr.load_latest(m)["step"] == 2

    def test_skips_corrupt_shard(self, tmp_path):
        d, mgr, models = self._mgr_with_three(tmp_path)
        victim_dir = os.path.join(d, "ckpt-00000003")
        victim = ShardReader(victim_dir).manifest["shards"][1]["file"]
        with open(os.path.join(victim_dir, victim), "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.write(b"\x7f")
        m = _model(rng=99)
        assert mgr.load_latest(m)["step"] == 2

    def test_skips_deleted_checkpoint_entirely(self, tmp_path):
        d, mgr, models = self._mgr_with_three(tmp_path)
        shutil.rmtree(os.path.join(d, "ckpt-00000003"))
        m = _model(rng=99)
        assert mgr.load_latest(m)["step"] == 2

    def test_all_broken_raises_with_trail(self, tmp_path):
        d, mgr, _ = self._mgr_with_three(tmp_path)
        for step in (1, 2, 3):
            os.remove(os.path.join(d, f"ckpt-{step:08d}", MANIFEST_NAME))
        with pytest.raises(CheckpointError, match="tried 3"):
            mgr.load_latest(_model(rng=99))

    def test_mixed_format_fallback(self, tmp_path):
        """A corrupt sharded checkpoint falls back to an older .npz."""
        d = str(tmp_path / "run")
        mgr = CheckpointManager(d, keep_last=5, keep_best=False, fmt="npz")
        m1 = _model(rng=7)
        mgr.save(m1, step=1)
        mgr.fmt = "sharded"
        mgr.save(_model(rng=8), step=2)
        os.remove(os.path.join(d, "ckpt-00000002", MANIFEST_NAME))
        m = _model(rng=99)
        meta = mgr.load_latest(m)
        assert meta["step"] == 1
        for p1, p2 in zip(m1.parameters(), m.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_index_rewrite_survives_missing_index(self, tmp_path):
        d, mgr, _ = self._mgr_with_three(tmp_path)
        index = json.load(open(os.path.join(d, "index.json")))
        assert index["checkpoints"] == [1, 2, 3]

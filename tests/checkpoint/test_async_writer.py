"""Async background writer: byte-identity, overlap, backpressure,
failure surfacing.

The async path must be *indistinguishable on disk* from the sync path
(one serializer, deterministic shard order, sorted-keys manifest) while
actually running off the training thread — and a failed background
write must surface in the metrics/counters without killing training.
"""

import filecmp
import os
import threading
import time

import numpy as np
import pytest

from repro.checkpoint import (
    AsyncCheckpointWriter,
    CheckpointError,
    CheckpointManager,
    CheckpointState,
    build_state,
    write_state,
)
from repro.nn import Linear, Sequential
from repro.observability.metrics import registry
from repro.resilience import counters


def _state(seed=0):
    rng = np.random.default_rng(seed)
    return CheckpointState(
        arrays={
            "model/w": rng.standard_normal((8, 8)).astype(np.float32),
            "model/experts.w": rng.standard_normal((4, 2, 3)).astype(np.float32),
        },
        meta={
            "step": 3,
            "extra": {},
            "mesh": {"world": 2, "expert_parallel": 2},
        },
        expert_axes={"model/experts.w": (0, 4)},
    )


def _dir_bytes(path):
    """Map of relative file path -> content bytes for a checkpoint dir."""
    out = {}
    for root, _, files in os.walk(path):
        for f in files:
            p = os.path.join(root, f)
            out[os.path.relpath(p, path)] = open(p, "rb").read()
    return out


class TestByteIdentity:
    def test_async_equals_sync_sharded(self, tmp_path):
        state = _state()
        sync_path = str(tmp_path / "sync")
        async_path = str(tmp_path / "async")
        write_state(sync_path, state)
        with AsyncCheckpointWriter() as w:
            w.submit(async_path, state)
        a, b = _dir_bytes(sync_path), _dir_bytes(async_path)
        assert a.keys() == b.keys()
        for name in a:
            assert a[name] == b[name], f"{name} differs between sync and async"

    def test_async_equals_sync_npz(self, tmp_path):
        state = _state()
        sync_path = str(tmp_path / "sync.npz")
        async_path = str(tmp_path / "async.npz")
        write_state(sync_path, state)
        with AsyncCheckpointWriter() as w:
            w.submit(async_path, state)
        assert open(sync_path, "rb").read() == open(async_path, "rb").read()


class TestWorkerThread:
    def test_write_happens_off_caller_thread(self, tmp_path):
        with AsyncCheckpointWriter() as w:
            w.submit(str(tmp_path / "ckpt"), _state())
            w.drain()
            assert w.worker_ident is not None
            assert w.worker_ident != threading.get_ident()
        assert w.written == 1 and w.failed == 0

    def test_copy_snapshot_shields_against_mutation(self, tmp_path):
        """The ``copy=True`` snapshot discipline: training (or a rewind)
        mutating the live arrays after submit must not leak into the
        checkpoint."""
        model = Sequential(Linear(4, 8, rng=0), Linear(8, 2, rng=1))
        state = build_state(model, step=1, copy=True)
        expected = {k: a.copy() for k, a in state.arrays.items()}
        path = str(tmp_path / "ckpt")
        with AsyncCheckpointWriter() as w:
            w.submit(path, state)
            for p in model.parameters():  # "training continues"
                p.data += 100.0
        from repro.checkpoint import load_sharded_state

        loaded = load_sharded_state(path)
        for key, arr in expected.items():
            np.testing.assert_array_equal(loaded.arrays[key], arr)

    def test_backpressure_blocks_not_drops(self, tmp_path):
        before = registry().counter("ckpt/backpressure_waits").value
        slow = threading.Event()
        orig_write = AsyncCheckpointWriter._write

        def slow_write(self, job):
            slow.wait(timeout=5.0)
            return orig_write(self, job)

        w = AsyncCheckpointWriter(queue_size=1)
        try:
            w._write = slow_write.__get__(w)
            w.submit(str(tmp_path / "a"), _state(0))  # taken by worker
            w.submit(str(tmp_path / "b"), _state(1))  # fills the queue
            t0 = time.perf_counter()
            release = threading.Timer(0.1, slow.set)
            release.start()
            w.submit(str(tmp_path / "c"), _state(2))  # must block
            waited = time.perf_counter() - t0
            release.join()
        finally:
            slow.set()
            w.close()
        assert w.written == 3
        assert waited >= 0.05, "third submit should have hit backpressure"
        assert registry().counter("ckpt/backpressure_waits").value > before


class TestFailureSurfacing:
    def test_failed_write_is_surfaced_not_fatal(self, tmp_path):
        reg = registry()
        fail_before = reg.counter("ckpt/async_write_failures").value
        res_before = counters.get("ckpt_write_failures")

        def bomb(key):
            raise RuntimeError("injected mid-shard death")

        path = str(tmp_path / "ckpt")
        with AsyncCheckpointWriter() as w:
            w.submit(path, _state(), fault_hook=bomb)
            w.drain()
            assert w.failed == 1 and w.written == 0
            assert w.last_error_path == path
            with pytest.raises(CheckpointError, match="failed"):
                w.check()
            assert w.last_error is None  # check() clears
        assert reg.counter("ckpt/async_write_failures").value == fail_before + 1
        assert counters.get("ckpt_write_failures") == res_before + 1
        # The torn artifact is on disk and manifest-less.
        assert os.path.isdir(path)
        assert not os.path.exists(os.path.join(path, "manifest.json"))

    def test_manager_not_registered_on_failure(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "run"), fmt="sharded")

        def bomb(key):
            raise RuntimeError("boom")

        with AsyncCheckpointWriter() as w:
            w.submit(mgr.path_for(4), _state(), step=4, manager=mgr, fault_hook=bomb)
            w.drain()
        assert mgr.steps == []

    def test_manager_registered_on_success(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "run"), fmt="sharded")
        with AsyncCheckpointWriter() as w:
            w.submit(mgr.path_for(4), _state(), step=4, metric=1.0, manager=mgr)
            w.drain()
        assert mgr.steps == [4]
        assert mgr.best == {"step": 4, "metric": 1.0}

    def test_submit_after_close_raises(self, tmp_path):
        w = AsyncCheckpointWriter()
        w.close()
        with pytest.raises(CheckpointError, match="closed"):
            w.submit(str(tmp_path / "x"), _state())

    def test_pending_counts_down(self, tmp_path):
        w = AsyncCheckpointWriter()
        w.submit(str(tmp_path / "a"), _state())
        w.drain()
        assert w.pending == 0
        w.close()

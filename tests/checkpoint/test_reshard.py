"""Elastic resume planning and execution.

An expert's shard is the unit of exchange: resharding from world N to
world M only remaps *ownership* (``DeviceMesh.owner_of_expert``), never
slices or re-encodes a shard file, so the restored weights and Adam
moments must be bit-identical in every direction — N==M (no plan at
all), N→M grow, M→N shrink, and the N→M→N round trip.
"""

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointError,
    ExpertMove,
    load_checkpoint,
    maybe_plan_reshard,
    plan_reshard,
    save_checkpoint,
)
from repro.checkpoint.common import build_state
from repro.distributed import DeviceMesh
from repro.nn import TransformerLM
from repro.training import Adam


def _moe_model(rng=0):
    from repro.core import dMoE

    ffn = lambda i: dMoE(16, 32, num_experts=4, block_size=8, rng=i)
    return TransformerLM(64, 16, 2, 2, 16, ffn_factory=ffn, rng=rng)


def _step_optimizer(model, opt, seed=0, steps=2):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        for p in opt.params:
            p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
        opt.step()


class TestPlanner:
    def test_plan_4_to_2(self):
        src = DeviceMesh(world=4, expert_parallel=4)
        dst = DeviceMesh(world=2, expert_parallel=2)
        plan = plan_reshard(4, src, dst)
        # 4 ranks x 1 expert -> 2 ranks x 2 experts: only expert 0 stays.
        assert plan.stationary == 1
        assert plan.moves == [
            ExpertMove(1, 1, 0),
            ExpertMove(2, 2, 1),
            ExpertMove(3, 3, 1),
        ]
        assert plan.summary()["moves"] == 3

    def test_plan_validates_divisibility(self):
        src = DeviceMesh(world=4, expert_parallel=4)
        bad = DeviceMesh(world=3, expert_parallel=3)
        with pytest.raises(CheckpointError, match="cannot reshard"):
            plan_reshard(4, src, bad)

    def test_same_mesh_needs_no_plan(self):
        mesh = DeviceMesh(world=4, expert_parallel=4)
        state = build_state(_moe_model(), mesh=mesh)
        saved = {"world": 4, "expert_parallel": 4}
        assert maybe_plan_reshard(state, saved, mesh) is None

    def test_expert_slice_inverts_owner_of_expert(self):
        for ep in (1, 2, 4, 8):
            mesh = DeviceMesh(world=8, expert_parallel=ep)
            seen = []
            for rank in range(ep):
                block = mesh.expert_slice(rank, 8)
                seen.extend(block)
                for e in block:
                    assert mesh.owner_of_expert(e, 8) == rank
            assert seen == list(range(8))

    def test_expert_slice_rejects_bad_rank(self):
        mesh = DeviceMesh(world=4, expert_parallel=4)
        with pytest.raises(ValueError, match="out of range"):
            mesh.expert_slice(4, 8)


class TestElasticLoad:
    @pytest.mark.parametrize(
        "save_ep,load_ep", [(4, 2), (2, 4), (4, 1)], ids=["shrink", "grow", "gather"]
    )
    def test_cross_world_load_is_bit_identical(self, tmp_path, save_ep, load_ep):
        model = _moe_model()
        opt = Adam(model.parameters(), lr=1e-2)
        _step_optimizer(model, opt)
        src_mesh = DeviceMesh(world=save_ep, expert_parallel=save_ep)
        path = str(tmp_path / "ckpt")
        save_checkpoint(path, model, opt, step=2, mesh=src_mesh)

        dst_mesh = DeviceMesh(world=load_ep, expert_parallel=load_ep)
        m2 = _moe_model(rng=99)
        opt2 = Adam(m2.parameters(), lr=1e-2)
        meta = load_checkpoint(path, m2, opt2, mesh=dst_mesh)
        assert meta["reshard"]["src_world"] == save_ep
        assert meta["reshard"]["dst_world"] == load_ep
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), m2.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=n1)
        for a, b in zip(opt._m, opt2._m):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(opt._v, opt2._v):
            np.testing.assert_array_equal(a, b)

    def test_same_world_load_has_no_reshard_meta(self, tmp_path):
        model = _moe_model()
        mesh = DeviceMesh(world=4, expert_parallel=4)
        path = str(tmp_path / "ckpt")
        save_checkpoint(path, model, step=1, mesh=mesh)
        meta = load_checkpoint(path, _moe_model(rng=5), mesh=mesh)
        assert "reshard" not in meta

    def test_indivisible_target_mesh_fails_loudly(self, tmp_path):
        model = _moe_model()  # 4 experts
        path = str(tmp_path / "ckpt")
        save_checkpoint(
            path, model, step=1, mesh=DeviceMesh(world=4, expert_parallel=4)
        )
        with pytest.raises(CheckpointError, match="cannot reshard"):
            load_checkpoint(
                path,
                _moe_model(rng=5),
                mesh=DeviceMesh(world=3, expert_parallel=3),
            )

    def test_dense_model_reshards_trivially(self, tmp_path):
        dense = TransformerLM(64, 16, 2, 2, 16, rng=0)
        path = str(tmp_path / "ckpt")
        save_checkpoint(
            path, dense, step=1, mesh=DeviceMesh(world=4, expert_parallel=4)
        )
        d2 = TransformerLM(64, 16, 2, 2, 16, rng=9)
        meta = load_checkpoint(
            path, d2, mesh=DeviceMesh(world=2, expert_parallel=2)
        )
        assert meta["reshard"]["num_experts"] == 0
        for p1, p2 in zip(dense.parameters(), d2.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

import numpy as np
import pytest

from repro.sparse import BlockSparseMatrix, Topology
from tests.conftest import random_topology


class TestConstruction:
    def test_shape_validation(self, rng):
        topo = random_topology(rng, 3, 3, 4, 0.5)
        with pytest.raises(ValueError):
            BlockSparseMatrix(topo, np.zeros((topo.nnz_blocks + 1, 4, 4)))

    def test_zeros(self, rng):
        topo = random_topology(rng, 3, 3, 4, 0.5)
        m = BlockSparseMatrix.zeros(topo)
        assert m.values.shape == (topo.nnz_blocks, 4, 4)
        assert np.all(m.to_dense() == 0)

    def test_repr(self, rng):
        topo = random_topology(rng, 3, 3, 4, 0.5)
        assert "BlockSparseMatrix" in repr(BlockSparseMatrix.zeros(topo))


class TestDenseRoundtrip:
    def test_from_dense_to_dense(self, rng):
        topo = random_topology(rng, 4, 5, 4, 0.6)
        dense = rng.standard_normal(topo.shape)
        from repro.sparse import element_mask

        masked = np.where(element_mask(topo), dense, 0.0)
        m = BlockSparseMatrix.from_dense(masked, topo)
        np.testing.assert_array_equal(m.to_dense(), masked)

    def test_from_dense_samples_outside_values(self, rng):
        """Values outside the topology are dropped (SDD semantics)."""
        topo = Topology.from_block_mask(np.array([[True, False]]), 2)
        dense = np.arange(8, dtype=np.float64).reshape(2, 4)
        m = BlockSparseMatrix.from_dense(dense, topo)
        out = m.to_dense()
        np.testing.assert_array_equal(out[:, :2], dense[:, :2])
        np.testing.assert_array_equal(out[:, 2:], 0.0)

    def test_from_dense_shape_mismatch(self, rng):
        topo = random_topology(rng, 3, 3, 4, 0.5)
        with pytest.raises(ValueError):
            BlockSparseMatrix.from_dense(np.zeros((1, 1)), topo)


class TestTransposeValues:
    def test_matches_explicit_materialization(self, rng):
        """§5.1.4: transpose-index traversal == explicit transpose."""
        topo = random_topology(rng, 5, 6, 4, 0.5)
        values = rng.standard_normal((topo.nnz_blocks, 4, 4))
        m = BlockSparseMatrix(topo, values)
        via_index = m.transpose_values()
        via_dense = BlockSparseMatrix.from_dense(
            m.to_dense().T, topo.transpose()
        ).values
        np.testing.assert_allclose(via_index, via_dense)

    def test_explicit_transpose_dense_equivalence(self, rng):
        topo = random_topology(rng, 4, 3, 4, 0.7)
        m = BlockSparseMatrix(topo, rng.standard_normal((topo.nnz_blocks, 4, 4)))
        np.testing.assert_allclose(m.explicit_transpose().to_dense(), m.to_dense().T)

    def test_transpose_does_not_copy_original(self, rng):
        topo = random_topology(rng, 4, 3, 4, 0.7)
        m = BlockSparseMatrix(topo, rng.standard_normal((topo.nnz_blocks, 4, 4)))
        before = m.values.copy()
        m.transpose_values()
        np.testing.assert_array_equal(m.values, before)

    def test_copy_independent(self, rng):
        topo = random_topology(rng, 3, 3, 4, 0.6)
        m = BlockSparseMatrix(topo, rng.standard_normal((topo.nnz_blocks, 4, 4)))
        c = m.copy()
        c.values[...] = 0
        assert np.abs(m.values).max() > 0 or topo.nnz_blocks == 0

import numpy as np
import pytest

from repro.sparse import BlockSparseMatrix, Topology, random_block_sparse
from repro.sparse.linalg import (
    add,
    density_profile,
    frobenius_norm,
    project,
    row_block_norms,
    scale,
)
from tests.conftest import random_topology


class TestAddScale:
    def test_add_matches_dense(self, rng):
        topo = random_topology(rng, 4, 4, 4, 0.5)
        a = random_block_sparse(topo, rng)
        b = random_block_sparse(topo, rng)
        np.testing.assert_allclose(
            add(a, b).to_dense(), a.to_dense() + b.to_dense()
        )

    def test_add_structural_topology_match(self, rng):
        mask = rng.random((3, 3)) < 0.5
        t1 = Topology.from_block_mask(mask, 4)
        t2 = Topology.from_block_mask(mask, 4)
        a = random_block_sparse(t1, rng)
        b = random_block_sparse(t2, rng)
        add(a, b)  # equal patterns, different instances: fine

    def test_add_mismatched_raises(self, rng):
        a = random_block_sparse(random_topology(rng, 3, 3, 4, 0.9), rng)
        b = random_block_sparse(random_topology(rng, 3, 3, 4, 0.1), rng)
        if a.topology != b.topology:
            with pytest.raises(ValueError):
                add(a, b)

    def test_scale(self, rng):
        a = random_block_sparse(random_topology(rng, 3, 3, 4, 0.5), rng)
        np.testing.assert_allclose(scale(a, -2.0).to_dense(), -2.0 * a.to_dense())


class TestNorms:
    def test_frobenius_matches_dense(self, rng):
        a = random_block_sparse(random_topology(rng, 4, 5, 4, 0.5), rng)
        assert frobenius_norm(a) == pytest.approx(np.linalg.norm(a.to_dense()))

    def test_row_block_norms(self, rng):
        topo = Topology.from_block_mask(np.array([[True, True], [False, False]]), 4)
        a = random_block_sparse(topo, rng)
        norms = row_block_norms(a)
        assert norms[1] == 0.0
        assert norms[0] == pytest.approx(np.linalg.norm(a.to_dense()[:4]))


class TestProject:
    def test_identity_projection(self, rng):
        topo = random_topology(rng, 4, 4, 4, 0.5)
        a = random_block_sparse(topo, rng)
        np.testing.assert_allclose(project(a, topo).to_dense(), a.to_dense())

    def test_projection_onto_superset_keeps_values(self, rng):
        small = Topology.from_block_mask(np.array([[True, False]]), 4)
        big = Topology.from_block_mask(np.array([[True, True]]), 4)
        a = random_block_sparse(small, rng)
        p = project(a, big)
        np.testing.assert_allclose(p.to_dense()[:, :4], a.to_dense()[:, :4])
        np.testing.assert_array_equal(p.to_dense()[:, 4:], 0.0)

    def test_projection_onto_subset_drops_values(self, rng):
        big = Topology.from_block_mask(np.array([[True, True]]), 4)
        small = Topology.from_block_mask(np.array([[False, True]]), 4)
        a = random_block_sparse(big, rng)
        p = project(a, small)
        np.testing.assert_allclose(p.to_dense()[:, 4:], a.to_dense()[:, 4:])

    def test_shape_mismatch_raises(self, rng):
        a = random_block_sparse(random_topology(rng, 2, 2, 4, 1.0), rng)
        with pytest.raises(ValueError):
            project(a, random_topology(rng, 3, 3, 4, 1.0))


class TestDensityProfile:
    def test_spy_string(self):
        topo = Topology.from_block_mask(
            np.array([[True, False], [False, True]]), 4
        )
        assert density_profile(topo) == "#.\n.#"

"""Block-sparse attention primitives: softmax and banded topologies."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.sparse import BlockSparseMatrix, Topology
from repro.sparse.attention_ops import (
    banded_causal_topology,
    causal_block_mask,
    sparse_causal_softmax,
)

BS = 4


class TestBandedTopology:
    def test_full_window_is_causal_lower_triangle(self):
        topo = banded_causal_topology(16, BS, window_blocks=4)
        mask = topo.to_block_mask()
        np.testing.assert_array_equal(mask, np.tril(np.ones((4, 4), dtype=bool)))

    def test_window_one_is_diagonal(self):
        topo = banded_causal_topology(16, BS, window_blocks=1)
        np.testing.assert_array_equal(topo.to_block_mask(), np.eye(4, dtype=bool))

    def test_band_width(self):
        topo = banded_causal_topology(24, BS, window_blocks=2)
        mask = topo.to_block_mask()
        assert mask[3, 2] and mask[3, 3]
        assert not mask[3, 1] and not mask[2, 3]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            banded_causal_topology(15, BS, 1)
        with pytest.raises(ValueError):
            banded_causal_topology(16, BS, 0)

    def test_nnz_linear_in_sequence(self):
        """Sparse attention cost is O(S * window), not O(S^2)."""
        t1 = banded_causal_topology(64, BS, window_blocks=2)
        t2 = banded_causal_topology(128, BS, window_blocks=2)
        assert t2.nnz_blocks < 2.2 * t1.nnz_blocks


class TestCausalBlockMask:
    def test_diagonal_block_is_lower_triangular(self):
        topo = banded_causal_topology(8, BS, 2)
        mask = causal_block_mask(topo, 0, np.array([0]))
        np.testing.assert_array_equal(mask[0], np.tril(np.ones((BS, BS), dtype=bool)))

    def test_past_block_fully_valid(self):
        topo = banded_causal_topology(8, BS, 2)
        mask = causal_block_mask(topo, 1, np.array([0]))
        assert mask.all()


class TestSparseCausalSoftmax:
    def _scores(self, rng, seq=16, window=4):
        topo = banded_causal_topology(seq, BS, window)
        values = rng.standard_normal((topo.nnz_blocks, BS, BS))
        return topo, values

    def test_rows_sum_to_one_over_valid_entries(self, rng):
        topo, values = self._scores(rng)
        out = sparse_causal_softmax(Tensor(values, dtype=np.float64), topo).data
        dense = BlockSparseMatrix(topo, out).to_dense()
        sums = dense.sum(axis=1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-10)

    def test_causal_entries_zero(self, rng):
        topo, values = self._scores(rng)
        out = sparse_causal_softmax(Tensor(values, dtype=np.float64), topo).data
        dense = BlockSparseMatrix(topo, out).to_dense()
        upper = np.triu_indices(topo.shape[0], k=1)
        np.testing.assert_array_equal(dense[upper], 0.0)

    def test_matches_dense_softmax_with_full_window(self, rng):
        seq = 16
        topo, values = self._scores(rng, seq=seq, window=seq // BS)
        scores_dense = BlockSparseMatrix(topo, values).to_dense()
        masked = np.where(
            np.tril(np.ones((seq, seq), dtype=bool)), scores_dense, -1e30
        )
        e = np.exp(masked - masked.max(axis=1, keepdims=True))
        want = e / e.sum(axis=1, keepdims=True)
        got = BlockSparseMatrix(
            topo,
            sparse_causal_softmax(Tensor(values, dtype=np.float64), topo).data,
        ).to_dense()
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_scale_applied_before_softmax(self, rng):
        topo, values = self._scores(rng)
        a = sparse_causal_softmax(Tensor(values, dtype=np.float64), topo, scale=0.5).data
        b = sparse_causal_softmax(
            Tensor(values * 0.5, dtype=np.float64), topo, scale=1.0
        ).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_gradients(self, rng):
        topo, values = self._scores(rng, seq=8, window=2)
        check_gradients(
            lambda v: sparse_causal_softmax(v, topo, scale=0.7), [values]
        )

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sparse import Topology, metadata_bytes
from tests.conftest import random_topology


class TestFromBlockMask:
    def test_roundtrip_mask(self, rng):
        mask = rng.random((4, 5)) < 0.5
        topo = Topology.from_block_mask(mask, 8)
        np.testing.assert_array_equal(topo.to_block_mask(), mask)

    def test_shape_in_elements(self):
        topo = Topology.from_block_mask(np.ones((3, 2), dtype=bool), 16)
        assert topo.shape == (48, 32)
        assert topo.block_rows == 3 and topo.block_cols == 2

    def test_empty_topology(self):
        topo = Topology.from_block_mask(np.zeros((3, 3), dtype=bool), 4)
        topo.validate()
        assert topo.nnz_blocks == 0
        assert topo.density == 0.0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Topology.from_block_mask(np.ones((2, 2, 2), dtype=bool), 4)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            Topology.from_block_mask(np.ones((2, 2), dtype=bool), 0)

    def test_nnz_and_density(self):
        mask = np.array([[1, 0], [1, 1]], dtype=bool)
        topo = Topology.from_block_mask(mask, 4)
        assert topo.nnz_blocks == 3
        assert topo.nnz == 3 * 16
        assert topo.density == 0.75


class TestBlockDiagonal:
    def test_variable_group_sizes(self):
        topo = Topology.block_diagonal(
            np.array([2, 0, 3]), np.array([2, 2, 2]), 4
        )
        topo.validate()
        mask = topo.to_block_mask()
        # Group 0: rows 0-1, cols 0-1; group 2: rows 2-4, cols 4-5.
        assert mask[:2, :2].all()
        assert mask[2:, 4:].all()
        assert not mask[:2, 2:].any()
        assert not mask[2:, :4].any()

    def test_matches_figure_3c_structure(self):
        """Variable row counts per expert, fixed ffn column count."""
        rows = np.array([1, 3, 2])
        topo = Topology.block_diagonal(rows, np.array([2, 2, 2]), 8)
        assert topo.nnz_blocks == (rows * 2).sum()

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Topology.block_diagonal(np.array([1, 2]), np.array([1]), 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Topology.block_diagonal(np.array([-1]), np.array([1]), 4)

    def test_all_empty_groups(self):
        topo = Topology.block_diagonal(np.array([0, 0]), np.array([2, 2]), 4)
        topo.validate()
        assert topo.nnz_blocks == 0
        assert topo.shape == (0, 16)


class TestDense:
    def test_fully_occupied(self):
        topo = Topology.dense(16, 8, 4)
        assert topo.density == 1.0
        topo.validate()

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            Topology.dense(17, 8, 4)


class TestTransposeMetadata:
    def test_transpose_indices_are_permutation(self, rng):
        topo = random_topology(rng, 6, 7, 4, 0.4)
        perm = topo.transpose_block_offsets
        assert sorted(perm) == list(range(topo.nnz_blocks))

    def test_transpose_ordering_col_major(self, rng):
        topo = random_topology(rng, 6, 7, 4, 0.4)
        perm = topo.transpose_block_offsets
        cols = topo.column_indices[perm]
        rows = topo.row_indices[perm]
        keys = list(zip(cols.tolist(), rows.tolist()))
        assert keys == sorted(keys)

    def test_transpose_topology_is_mask_transpose(self, rng):
        topo = random_topology(rng, 5, 4, 8, 0.5)
        np.testing.assert_array_equal(
            topo.transpose().to_block_mask(), topo.to_block_mask().T
        )

    def test_transpose_row_offsets_count_columns(self, rng):
        topo = random_topology(rng, 5, 4, 4, 0.6)
        counts = np.diff(topo.transpose_row_offsets)
        np.testing.assert_array_equal(
            counts, np.bincount(topo.column_indices, minlength=topo.block_cols)
        )

    def test_double_transpose_identity(self, rng):
        topo = random_topology(rng, 5, 4, 4, 0.6)
        assert topo.transpose().transpose() == topo


class TestValidateCatchesCorruption:
    def _valid(self, rng):
        return random_topology(rng, 4, 4, 4, 0.7)

    def test_valid_passes(self, rng):
        self._valid(rng).validate()

    def test_corrupt_row_offsets(self, rng):
        topo = self._valid(rng)
        topo.row_offsets[0] = 1
        with pytest.raises(ValueError):
            topo.validate()

    def test_corrupt_row_indices(self, rng):
        topo = self._valid(rng)
        if topo.nnz_blocks:
            topo.row_indices[0] = (topo.row_indices[0] + 1) % topo.block_rows
            with pytest.raises(ValueError):
                topo.validate()

    def test_corrupt_transpose_index(self, rng):
        topo = self._valid(rng)
        if topo.nnz_blocks >= 2:
            topo.transpose_block_offsets[[0, 1]] = topo.transpose_block_offsets[[1, 0]]
            with pytest.raises(ValueError):
                topo.validate()


class TestMetadataBytes:
    def test_metadata_much_smaller_than_values(self, rng):
        """§5.1.3: one index per 16384 values at 128x128 blocks."""
        topo = random_topology(rng, 4, 4, 128, 0.5)
        if topo.nnz_blocks:
            value_bytes = topo.nnz * 2  # fp16
            assert metadata_bytes(topo) < value_bytes / 100


@given(
    st.integers(1, 6),
    st.integers(1, 6),
    st.sampled_from([1, 2, 4, 8]),
    st.integers(0, 2**32 - 1),
)
def test_property_random_topology_invariants(br, bc, bs, seed):
    """All structural invariants hold for arbitrary random masks."""
    mask = np.random.default_rng(seed).random((br, bc)) < 0.5
    topo = Topology.from_block_mask(mask, bs)
    topo.validate()
    np.testing.assert_array_equal(topo.to_block_mask(), mask)
    assert topo.nnz_blocks == int(mask.sum())


@given(
    st.lists(st.integers(0, 4), min_size=1, max_size=6),
    st.integers(1, 3),
    st.sampled_from([2, 4]),
)
def test_property_block_diagonal_invariants(rows, cols_per, bs):
    """Block-diagonal construction is always structurally valid."""
    rows = np.asarray(rows)
    cols = np.full(len(rows), cols_per)
    topo = Topology.block_diagonal(rows, cols, bs)
    topo.validate()
    assert topo.nnz_blocks == int((rows * cols).sum())

"""The rejected alternatives compute identical results (§5.1.3-§5.1.4);
only their cost differs (modeled in repro.gpu.blocksparse)."""

import numpy as np

from repro.sparse import dsd, random_block_sparse, sdd
from repro.sparse.ablation import (
    dsd_explicit_transpose,
    sdd_csr_search,
    sdd_overlaunch,
)
from tests.conftest import random_topology

BS = 4


class TestSddVariantsAgree:
    def test_csr_search_equals_production(self, rng):
        topo = random_topology(rng, 5, 6, BS, 0.4)
        a = rng.standard_normal((topo.shape[0], 7))
        b = rng.standard_normal((7, topo.shape[1]))
        np.testing.assert_allclose(
            sdd_csr_search(a, b, topo).values, sdd(a, b, topo).values, atol=1e-12
        )

    def test_overlaunch_equals_production(self, rng):
        topo = random_topology(rng, 5, 6, BS, 0.4)
        a = rng.standard_normal((topo.shape[0], 7))
        b = rng.standard_normal((7, topo.shape[1]))
        np.testing.assert_allclose(
            sdd_overlaunch(a, b, topo).values, sdd(a, b, topo).values, atol=1e-12
        )

    def test_high_sparsity_like_64_experts(self, rng):
        """At MoE sparsity (density 1/num_experts) everything still agrees."""
        from repro.sparse import Topology

        topo = Topology.block_diagonal(
            np.array([1] * 8), np.array([1] * 8), BS
        )  # density 1/8
        a = rng.standard_normal((topo.shape[0], 5))
        b = rng.standard_normal((5, topo.shape[1]))
        np.testing.assert_allclose(
            sdd_overlaunch(a, b, topo).values, sdd(a, b, topo).values, atol=1e-12
        )


class TestTransposeVariantsAgree:
    def test_explicit_transpose_equals_secondary_index(self, rng):
        topo = random_topology(rng, 5, 4, BS, 0.5)
        s = random_block_sparse(topo, rng)
        b = rng.standard_normal((topo.shape[0], 6))
        np.testing.assert_allclose(
            dsd_explicit_transpose(s, b), dsd(s, b, trans_s=True), atol=1e-12
        )

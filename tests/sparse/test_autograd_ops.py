"""Gradient correctness for the autograd-wrapped kernels: the backward
passes must issue exactly the right transposed products (§5.1)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, relu
from repro.sparse import (
    BlockSparseMatrix,
    Topology,
    dds,
    dds_mm,
    dsd,
    dsd_mm,
    sdd,
    sdd_mm,
    sparse_bias_add,
)
from tests.conftest import random_topology

BS = 4


class TestSddMM:
    def test_forward_matches_kernel(self, rng):
        topo = random_topology(rng, 4, 5, BS, 0.5)
        x = rng.standard_normal((topo.shape[0], 6))
        w = rng.standard_normal((6, topo.shape[1]))
        out = sdd_mm(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64), topo)
        np.testing.assert_allclose(out.data, sdd(x, w, topo).values)

    def test_gradients(self, rng):
        topo = random_topology(rng, 3, 4, BS, 0.6)
        x = rng.standard_normal((topo.shape[0], 5))
        w = rng.standard_normal((5, topo.shape[1]))
        check_gradients(lambda a, b: sdd_mm(a, b, topo), [x, w])

    def test_gradients_empty_rows(self, rng):
        mask = np.zeros((3, 2), dtype=bool)
        mask[0] = True
        topo = Topology.from_block_mask(mask, BS)
        x = rng.standard_normal((topo.shape[0], 5))
        w = rng.standard_normal((5, topo.shape[1]))
        check_gradients(lambda a, b: sdd_mm(a, b, topo), [x, w])


class TestDsdMM:
    def test_forward_matches_kernel(self, rng):
        topo = random_topology(rng, 4, 5, BS, 0.5)
        values = rng.standard_normal((topo.nnz_blocks, BS, BS))
        w = rng.standard_normal((topo.shape[1], 3))
        out = dsd_mm(Tensor(values, dtype=np.float64), Tensor(w, dtype=np.float64), topo)
        np.testing.assert_allclose(
            out.data, dsd(BlockSparseMatrix(topo, values), w)
        )

    def test_gradients(self, rng):
        topo = random_topology(rng, 3, 4, BS, 0.6)
        values = rng.standard_normal((topo.nnz_blocks, BS, BS))
        w = rng.standard_normal((topo.shape[1], 3))
        check_gradients(lambda v, b: dsd_mm(v, b, topo), [values, w])


class TestDdsMM:
    def test_forward_matches_kernel(self, rng):
        topo = random_topology(rng, 4, 5, BS, 0.5)
        a = rng.standard_normal((6, topo.shape[0]))
        values = rng.standard_normal((topo.nnz_blocks, BS, BS))
        out = dds_mm(Tensor(a, dtype=np.float64), Tensor(values, dtype=np.float64), topo)
        np.testing.assert_allclose(out.data, dds(a, BlockSparseMatrix(topo, values)))

    def test_gradients(self, rng):
        topo = random_topology(rng, 3, 4, BS, 0.6)
        a = rng.standard_normal((5, topo.shape[0]))
        values = rng.standard_normal((topo.nnz_blocks, BS, BS))
        check_gradients(lambda aa, vv: dds_mm(aa, vv, topo), [a, values])


class TestSparseBiasAdd:
    def test_gradients(self, rng):
        topo = random_topology(rng, 3, 4, BS, 0.6)
        values = rng.standard_normal((topo.nnz_blocks, BS, BS))
        bias = rng.standard_normal(topo.shape[1])
        check_gradients(lambda v, b: sparse_bias_add(v, b, topo), [values, bias])


class TestTwoLayerExpertStack:
    """The full Figure-6 compute path: SDD -> act -> DSD, end to end."""

    def test_full_pipeline_gradients(self, rng):
        topo = Topology.block_diagonal(np.array([1, 2]), np.array([2, 2]), BS)
        m, n = topo.shape
        x = rng.standard_normal((m, 6))
        w1 = rng.standard_normal((6, n))
        b1 = rng.standard_normal(n)
        w2 = rng.standard_normal((n, 6))

        def pipeline(x, w1, b1, w2):
            h = sdd_mm(x, w1, topo)
            h = sparse_bias_add(h, b1, topo)
            h = relu(h)
            return dsd_mm(h, w2, topo)

        check_gradients(pipeline, [x, w1, b1, w2])

    def test_pipeline_matches_dense_per_expert(self, rng):
        """Block-diagonal SDD->DSD equals running each expert densely."""
        topo = Topology.block_diagonal(np.array([2, 1]), np.array([1, 1]), BS)
        m, n = topo.shape
        x = rng.standard_normal((m, 3))
        w1 = rng.standard_normal((3, n))
        w2 = rng.standard_normal((n, 3))
        h = sdd_mm(Tensor(x, dtype=np.float64), Tensor(w1, dtype=np.float64), topo)
        y = dsd_mm(h, Tensor(w2, dtype=np.float64), topo).data
        # Expert 0: token rows 0:2*BS use w1[:, :BS], w2[:BS].
        e0 = (x[: 2 * BS] @ w1[:, :BS]) @ w2[:BS]
        e1 = (x[2 * BS :] @ w1[:, BS:]) @ w2[BS:]
        np.testing.assert_allclose(y[: 2 * BS], e0, atol=1e-10)
        np.testing.assert_allclose(y[2 * BS :], e1, atol=1e-10)

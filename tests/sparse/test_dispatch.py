"""Grouped-GEMM dispatch layer: structure detection, path equivalence
against both the per-block kernels and the dense references, dtype
threading, and the stats counters."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sparse import (
    BlockSparseMatrix,
    Topology,
    dds,
    dispatch,
    dispatch_mode,
    dsd,
    random_block_sparse,
    sdd,
    stats,
)
from repro.sparse.reference import dds_reference, dsd_reference, sdd_reference
from tests.conftest import random_topology

BS = 4


def _block_diag(rows, cols=None, bs=BS):
    rows = np.asarray(rows)
    cols = np.full(len(rows), 2) if cols is None else np.asarray(cols)
    return Topology.block_diagonal(rows, cols, bs)


# ----------------------------------------------------------------------
# Structure detection
# ----------------------------------------------------------------------
class TestAnalyze:
    def test_block_diagonal_uniform(self):
        topo = _block_diag([2, 3, 1])
        plan = dispatch.analyze(topo)
        assert plan is not None
        assert plan.num_groups == 3
        assert plan.cols_disjoint
        np.testing.assert_array_equal(plan.row_start, [0, 2, 5])
        np.testing.assert_array_equal(plan.row_count, [2, 3, 1])
        np.testing.assert_array_equal(plan.col_start, [0, 2, 4])
        np.testing.assert_array_equal(plan.col_count, [2, 2, 2])
        np.testing.assert_array_equal(plan.val_start, [0, 4, 10])
        assert plan.nnz_blocks == topo.nnz_blocks

    def test_empty_experts_are_skipped(self):
        topo = _block_diag([2, 0, 3, 0])
        plan = dispatch.analyze(topo)
        assert plan.num_groups == 2
        np.testing.assert_array_equal(plan.row_start, [0, 2])
        # Empty experts still consume a column range, so the occupied
        # groups' column starts skip over them.
        np.testing.assert_array_equal(plan.col_start, [0, 4])
        assert plan.cols_disjoint

    def test_variable_column_widths(self):
        topo = _block_diag([1, 2, 1], [3, 1, 2])
        plan = dispatch.analyze(topo)
        assert plan.num_groups == 3
        np.testing.assert_array_equal(plan.col_count, [3, 1, 2])
        assert plan.cols_disjoint

    def test_empty_topology_has_no_plan(self):
        topo = Topology.from_block_mask(np.zeros((2, 2), dtype=bool), BS)
        assert dispatch.analyze(topo) is None

    def test_non_contiguous_rows_have_no_plan(self):
        mask = np.array([[True, False, True], [False, True, False]])
        assert dispatch.analyze(Topology.from_block_mask(mask, BS)) is None

    def test_banded_pattern_groups_per_row(self):
        # Shifting contiguous ranges: valid groups, overlapping columns.
        mask = np.array(
            [
                [True, True, False, False],
                [False, True, True, False],
                [False, False, True, True],
            ]
        )
        plan = dispatch.analyze(Topology.from_block_mask(mask, BS))
        assert plan is not None
        assert plan.num_groups == 3
        assert not plan.cols_disjoint

    def test_dense_matrix_is_one_group(self):
        plan = dispatch.analyze(Topology.dense(3 * BS, 2 * BS, BS))
        assert plan.num_groups == 1
        assert plan.cols_disjoint

    def test_plan_is_cached_per_topology(self):
        topo = _block_diag([1, 1])
        assert dispatch.analyze(topo) is dispatch.analyze(topo)

    def test_duplicate_column_ranges_not_disjoint(self):
        # Two stacked row groups over the same columns must not take the
        # scatter-free trans_s path (their outputs would overwrite).
        mask = np.array([[True, True], [True, True]])
        topo = Topology.from_block_mask(mask, BS)
        plan = dispatch.analyze(topo)
        assert plan.num_groups == 1  # merged: identical ranges, adjacent rows
        mask = np.ones((2, 1), dtype=bool)
        mask_t = Topology.from_block_mask(mask, BS)
        assert dispatch.analyze(mask_t).num_groups == 1


class TestModeControl:
    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            dispatch.set_mode("fastest")

    def test_dispatch_mode_restores(self):
        prev = dispatch.get_mode()
        with dispatch_mode("blocked"):
            assert dispatch.get_mode() == "blocked"
        assert dispatch.get_mode() == prev

    def test_auto_skips_fine_grained_groups(self):
        # Single-block groups: below MIN_BLOCKS_PER_GROUP, auto falls back.
        topo = _block_diag([1, 1, 1], [1, 1, 1])
        plan = dispatch.analyze(topo)
        assert plan.mean_blocks_per_group == 1.0
        assert not dispatch.use_grouped(plan, needs_disjoint_cols=False)
        with dispatch_mode("grouped"):
            assert dispatch.use_grouped(plan, needs_disjoint_cols=False)


# ----------------------------------------------------------------------
# Equivalence: grouped path vs per-block path vs dense reference, for
# every transpose variant, on MoE-shaped (ragged) topologies.
# ----------------------------------------------------------------------
RAGGED_CASES = [
    np.array([2, 3, 1]),        # non-uniform groups
    np.array([2, 0, 3]),        # empty expert in the middle
    np.array([0, 0, 4]),        # leading empty experts
    np.array([1, 1, 1, 1]),     # single-block experts
    np.array([5]),              # one expert owns everything
]


@pytest.mark.parametrize("rows", RAGGED_CASES, ids=lambda r: "-".join(map(str, r)))
class TestGroupedEquivalence:
    def _topo(self, rows):
        return _block_diag(rows, np.full(len(rows), 2))

    @pytest.mark.parametrize("trans_a", [False, True])
    @pytest.mark.parametrize("trans_b", [False, True])
    def test_sdd(self, rng, rows, trans_a, trans_b):
        topo = self._topo(rows)
        m, n = topo.shape
        a = rng.standard_normal((7, m) if trans_a else (m, 7))
        b = rng.standard_normal((n, 7) if trans_b else (7, n))
        with dispatch_mode("grouped"):
            got = sdd(a, b, topo, trans_a=trans_a, trans_b=trans_b)
        with dispatch_mode("blocked"):
            blocked = sdd(a, b, topo, trans_a=trans_a, trans_b=trans_b)
        want = sdd_reference(a, b, topo, trans_a=trans_a, trans_b=trans_b)
        np.testing.assert_allclose(got.values, want.values, atol=1e-12)
        np.testing.assert_allclose(got.values, blocked.values, atol=1e-12)

    @pytest.mark.parametrize("trans_s", [False, True])
    @pytest.mark.parametrize("trans_b", [False, True])
    def test_dsd(self, rng, rows, trans_s, trans_b):
        topo = self._topo(rows)
        s = random_block_sparse(topo, rng)
        m, n = topo.shape
        k = m if trans_s else n
        b = rng.standard_normal((9, k) if trans_b else (k, 9))
        with dispatch_mode("grouped"):
            got = dsd(s, b, trans_s=trans_s, trans_b=trans_b)
        with dispatch_mode("blocked"):
            blocked = dsd(s, b, trans_s=trans_s, trans_b=trans_b)
        want = dsd_reference(s, b, trans_s=trans_s, trans_b=trans_b)
        np.testing.assert_allclose(got, want, atol=1e-12)
        np.testing.assert_allclose(got, blocked, atol=1e-12)

    @pytest.mark.parametrize("trans_a", [False, True])
    @pytest.mark.parametrize("trans_s", [False, True])
    def test_dds(self, rng, rows, trans_a, trans_s):
        topo = self._topo(rows)
        s = random_block_sparse(topo, rng)
        m, n = topo.shape
        k = n if trans_s else m
        a = rng.standard_normal((k, 9) if trans_a else (9, k))
        with dispatch_mode("grouped"):
            got = dds(a, s, trans_a=trans_a, trans_s=trans_s)
        with dispatch_mode("blocked"):
            blocked = dds(a, s, trans_a=trans_a, trans_s=trans_s)
        want = dds_reference(a, s, trans_a=trans_a, trans_s=trans_s)
        np.testing.assert_allclose(got, want, atol=1e-12)
        np.testing.assert_allclose(got, blocked, atol=1e-12)


@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=5),
    st.lists(st.integers(1, 3), min_size=1, max_size=5),
    st.integers(0, 2**31 - 1),
)
def test_property_grouped_equals_blocked(rows, cols, seed):
    """Both dispatch paths agree on arbitrary ragged block-diagonal
    topologies across all eight op variants."""
    rng = np.random.default_rng(seed)
    n_groups = min(len(rows), len(cols))
    rows, cols = np.asarray(rows[:n_groups]), np.asarray(cols[:n_groups])
    topo = Topology.block_diagonal(rows, cols, 2)
    if topo.nnz_blocks == 0 or topo.shape[1] == 0:
        return
    m, n = topo.shape
    s = random_block_sparse(topo, rng)
    a = rng.standard_normal((m, 3))
    b = rng.standard_normal((3, n))
    d_m = rng.standard_normal((m, 4))
    d_n = rng.standard_normal((n, 4))
    with dispatch_mode("grouped"):
        g = [
            sdd(a, b, topo).values,
            dsd(s, d_n),
            dsd(s, d_m, trans_s=True),
            dds(d_n.T, s, trans_s=True),
            dds(d_m.T, s),
        ]
    with dispatch_mode("blocked"):
        p = [
            sdd(a, b, topo).values,
            dsd(s, d_n),
            dsd(s, d_m, trans_s=True),
            dds(d_n.T, s, trans_s=True),
            dds(d_m.T, s),
        ]
    for got, want in zip(g, p):
        np.testing.assert_allclose(got, want, atol=1e-10)


# ----------------------------------------------------------------------
# Dtype threading: float32 in -> float32 out across all eight variants,
# on both dispatch paths.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["grouped", "blocked"])
class TestDtypeThreading:
    def _topo(self):
        return _block_diag([2, 1, 2])

    def test_sdd_all_variants_stay_float32(self, rng, mode):
        topo = self._topo()
        m, n = topo.shape
        for ta in (False, True):
            for tb in (False, True):
                a = rng.standard_normal((7, m) if ta else (m, 7)).astype(np.float32)
                b = rng.standard_normal((n, 7) if tb else (7, n)).astype(np.float32)
                with dispatch_mode(mode):
                    out = sdd(a, b, topo, trans_a=ta, trans_b=tb)
                assert out.values.dtype == np.float32, (ta, tb)

    def test_dsd_all_variants_stay_float32(self, rng, mode):
        topo = self._topo()
        s = BlockSparseMatrix(
            topo, random_block_sparse(topo, rng).values.astype(np.float32)
        )
        m, n = topo.shape
        for ts in (False, True):
            for tb in (False, True):
                k = m if ts else n
                b = rng.standard_normal((9, k) if tb else (k, 9)).astype(np.float32)
                with dispatch_mode(mode):
                    out = dsd(s, b, trans_s=ts, trans_b=tb)
                assert out.dtype == np.float32, (ts, tb)

    def test_dds_all_variants_stay_float32(self, rng, mode):
        topo = self._topo()
        s = BlockSparseMatrix(
            topo, random_block_sparse(topo, rng).values.astype(np.float32)
        )
        m, n = topo.shape
        for ta in (False, True):
            for ts in (False, True):
                k = n if ts else m
                a = rng.standard_normal((k, 9) if ta else (9, k)).astype(np.float32)
                with dispatch_mode(mode):
                    out = dds(a, s, trans_a=ta, trans_s=ts)
                assert out.dtype == np.float32, (ta, ts)

    def test_explicit_dtype_override(self, rng, mode):
        topo = self._topo()
        m, n = topo.shape
        a = rng.standard_normal((m, 7))
        b = rng.standard_normal((7, n))
        with dispatch_mode(mode):
            assert sdd(a, b, topo, dtype=np.float32).values.dtype == np.float32
            s = random_block_sparse(topo, rng)
            assert dsd(s, rng.standard_normal((n, 3)), dtype=np.float32).dtype == np.float32
            assert dds(rng.standard_normal((3, m)), s, dtype=np.float32).dtype == np.float32

    def test_mixed_inputs_use_result_type(self, rng, mode):
        topo = self._topo()
        m, n = topo.shape
        a = rng.standard_normal((m, 7)).astype(np.float32)
        b = rng.standard_normal((7, n))  # float64
        with dispatch_mode(mode):
            assert sdd(a, b, topo).values.dtype == np.float64


# ----------------------------------------------------------------------
# Stats counters
# ----------------------------------------------------------------------
class TestStats:
    def test_paths_and_flops_are_recorded(self, rng):
        topo = _block_diag([2, 2])
        m, n = topo.shape
        a = rng.standard_normal((m, 5))
        b = rng.standard_normal((5, n))
        stats.reset()
        with dispatch_mode("grouped"):
            h = sdd(a, b, topo)
        with dispatch_mode("blocked"):
            dsd(h, rng.standard_normal((n, 3)))
        snap = stats.snapshot()
        assert snap["ops"]["sdd"]["grouped"] == 1
        assert snap["ops"]["dsd"]["blocked"] == 1
        assert snap["flops"]["sdd"] == 2 * topo.nnz * 5
        assert snap["flops"]["dsd"] == 2 * topo.nnz * 3
        assert stats.grouped_fraction("sdd") == 1.0
        assert stats.grouped_fraction() == 0.5
        assert "sdd" in stats.summary()

    def test_reset_zeroes_everything(self, rng):
        stats.record_op("sdd", stats.PATH_GROUPED, 100)
        stats.record_cache("hits")
        stats.reset()
        snap = stats.snapshot()
        assert snap["ops"] == {} and snap["flops"] == {}
        assert snap["cache"] == {"hits": 0, "misses": 0, "evictions": 0}
        assert stats.total_flops() == 0
        assert stats.cache_hit_rate() == 0.0

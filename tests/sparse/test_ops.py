"""Kernel correctness: every op/transpose variant against the dense
reference, over random topologies (the §5.1 product table)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sparse import (
    BlockSparseMatrix,
    Topology,
    add_bias_columns,
    dds,
    dsd,
    map_values,
    random_block_sparse,
    sdd,
)
from repro.sparse.reference import dds_reference, dsd_reference, sdd_reference
from tests.conftest import random_topology

BS = 4


def _operands_sdd(rng, topo, k, trans_a, trans_b):
    m, n = topo.shape
    a = rng.standard_normal((k, m) if trans_a else (m, k))
    b = rng.standard_normal((n, k) if trans_b else (k, n))
    return a, b


class TestSDD:
    @pytest.mark.parametrize("trans_a", [False, True])
    @pytest.mark.parametrize("trans_b", [False, True])
    def test_matches_reference(self, rng, trans_a, trans_b):
        topo = random_topology(rng, 5, 6, BS, 0.5)
        a, b = _operands_sdd(rng, topo, 7, trans_a, trans_b)
        got = sdd(a, b, topo, trans_a=trans_a, trans_b=trans_b)
        want = sdd_reference(a, b, topo, trans_a=trans_a, trans_b=trans_b)
        np.testing.assert_allclose(got.values, want.values, atol=1e-12)

    def test_inner_dim_need_not_be_block_multiple(self, rng):
        topo = random_topology(rng, 3, 3, BS, 0.7)
        a, b = _operands_sdd(rng, topo, 5, False, False)
        got = sdd(a, b, topo)
        np.testing.assert_allclose(
            got.values, sdd_reference(a, b, topo).values, atol=1e-12
        )

    def test_empty_topology(self, rng):
        topo = Topology.from_block_mask(np.zeros((2, 2), dtype=bool), BS)
        a, b = _operands_sdd(rng, topo, 4, False, False)
        assert sdd(a, b, topo).values.shape == (0, BS, BS)

    def test_shape_mismatch_raises(self, rng):
        topo = random_topology(rng, 3, 3, BS, 0.7)
        with pytest.raises(ValueError):
            sdd(np.zeros((topo.shape[0] + BS, 4)), np.zeros((4, topo.shape[1])), topo)

    def test_inner_mismatch_raises(self, rng):
        topo = random_topology(rng, 3, 3, BS, 0.7)
        with pytest.raises(ValueError):
            sdd(np.zeros((topo.shape[0], 4)), np.zeros((5, topo.shape[1])), topo)

    def test_only_sampled_blocks_computed(self, rng):
        """SDD output is exactly the dense product masked by topology."""
        topo = random_topology(rng, 4, 4, BS, 0.3)
        a, b = _operands_sdd(rng, topo, 6, False, False)
        from repro.sparse import element_mask

        dense = np.where(element_mask(topo), a @ b, 0.0)
        np.testing.assert_allclose(sdd(a, b, topo).to_dense(), dense, atol=1e-12)


class TestDSD:
    @pytest.mark.parametrize("trans_s", [False, True])
    @pytest.mark.parametrize("trans_b", [False, True])
    def test_matches_reference(self, rng, trans_s, trans_b):
        topo = random_topology(rng, 5, 6, BS, 0.5)
        s = random_block_sparse(topo, rng)
        m, n = topo.shape
        k = m if trans_s else n
        b = rng.standard_normal((9, k) if trans_b else (k, 9))
        got = dsd(s, b, trans_s=trans_s, trans_b=trans_b)
        np.testing.assert_allclose(
            got, dsd_reference(s, b, trans_s=trans_s, trans_b=trans_b), atol=1e-12
        )

    def test_empty_rows_give_zero_output(self, rng):
        mask = np.zeros((3, 2), dtype=bool)
        mask[1] = True  # only middle block-row occupied
        topo = Topology.from_block_mask(mask, BS)
        s = random_block_sparse(topo, rng)
        out = dsd(s, rng.standard_normal((topo.shape[1], 5)))
        assert np.all(out[:BS] == 0) and np.all(out[2 * BS :] == 0)
        assert np.abs(out[BS : 2 * BS]).max() > 0

    def test_inner_mismatch_raises(self, rng):
        topo = random_topology(rng, 3, 3, BS, 0.7)
        s = random_block_sparse(topo, rng)
        with pytest.raises(ValueError):
            dsd(s, np.zeros((topo.shape[1] + 1, 4)))

    def test_empty_topology_zero_output(self, rng):
        topo = Topology.from_block_mask(np.zeros((2, 3), dtype=bool), BS)
        s = BlockSparseMatrix.zeros(topo)
        out = dsd(s, rng.standard_normal((topo.shape[1], 4)))
        assert out.shape == (topo.shape[0], 4)
        assert np.all(out == 0)


class TestDDS:
    @pytest.mark.parametrize("trans_a", [False, True])
    @pytest.mark.parametrize("trans_s", [False, True])
    def test_matches_reference(self, rng, trans_a, trans_s):
        topo = random_topology(rng, 5, 6, BS, 0.5)
        s = random_block_sparse(topo, rng)
        m, n = topo.shape
        k = n if trans_s else m
        a = rng.standard_normal((k, 9) if trans_a else (9, k))
        got = dds(a, s, trans_a=trans_a, trans_s=trans_s)
        np.testing.assert_allclose(
            got, dds_reference(a, s, trans_a=trans_a, trans_s=trans_s), atol=1e-12
        )

    def test_inner_mismatch_raises(self, rng):
        topo = random_topology(rng, 3, 3, BS, 0.7)
        s = random_block_sparse(topo, rng)
        with pytest.raises(ValueError):
            dds(np.zeros((4, topo.shape[0] + 1)), s)


class TestValueHelpers:
    def test_map_values(self, rng):
        topo = random_topology(rng, 3, 4, BS, 0.6)
        s = random_block_sparse(topo, rng)
        doubled = map_values(s, lambda v: 2 * v)
        np.testing.assert_allclose(doubled.to_dense(), 2 * s.to_dense())

    def test_add_bias_columns(self, rng):
        topo = random_topology(rng, 3, 4, BS, 0.6)
        s = random_block_sparse(topo, rng)
        bias = rng.standard_normal(topo.shape[1])
        out = add_bias_columns(s, bias)
        from repro.sparse import element_mask

        want = np.where(element_mask(topo), s.to_dense() + bias, 0.0)
        np.testing.assert_allclose(out.to_dense(), want, atol=1e-12)

    def test_add_bias_shape_check(self, rng):
        topo = random_topology(rng, 3, 4, BS, 0.6)
        s = random_block_sparse(topo, rng)
        with pytest.raises(ValueError):
            add_bias_columns(s, np.zeros(topo.shape[1] + 1))


class TestMoEShapedTopologies:
    """The kernels on the exact Figure-3C structures the dMoE produces."""

    def test_block_diagonal_expert_computation(self, rng):
        # 3 experts with 2/0/3 padded token blocks, ffn = 2 blocks wide.
        topo = Topology.block_diagonal(np.array([2, 0, 3]), np.array([2, 2, 2]), BS)
        m, n = topo.shape
        x = rng.standard_normal((m, 6))
        w1 = rng.standard_normal((6, n))
        h = sdd(x, w1, topo)
        np.testing.assert_allclose(
            h.values, sdd_reference(x, w1, topo).values, atol=1e-12
        )
        w2 = rng.standard_normal((n, 6))
        y = dsd(h, w2)
        np.testing.assert_allclose(y, dsd_reference(h, w2), atol=1e-12)

    def test_block_diagonal_is_per_expert_matmul(self, rng):
        """Each expert's output only depends on its own weight slice."""
        topo = Topology.block_diagonal(np.array([1, 1]), np.array([1, 1]), BS)
        x = rng.standard_normal((2 * BS, 3))
        w = rng.standard_normal((3, 2 * BS))
        h = sdd(x, w, topo).to_dense()
        # Expert 0: rows 0:BS x cols 0:BS from w[:, :BS] only.
        np.testing.assert_allclose(h[:BS, :BS], x[:BS] @ w[:, :BS], atol=1e-12)
        np.testing.assert_allclose(h[BS:, BS:], x[BS:] @ w[:, BS:], atol=1e-12)
        assert np.all(h[:BS, BS:] == 0)


@given(
    st.integers(1, 4),
    st.integers(1, 4),
    st.floats(0.1, 1.0),
    st.integers(0, 2**31 - 1),
)
def test_property_sdd_dsd_roundtrip_identity(br, bc, density, seed):
    """DSD(SDD(x, I), I) restricted to occupied rows reproduces x-masked
    products: composing the kernels agrees with dense composition."""
    rng = np.random.default_rng(seed)
    mask = rng.random((br, bc)) < density
    if not mask.any():
        return
    topo = Topology.from_block_mask(mask, 2)
    m, n = topo.shape
    x = rng.standard_normal((m, 3))
    w1 = rng.standard_normal((3, n))
    w2 = rng.standard_normal((n, 5))
    h = sdd(x, w1, topo)
    got = dsd(h, w2)
    want = h.to_dense() @ w2
    np.testing.assert_allclose(got, want, atol=1e-10)


@given(st.integers(0, 2**31 - 1))
def test_property_all_transpose_paths_consistent(seed):
    """A^T paths equal materialized transposes for every kernel."""
    rng = np.random.default_rng(seed)
    mask = rng.random((3, 4)) < 0.5
    topo = Topology.from_block_mask(mask, 2)
    s = random_block_sparse(topo, rng)
    m, n = topo.shape
    b = rng.standard_normal((m, 3))
    np.testing.assert_allclose(
        dsd(s, b, trans_s=True), s.to_dense().T @ b, atol=1e-10
    )
    a = rng.standard_normal((3, n))
    np.testing.assert_allclose(
        dds(a, s, trans_s=True), a @ s.to_dense().T, atol=1e-10
    )

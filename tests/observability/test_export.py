"""Exporters: Chrome-trace schema, step tables, JSONL run logs."""

import json

import pytest

from repro.observability.export import (
    chrome_trace,
    format_step_table,
    phase_rows,
    save_chrome_trace,
    step_rows_from_trace,
    step_table,
    validate_chrome_trace,
    write_jsonl,
)
from repro.observability.tracing import Tracer
from repro.training.metrics import TrainingRecord


def make_tracer(steps: int = 3) -> Tracer:
    t = Tracer()
    for i in range(steps):
        with t.span("step", {"step": i}):
            with t.span("forward"):
                with t.span("moe"):
                    with t.span("sdd"):
                        pass
            with t.span("backward"):
                pass
            with t.span("optimizer"):
                pass
        t.sample("tape_nodes", 100 + i)
    return t


class TestChromeTrace:
    def test_schema_valid(self):
        trace = chrome_trace(make_tracer())
        events = validate_chrome_trace(trace)
        # 3 steps x 5 spans each (step/forward/moe/sdd/backward/optimizer
        # minus... count exactly): step, forward, moe, sdd, backward,
        # optimizer = 6 complete events per step.
        assert len(events) == 3 * 6

    def test_complete_event_fields(self):
        trace = chrome_trace(make_tracer(1))
        ev = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert set(("name", "cat", "ph", "ts", "dur", "pid", "tid")) <= set(ev)
        assert ev["args"]["path"].startswith("step")
        assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0

    def test_counter_events_emitted(self):
        trace = chrome_trace(make_tracer())
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 3
        assert counters[0]["name"] == "tape_nodes"
        assert counters[0]["args"]["value"] == 100

    def test_validator_rejects_missing_dur(self):
        trace = chrome_trace(make_tracer(1))
        for ev in trace["traceEvents"]:
            if ev["ph"] == "X":
                del ev["dur"]
                break
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(trace)

    def test_validator_rejects_partial_overlap(self):
        trace = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0,
                 "pid": 0, "tid": 0},
                {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0,
                 "pid": 0, "tid": 0},
            ]
        }
        with pytest.raises(ValueError, match="strictly nested"):
            validate_chrome_trace(trace)

    def test_save_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        saved = save_chrome_trace(path, make_tracer())
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded == saved
        validate_chrome_trace(loaded)


class TestStepTable:
    def test_rows_per_step(self):
        t = make_tracer(4)
        rows = phase_rows(t)
        assert len(rows) == 4
        assert set(rows[0]) == {"_total", "forward", "backward", "optimizer"}
        # Direct children only: moe/sdd are nested under forward.
        assert "moe" not in rows[0] and "sdd" not in rows[0]

    def test_table_text(self):
        text = step_table(make_tracer())
        assert "forward" in text and "(other)" in text
        assert "3 steps" in text

    def test_empty(self):
        assert "no 'step' spans" in step_table(Tracer())

    def test_rows_from_trace_match_live(self):
        t = make_tracer(3)
        live = phase_rows(t)
        from_file = step_rows_from_trace(chrome_trace(t))
        assert len(live) == len(from_file)
        for a, b in zip(live, from_file):
            assert set(a) == set(b)
            for k in a:
                assert a[k] == pytest.approx(b[k], abs=5e-6)

    def test_format_from_trace_rows(self):
        t = make_tracer(3)
        text = format_step_table(step_rows_from_trace(chrome_trace(t)))
        assert "forward" in text


class TestJsonl:
    def test_write_jsonl_dataclasses(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        records = [
            TrainingRecord(step=0, tokens=10, loss=2.0),
            TrainingRecord(
                step=1, tokens=20, loss=1.5,
                step_time=0.01, phase_times={"forward": 0.005},
            ),
        ]
        n = write_jsonl(path, records)
        assert n == 2
        lines = [json.loads(l) for l in open(path)]
        assert lines[0]["step"] == 0 and lines[0]["val_loss"] is None
        assert lines[1]["phase_times"] == {"forward": 0.005}

    def test_run_log_incremental(self, tmp_path):
        from repro.observability.export import JsonlRunLog

        path = str(tmp_path / "log.jsonl")
        log = JsonlRunLog(path)
        log.write({"step": 0})
        log.write(TrainingRecord(step=1, tokens=1, loss=1.0))
        log.close(final={"done": True})
        lines = [json.loads(l) for l in open(path)]
        assert len(lines) == 3
        assert lines[-1] == {"done": True}
        assert log.records_written == 3

    def test_numpy_values_serializable(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "np.jsonl")
        write_jsonl(path, [{"a": np.float64(1.5), "b": np.arange(3)}])
        line = json.loads(open(path).read())
        assert line == {"a": 1.5, "b": [0, 1, 2]}

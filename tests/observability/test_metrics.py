"""MetricsRegistry: instruments, percentiles, source absorption."""

import numpy as np
import pytest

from repro.autograd import stats as ag_stats
from repro.observability.metrics import (
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.resilience import counters as res_counters
from repro.sparse import stats as sp_stats


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("steps")
        c.inc()
        c.inc(4)
        assert reg.counter("steps").value == 5
        assert reg.counter("steps") is c

    def test_gauge_holds_last(self):
        reg = MetricsRegistry()
        reg.gauge("pool").set(3.5)
        reg.gauge("pool").set(1.0)
        assert reg.gauge("pool").value == 1.0

    def test_histogram_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.percentile(50) == pytest.approx(50.5)
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]

    def test_histogram_empty_summary(self):
        s = Histogram().summary()
        assert s["count"] == 0 and s["p99"] == 0.0

    def test_histogram_decimates_past_cap(self):
        h = Histogram(max_samples=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count <= 8
        # Percentiles stay representative of the full range.
        assert h.percentile(100) >= 90.0


class TestRegistry:
    def test_snapshot_is_deep_copy(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        snap = reg.snapshot()
        snap["counters"]["a"] = 999
        assert reg.counter("a").value == 1

    def test_sources_absorbed_and_reset(self):
        events = {"n": 0}
        reg = MetricsRegistry()
        reg.register_source(
            "fake",
            lambda: {"n": events["n"]},
            lambda: events.update(n=0),
        )
        events["n"] = 3
        assert reg.snapshot()["sources"]["fake"] == {"n": 3}
        reg.reset()
        assert events["n"] == 0

    def test_source_snapshot_mutation_isolated(self):
        live = {"nested": {"x": 1}}
        reg = MetricsRegistry()
        reg.register_source("fake", lambda: live)
        snap = reg.snapshot()
        snap["sources"]["fake"]["nested"]["x"] = 99
        assert live["nested"]["x"] == 1

    def test_summary_renders(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(1.0)
        text = reg.summary()
        assert "counters" in text and "histograms" in text

    def test_empty_summary(self):
        assert MetricsRegistry().summary() == "no metrics recorded"


class TestGlobalRegistry:
    def test_legacy_namespaces_re_exported(self):
        sp_stats.reset()
        ag_stats.reset()
        res_counters.reset()
        sp_stats.record_op("sdd", sp_stats.PATH_GROUPED, flops=10)
        ag_stats.record_node()
        res_counters.increment("router_fallback")

        snap = registry().snapshot()
        assert snap["sources"]["sparse"]["ops"]["sdd"]["grouped"] == 1
        assert snap["sources"]["autograd"]["tape_nodes"] == 1
        assert snap["sources"]["resilience"]["router_fallback"] == 1

        sp_stats.reset()
        ag_stats.reset()
        res_counters.reset()

    def test_reset_propagates_to_sources(self):
        sp_stats.record_op("dsd", sp_stats.PATH_BLOCKED)
        registry().reset()
        assert sp_stats.snapshot()["ops"] == {}


class TestLegacySnapshotsDeepCopy:
    def test_sparse_snapshot_mutation_isolated(self):
        sp_stats.reset()
        sp_stats.record_op("sdd", sp_stats.PATH_GROUPED)
        snap = sp_stats.snapshot()
        snap["ops"]["sdd"]["grouped"] = 999
        snap["cache"]["hits"] = 999
        assert sp_stats.snapshot()["ops"]["sdd"]["grouped"] == 1
        assert sp_stats.snapshot()["cache"]["hits"] == 0
        sp_stats.reset()

    def test_autograd_snapshot_mutation_isolated(self):
        ag_stats.reset()
        ag_stats.record_fused("bias_gelu")
        snap = ag_stats.snapshot()
        snap["fused_calls"]["bias_gelu"] = 999
        snap["arena"]["hits"] = -1
        fresh = ag_stats.snapshot()
        assert fresh["fused_calls"]["bias_gelu"] == 1
        assert fresh["arena"]["hits"] >= 0
        ag_stats.reset()

    def test_grouped_fraction_optional_annotation(self):
        import inspect
        import typing

        sig = inspect.signature(sp_stats.grouped_fraction)
        hints = typing.get_type_hints(sp_stats.grouped_fraction)
        assert sig.parameters["op"].default is None
        assert hints["op"] == typing.Optional[str]

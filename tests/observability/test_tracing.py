"""The tracing core: nesting, paths, breakdowns, zero-overhead disabled."""

import tracemalloc

import pytest

from repro.observability.tracing import (
    Tracer,
    count,
    get_tracer,
    set_tracer,
    span,
    tracing,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    set_tracer(None)


class TestSpans:
    def test_paths_compose_by_nesting(self):
        t = Tracer()
        with t.span("step"):
            with t.span("forward"):
                with t.span("moe"):
                    with t.span("sdd"):
                        pass
        paths = [s.path for s in t.spans]
        assert paths == [
            "step/forward/moe/sdd",
            "step/forward/moe",
            "step/forward",
            "step",
        ]  # close order: children before parents

    def test_durations_nested_within_parent(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.spans
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert outer.duration >= inner.duration

    def test_args_recorded(self):
        t = Tracer()
        with t.span("step", {"step": 7}):
            pass
        assert t.spans[0].args == {"step": 7}

    def test_unbalanced_exit_raises(self):
        t = Tracer()
        a = t.open("a")
        t.open("b")
        with pytest.raises(RuntimeError, match="unbalanced"):
            t.close(a)

    def test_breakdown_sums_repeated_phases(self):
        t = Tracer()
        with t.span("step"):
            for _ in range(3):
                with t.span("forward"):
                    pass
            with t.span("backward"):
                pass
        root = t.last_root("step")
        bd = t.breakdown(root)
        assert set(bd) == {"forward", "backward"}
        assert bd["forward"] == pytest.approx(
            sum(s.duration for s in t.spans if s.name == "forward")
        )

    def test_last_root_and_roots(self):
        t = Tracer()
        for i in range(3):
            with t.span("step", {"step": i}):
                pass
        assert len(t.roots("step")) == 3
        assert t.last_root("step").args == {"step": 2}
        assert t.last_root("eval") is None

    def test_total_by_path(self):
        t = Tracer()
        with t.span("step"):
            with t.span("forward"):
                pass
        with t.span("forward"):  # different path: a root this time
            pass
        assert t.total("step/forward") > 0.0
        assert t.total("forward") > 0.0

    def test_reset_refuses_open_spans(self):
        t = Tracer()
        t.open("dangling")
        with pytest.raises(RuntimeError, match="open span"):
            t.reset()

    def test_reset_clears(self):
        t = Tracer()
        with t.span("a"):
            pass
        t.count("x")
        t.sample("g", 1.0)
        t.reset()
        assert t.spans == [] and t.event_counts == {}
        assert t.counter_samples == []


class TestGlobalHook:
    def test_disabled_records_nothing(self):
        assert get_tracer() is None
        with span("step"):
            with span("forward"):
                pass
        count("arena/acquire")
        # Nothing was installed, so nothing can have recorded anything.
        assert get_tracer() is None

    def test_enabled_records_through_module_hook(self):
        with tracing() as t:
            with span("step"):
                with span("forward"):
                    pass
            count("arena/acquire")
        assert [s.path for s in t.spans] == ["step/forward", "step"]
        assert t.event_counts == {"arena/acquire": 1}
        assert get_tracer() is None  # restored on exit

    def test_tracing_restores_previous_tracer(self):
        outer = Tracer()
        set_tracer(outer)
        with tracing() as inner:
            assert get_tracer() is inner
        assert get_tracer() is outer

    def test_disabled_span_allocates_nothing(self):
        """The disabled hook is one None check + a shared singleton."""
        assert get_tracer() is None
        # Warm up: interned name, bytecode caches.
        for _ in range(100):
            with span("hot"):
                pass
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(1000):
            with span("hot"):
                pass
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # A per-call allocation would show as >= 1000 * sizeof(smallest
        # object); allow only a constant sliver of interpreter noise.
        assert after - before < 256, (
            f"disabled span() path allocated {after - before} bytes over "
            "1000 calls"
        )

    def test_disabled_span_returns_shared_singleton(self):
        assert span("a") is span("b")

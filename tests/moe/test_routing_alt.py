"""Alternative routing algorithms (paper §7): balance guarantees and
compatibility with the dMoE layer."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import dMoE
from repro.moe import (
    BaseLayerRouter,
    ExpertChoiceRouter,
    HashRouter,
    SinkhornRouter,
    min_capacity_factor,
    sinkhorn,
)


class TestBaseLayerRouter:
    def test_perfectly_balanced(self, rng):
        r = BaseLayerRouter(8, 4, rng=0)
        res = r(Tensor(rng.standard_normal((24, 8)).astype(np.float32)))
        counts = np.bincount(res.expert_indices.reshape(-1), minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_balanced_with_remainder(self, rng):
        r = BaseLayerRouter(8, 4, rng=0)
        res = r(Tensor(rng.standard_normal((10, 8)).astype(np.float32)))
        counts = np.bincount(res.expert_indices.reshape(-1), minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_no_aux_loss_needed(self, rng):
        r = BaseLayerRouter(8, 4, rng=0)
        res = r(Tensor(rng.standard_normal((8, 8)).astype(np.float32)))
        assert res.aux_loss is None

    def test_maximizes_affinity_vs_random(self, rng):
        """The assignment's total score beats a random balanced one."""
        r = BaseLayerRouter(8, 4, rng=0)
        x = Tensor(rng.standard_normal((16, 8)).astype(np.float32))
        res = r(x)
        total = float(res.expert_weights.data.sum())
        random_assign = np.tile(np.arange(4), 4)
        rng.shuffle(random_assign)
        random_total = float(
            res.scores.data[np.arange(16), random_assign].sum()
        )
        assert total >= random_total - 1e-6

    def test_drives_dmoe_with_perfect_balance(self, rng):
        layer = dMoE(8, 16, 4, block_size=4, router=BaseLayerRouter(8, 4, rng=1), rng=2)
        out, aux = layer(Tensor(rng.standard_normal((20, 8)).astype(np.float32)))
        assert out.shape == (20, 8)
        cf = min_capacity_factor(layer.last_routing.expert_indices, 4)
        assert cf <= 1.0 + 1e-9

    def test_weights_differentiable(self, rng):
        r = BaseLayerRouter(8, 4, rng=0)
        res = r(Tensor(rng.standard_normal((8, 8)).astype(np.float32)))
        res.expert_weights.sum().backward()
        assert r.proj.weight.grad is not None

    def test_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            BaseLayerRouter(8, 4, rng=0)(
                Tensor(rng.standard_normal((2, 3, 8)).astype(np.float32))
            )


class TestSinkhorn:
    def test_marginals_converge(self, rng):
        scores = rng.random((32, 4)) + 1e-3
        plan = sinkhorn(scores, iterations=50)
        np.testing.assert_allclose(plan.sum(axis=1), 1.0, atol=1e-3)
        np.testing.assert_allclose(plan.sum(axis=0), 8.0, atol=1e-2)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            sinkhorn(np.ones(4))

    def test_router_improves_balance_over_greedy(self, rng):
        """Sinkhorn routing is more balanced than raw argmax routing."""
        x = rng.standard_normal((64, 8)).astype(np.float32)
        sk = SinkhornRouter(8, 4, rng=3)
        res = sk(Tensor(x))
        cf_sinkhorn = min_capacity_factor(res.expert_indices, 4)
        greedy = res.scores.data.argmax(axis=1)[:, None]
        cf_greedy = min_capacity_factor(greedy, 4)
        assert cf_sinkhorn <= cf_greedy + 1e-9

    def test_drives_dmoe(self, rng):
        layer = dMoE(8, 16, 4, block_size=4, router=SinkhornRouter(8, 4, rng=1), rng=2)
        out, _ = layer(Tensor(rng.standard_normal((16, 8)).astype(np.float32)))
        ((out * out).sum()).backward()
        assert layer.experts.w1.grad is not None

    def test_optional_aux_loss(self, rng):
        sk = SinkhornRouter(8, 4, load_balance_coef=0.1, rng=0)
        res = sk(Tensor(rng.standard_normal((16, 8)).astype(np.float32)))
        assert res.load_balancing_loss is not None


class TestHashRouter:
    def test_deterministic(self):
        h = HashRouter(8, seed=0)
        ids = np.arange(100)
        np.testing.assert_array_equal(h.assign(ids), h.assign(ids))

    def test_different_seeds_differ(self):
        ids = np.arange(100)
        a = HashRouter(8, seed=0).assign(ids)
        b = HashRouter(8, seed=1).assign(ids)
        assert not np.array_equal(a, b)

    def test_roughly_uniform_over_many_ids(self):
        h = HashRouter(8, seed=0)
        counts = np.bincount(h.assign(np.arange(80_000)), minlength=8)
        assert counts.min() > 0.8 * counts.mean()

    def test_forward_contract(self, rng):
        h = HashRouter(4, seed=0)
        res = h(Tensor(rng.standard_normal((10, 8)).astype(np.float32)), np.arange(10))
        assert res.expert_indices.shape == (10, 1)
        np.testing.assert_allclose(res.expert_weights.data, 1.0)

    def test_misaligned_ids_raise(self, rng):
        h = HashRouter(4, seed=0)
        with pytest.raises(ValueError):
            h(Tensor(rng.standard_normal((10, 8)).astype(np.float32)), np.arange(5))


class TestExpertChoice:
    def test_exact_balance_by_construction(self, rng):
        ec = ExpertChoiceRouter(8, 4, capacity_factor=1.0, rng=0)
        chosen, _ = ec.select(Tensor(rng.standard_normal((32, 8)).astype(np.float32)))
        assert chosen.shape == (4, 8)  # every expert exactly capacity slots

    def test_tokens_can_be_dropped_or_duplicated(self, rng):
        """The residual token-dropping the paper notes (§7)."""
        ec = ExpertChoiceRouter(8, 4, capacity_factor=1.0, rng=0)
        chosen, _ = ec.select(Tensor(rng.standard_normal((32, 8)).astype(np.float32)))
        cov = ec.coverage(chosen, 32)
        assert cov.sum() == 32  # slots conserved
        # Over random scores, some token is (almost surely) left out.
        assert (cov == 0).any() or (cov > 1).any()

    def test_capacity_factor_scales_slots(self, rng):
        ec = ExpertChoiceRouter(8, 4, capacity_factor=2.0, rng=0)
        chosen, _ = ec.select(Tensor(rng.standard_normal((32, 8)).astype(np.float32)))
        assert chosen.shape == (4, 16)

    def test_experts_pick_their_best_tokens(self, rng):
        ec = ExpertChoiceRouter(8, 2, capacity_factor=1.0, rng=0)
        x = Tensor(rng.standard_normal((8, 8)).astype(np.float32))
        chosen, scores = ec.select(x)
        for e in range(2):
            picked = scores.data[chosen[e], e]
            not_picked = np.delete(scores.data[:, e], chosen[e])
            assert picked.min() >= not_picked.max() - 1e-6

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.moe import DynamicCapacityMoELayer, ExpertWeights, MoELayer


class TestExpertWeights:
    def test_flat_views_share_storage_semantics(self, rng):
        e = ExpertWeights(4, 8, 16, rng=0)
        w1f = e.w1_flat()
        assert w1f.shape == (8, 4 * 16)
        # Column block j of the flat view is expert j's w1.
        np.testing.assert_allclose(w1f.data[:, :16], e.w1.data[0])
        w2f = e.w2_flat()
        assert w2f.shape == (4 * 16, 8)
        np.testing.assert_allclose(w2f.data[:16], e.w2.data[0])

    def test_flops_per_token(self):
        e = ExpertWeights(4, 8, 16, rng=0)
        assert e.flops_per_token() == 2 * 2 * 8 * 16


class TestMoELayer:
    def _layer(self, **kw):
        args = dict(
            hidden_size=8,
            ffn_hidden_size=16,
            num_experts=4,
            capacity_factor=1.0,
            rng=0,
        )
        args.update(kw)
        return MoELayer(**args)

    def test_output_shape_2d(self, rng):
        layer = self._layer()
        out, aux = layer(Tensor(rng.standard_normal((16, 8)).astype(np.float32)))
        assert out.shape == (16, 8)
        assert aux is not None

    def test_output_shape_3d(self, rng):
        layer = self._layer()
        out, _ = layer(Tensor(rng.standard_normal((2, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 8)

    def test_capacity_one_drops_under_imbalance(self, rng):
        layer = self._layer(capacity_factor=1.0, load_balance_coef=0.0)
        layer(Tensor(rng.standard_normal((64, 8)).astype(np.float32)))
        # A fresh random router is essentially never perfectly balanced.
        assert layer.last_plan.num_dropped > 0

    def test_higher_capacity_fewer_drops(self, rng):
        x = rng.standard_normal((64, 8)).astype(np.float32)
        drops = []
        for cf in (1.0, 1.5, 2.0, 8.0):
            layer = self._layer(capacity_factor=cf, rng=7)
            layer(Tensor(x.copy()))
            drops.append(layer.last_plan.num_dropped)
        assert drops[0] >= drops[1] >= drops[2] >= drops[3]
        assert drops[-1] == 0

    def test_dropped_tokens_zero_output(self, rng):
        layer = self._layer(capacity_factor=1.0, load_balance_coef=0.0)
        x = Tensor(rng.standard_normal((64, 8)).astype(np.float32))
        out, _ = layer(x)
        dropped_copies = layer.last_plan.dropped_copies
        if len(dropped_copies):
            token = dropped_copies[0] // layer.top_k  # top_k == 1
            np.testing.assert_array_equal(out.data[token], 0.0)

    def test_backward_reaches_experts_and_router(self, rng):
        layer = self._layer()
        out, aux = layer(Tensor(rng.standard_normal((32, 8)).astype(np.float32)))
        ((out * out).sum() + aux).backward()
        assert layer.experts.w1.grad is not None
        assert layer.experts.w2.grad is not None
        assert layer.router.proj.weight.grad is not None

    def test_moe_with_one_expert_equals_dense_mlp(self, rng):
        """num_experts=1, cf>=1 covers all tokens: the layer is an MLP
        scaled by the (constant 1.0) router weight."""
        layer = self._layer(num_experts=1, capacity_factor=1.0, load_balance_coef=0.0)
        x = rng.standard_normal((8, 8)).astype(np.float64)
        out, _ = layer(Tensor(x, dtype=np.float64))
        e = layer.experts
        act_in = x @ e.w1.data[0] + e.b1.data[0]
        gelu = 0.5 * act_in * (1 + np.tanh(np.sqrt(2 / np.pi) * (act_in + 0.044715 * act_in**3)))
        want = gelu @ e.w2.data[0] + e.b2.data[0]
        np.testing.assert_allclose(out.data, want, rtol=1e-6, atol=1e-8)


class TestDynamicCapacity:
    def test_never_drops(self, rng):
        layer = DynamicCapacityMoELayer(
            hidden_size=8, ffn_hidden_size=16, num_experts=4, rng=0
        )
        for _ in range(3):
            x = Tensor(rng.standard_normal((40, 8)).astype(np.float32))
            layer(x)
            assert layer.last_plan.num_dropped == 0

    def test_capacity_tracks_max_load(self, rng):
        layer = DynamicCapacityMoELayer(
            hidden_size=8, ffn_hidden_size=16, num_experts=4, rng=0
        )
        layer(Tensor(rng.standard_normal((40, 8)).astype(np.float32)))
        counts = np.bincount(
            layer.last_routing.expert_indices.reshape(-1), minlength=4
        )
        assert layer.last_dynamic_capacity == counts.max()

    def test_matches_fixed_moe_at_matching_capacity(self, rng):
        dyn = DynamicCapacityMoELayer(
            hidden_size=8, ffn_hidden_size=16, num_experts=4, rng=3,
            load_balance_coef=0.0,
        )
        x = rng.standard_normal((32, 8)).astype(np.float64)
        out_dyn, _ = dyn(Tensor(x.copy(), dtype=np.float64))
        fixed = MoELayer(
            hidden_size=8, ffn_hidden_size=16, num_experts=4,
            capacity_factor=100.0, rng=9, load_balance_coef=0.0,
        )
        fixed.load_state_dict(dyn.state_dict())
        out_fixed, _ = fixed(Tensor(x.copy(), dtype=np.float64))
        np.testing.assert_allclose(out_dyn.data, out_fixed.data, atol=1e-10)

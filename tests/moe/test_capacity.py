import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.moe import (
    dropped_token_count,
    expert_capacity,
    min_capacity_factor,
    padding_fraction,
    tokens_per_expert,
)


class TestExpertCapacity:
    def test_paper_formula(self):
        # expert_capacity = num_tokens / num_experts * capacity_factor
        assert expert_capacity(1024, 64, 1.0) == 16
        assert expert_capacity(1024, 64, 1.5) == 24
        assert expert_capacity(1024, 64, 2.0) == 32

    def test_top_k_scales_slots(self):
        assert expert_capacity(1024, 64, 1.0, top_k=2) == 32

    def test_rounds_up(self):
        assert expert_capacity(10, 3, 1.0) == 4

    def test_floor_at_one(self):
        assert expert_capacity(2, 64, 1.0) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expert_capacity(10, 0, 1.0)
        with pytest.raises(ValueError):
            expert_capacity(10, 4, 0.0)


class TestTokensPerExpert:
    def test_histogram(self):
        idx = np.array([[0], [1], [1], [3]])
        np.testing.assert_array_equal(tokens_per_expert(idx, 4), [1, 2, 0, 1])

    def test_top_k_counts_copies(self):
        idx = np.array([[0, 1], [0, 2]])
        np.testing.assert_array_equal(tokens_per_expert(idx, 3), [2, 1, 1])


class TestMinCapacityFactor:
    def test_uniform_is_one(self):
        idx = np.tile(np.arange(4), 4)[:, None]
        assert min_capacity_factor(idx, 4) == 1.0

    def test_all_to_one_expert(self):
        idx = np.zeros((16, 1), dtype=int)
        assert min_capacity_factor(idx, 4) == 4.0

    def test_empty(self):
        assert min_capacity_factor(np.zeros((0, 1), dtype=int), 4) == 1.0

    @given(st.integers(0, 2**31 - 1), st.integers(2, 8))
    def test_property_factor_avoids_drops(self, seed, experts):
        """Capacity at the dynamic factor never drops a token (Tutel)."""
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, experts, (32, 1))
        cf = min_capacity_factor(idx, experts)
        capacity = int(np.ceil(32 / experts * cf))
        assert dropped_token_count(idx, experts, capacity) == 0


class TestDropsAndPadding:
    def test_dropped_count(self):
        idx = np.array([[0]] * 5 + [[1]] * 1)
        assert dropped_token_count(idx, 2, 3) == 2

    def test_no_drops_at_high_capacity(self):
        idx = np.array([[0]] * 5)
        assert dropped_token_count(idx, 2, 5) == 0

    def test_padding_fraction(self):
        idx = np.array([[0]] * 2 + [[1]] * 4)
        # capacity 4: expert0 pads 2, expert1 pads 0 -> 2/8
        assert padding_fraction(idx, 2, 4) == 0.25

    def test_padding_zero_when_full(self):
        idx = np.array([[0]] * 4 + [[1]] * 4)
        assert padding_fraction(idx, 2, 4) == 0.0

    @given(st.integers(0, 2**31 - 1))
    def test_property_drop_plus_kept_conserved(self, seed):
        """Dropped + kept slots == routed slots for any assignment."""
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, 4, (20, 2))
        cap = int(rng.integers(1, 15))
        counts = tokens_per_expert(idx, 4)
        kept = np.minimum(counts, cap).sum()
        assert kept + dropped_token_count(idx, 4, cap) == idx.size

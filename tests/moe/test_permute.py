import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients
from repro.moe import (
    dropping_gather,
    dropping_scatter,
    make_dropping_plan,
    make_padded_plan,
    padded_gather,
    padded_scatter,
    round_up_counts,
)


class TestRoundUpCounts:
    def test_rounds_each(self):
        np.testing.assert_array_equal(
            round_up_counts(np.array([0, 1, 8, 9]), 8), [0, 8, 8, 16]
        )


class TestPaddedPlan:
    def test_groups_tokens_by_expert(self):
        idx = np.array([[1], [0], [1], [2]])
        plan = make_padded_plan(idx, 3, block_size=2)
        np.testing.assert_array_equal(plan.tokens_per_expert, [1, 2, 1])
        np.testing.assert_array_equal(plan.padded_tokens_per_expert, [2, 2, 2])
        # Expert 0 segment: token 1 then padding.
        np.testing.assert_array_equal(plan.gather_indices, [1, -1, 0, 2, 3, -1])

    def test_stable_order_within_expert(self):
        idx = np.array([[0], [0], [0]])
        plan = make_padded_plan(idx, 2, block_size=4)
        np.testing.assert_array_equal(plan.gather_indices[:3], [0, 1, 2])

    def test_top_k_copies(self):
        idx = np.array([[0, 1], [1, 0]])
        plan = make_padded_plan(idx, 2, block_size=2)
        np.testing.assert_array_equal(plan.tokens_per_expert, [2, 2])
        # copies: token0 slot0 -> e0 (copy 0); token1 slot1 -> e0 (copy 3).
        np.testing.assert_array_equal(plan.copy_indices[:2], [0, 3])

    def test_zero_token_expert_gets_no_blocks(self):
        idx = np.array([[0], [0]])
        plan = make_padded_plan(idx, 3, block_size=2)
        np.testing.assert_array_equal(plan.blocks_per_expert, [1, 0, 0])

    def test_1d_indices_accepted(self):
        plan = make_padded_plan(np.array([0, 1]), 2, block_size=2)
        assert plan.top_k == 1

    def test_out_of_range_expert_raises(self):
        with pytest.raises(ValueError):
            make_padded_plan(np.array([[5]]), 3, block_size=2)

    def test_padding_fraction(self):
        idx = np.array([[0]])
        plan = make_padded_plan(idx, 1, block_size=4)
        assert plan.padding_fraction == 0.75

    @given(st.integers(0, 2**31 - 1), st.integers(1, 3), st.sampled_from([1, 2, 4]))
    def test_property_every_copy_placed_exactly_once(self, seed, top_k, bs):
        """Dropless invariant: all T*top_k copies appear exactly once."""
        rng = np.random.default_rng(seed)
        T, E = 17, 5
        idx = np.stack(
            [rng.permutation(E)[:top_k] for _ in range(T)], axis=0
        )
        plan = make_padded_plan(idx, E, block_size=bs)
        copies = plan.copy_indices[plan.copy_indices >= 0]
        assert sorted(copies.tolist()) == list(range(T * top_k))
        # Padded sizes are block multiples.
        assert np.all(plan.padded_tokens_per_expert % bs == 0)
        # Each copy sits in its expert's segment.
        starts = np.concatenate([[0], np.cumsum(plan.padded_tokens_per_expert)])
        flat = idx.reshape(-1)
        for pos, c in enumerate(plan.copy_indices):
            if c >= 0:
                e = flat[c]
                assert starts[e] <= pos < starts[e + 1]


class TestPaddedGatherScatter:
    def test_gather_zero_pads(self, rng):
        idx = np.array([[0], [0], [1]])
        plan = make_padded_plan(idx, 2, block_size=4)
        x = rng.standard_normal((3, 5))
        out = padded_gather(Tensor(x, dtype=np.float64), plan).data
        assert out.shape == (8, 5)
        np.testing.assert_array_equal(out[2], 0.0)  # padding row

    def test_scatter_inverts_gather_with_unit_weights(self, rng):
        idx = np.array([[1], [0], [1], [1]])
        plan = make_padded_plan(idx, 2, block_size=2)
        x = rng.standard_normal((4, 3))
        xp = padded_gather(Tensor(x, dtype=np.float64), plan)
        w = Tensor(np.ones((4, 1)), dtype=np.float64)
        back = padded_scatter(xp, plan, w).data
        np.testing.assert_allclose(back, x)

    def test_scatter_weights_scale(self, rng):
        idx = np.array([[0], [1]])
        plan = make_padded_plan(idx, 2, block_size=2)
        x = rng.standard_normal((2, 3))
        xp = padded_gather(Tensor(x, dtype=np.float64), plan)
        w = Tensor(np.array([[0.5], [2.0]]), dtype=np.float64)
        back = padded_scatter(xp, plan, w).data
        np.testing.assert_allclose(back[0], 0.5 * x[0])
        np.testing.assert_allclose(back[1], 2.0 * x[1])

    def test_top_k_scatter_sums_weighted_copies(self, rng):
        idx = np.array([[0, 1]])
        plan = make_padded_plan(idx, 2, block_size=2)
        x = rng.standard_normal((1, 3))
        xp = padded_gather(Tensor(x, dtype=np.float64), plan)
        w = Tensor(np.array([[0.7, 0.3]]), dtype=np.float64)
        back = padded_scatter(xp, plan, w).data
        np.testing.assert_allclose(back[0], x[0])  # 0.7x + 0.3x

    def test_gradients_through_gather_scatter(self, rng):
        idx = np.array([[0, 1], [1, 0], [0, 1]])
        plan = make_padded_plan(idx, 2, block_size=2)
        x = rng.standard_normal((3, 4))
        w = rng.random((3, 2))

        def fn(x, w):
            xp = padded_gather(x, plan)
            return padded_scatter(xp * 2.0, plan, w)

        check_gradients(fn, [x, w])


class TestDroppingPlan:
    def test_earliest_tokens_keep_slots(self):
        idx = np.array([[0], [0], [0]])
        plan = make_dropping_plan(idx, 2, capacity=2)
        np.testing.assert_array_equal(plan.dispatch_tokens[0], [0, 1])
        assert plan.num_dropped == 1
        np.testing.assert_array_equal(plan.dropped_copies, [2])

    def test_no_drops_under_capacity(self):
        idx = np.array([[0], [1]])
        plan = make_dropping_plan(idx, 2, capacity=4)
        assert plan.num_dropped == 0
        assert plan.drop_fraction == 0.0

    def test_padding_slots_are_minus_one(self):
        idx = np.array([[0]])
        plan = make_dropping_plan(idx, 2, capacity=3)
        np.testing.assert_array_equal(plan.dispatch_tokens[0], [0, -1, -1])
        np.testing.assert_array_equal(plan.dispatch_tokens[1], [-1, -1, -1])

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_dropping_plan(np.array([[0]]), 1, capacity=0)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 8))
    def test_property_kept_conservation(self, seed, capacity):
        """Every copy is either dispatched once or dropped once."""
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, 3, (12, 2))
        plan = make_dropping_plan(idx, 3, capacity)
        dispatched = plan.dispatch_copies[plan.dispatch_copies >= 0]
        both = np.concatenate([dispatched, plan.dropped_copies])
        assert sorted(both.tolist()) == list(range(12 * 2))


class TestDroppingGatherScatter:
    def test_dropped_tokens_produce_zero_output(self, rng):
        idx = np.array([[0], [0], [0]])
        plan = make_dropping_plan(idx, 1, capacity=2)
        x = rng.standard_normal((3, 4))
        buf = dropping_gather(Tensor(x, dtype=np.float64), plan)
        w = Tensor(np.ones((3, 1)), dtype=np.float64)
        out = dropping_scatter(buf, plan, w).data
        np.testing.assert_allclose(out[:2], x[:2])
        np.testing.assert_array_equal(out[2], 0.0)  # dropped

    def test_gradients(self, rng):
        idx = np.array([[0], [1], [0], [1], [0]])
        plan = make_dropping_plan(idx, 2, capacity=2)
        x = rng.standard_normal((5, 3))
        w = rng.random((5, 1))

        def fn(x, w):
            return dropping_scatter(dropping_gather(x, plan) * 3.0, plan, w)

        check_gradients(fn, [x, w])

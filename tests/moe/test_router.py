import numpy as np
import pytest

from repro.autograd import Tensor
from repro.moe import Router, load_balancing_loss, router_z_loss, top_k_indices


class TestTopKIndices:
    def test_top1_is_argmax(self, rng):
        scores = rng.random((10, 6))
        np.testing.assert_array_equal(
            top_k_indices(scores, 1)[:, 0], scores.argmax(axis=1)
        )

    def test_topk_sorted_best_first(self, rng):
        scores = rng.random((5, 8))
        idx = top_k_indices(scores, 3)
        picked = scores[np.arange(5)[:, None], idx]
        assert np.all(np.diff(picked, axis=1) <= 0)

    def test_ties_break_to_lower_id(self):
        scores = np.array([[0.5, 0.5, 0.1]])
        assert top_k_indices(scores, 2).tolist() == [[0, 1]]

    def test_k_out_of_range(self, rng):
        with pytest.raises(ValueError):
            top_k_indices(rng.random((2, 4)), 5)
        with pytest.raises(ValueError):
            top_k_indices(rng.random((2, 4)), 0)

    def test_no_duplicate_experts_per_token(self, rng):
        idx = top_k_indices(rng.random((20, 6)), 4)
        for row in idx:
            assert len(set(row.tolist())) == 4


class TestLoadBalancingLoss:
    def test_uniform_assignment_gives_one(self):
        """Perfectly balanced scores + dispatch -> loss == 1 (the minimum)."""
        E, T = 4, 16
        scores = Tensor(np.full((T, E), 1.0 / E))
        indices = np.tile(np.arange(E), T // E)[:, None]
        loss = load_balancing_loss(scores, indices, E)
        assert abs(float(loss.data) - 1.0) < 1e-6

    def test_imbalance_increases_loss(self):
        E, T = 4, 16
        scores_data = np.full((T, E), 0.01)
        scores_data[:, 0] = 0.97
        indices = np.zeros((T, 1), dtype=int)
        loss = load_balancing_loss(Tensor(scores_data), indices, E)
        assert float(loss.data) > 1.5

    def test_gradient_flows_through_scores(self, rng):
        scores = Tensor(
            rng.random((8, 4)).astype(np.float64), requires_grad=True, dtype=np.float64
        )
        indices = rng.integers(0, 4, (8, 1))
        load_balancing_loss(scores, indices, 4).backward()
        assert scores.grad is not None


class TestRouterZLoss:
    def test_zero_logits_zero_loss(self):
        logits = Tensor(np.zeros((4, 3)))
        # logsumexp(0,0,0) = log 3 -> loss = (log 3)^2
        assert abs(float(router_z_loss(logits).data) - np.log(3) ** 2) < 1e-5

    def test_large_logits_penalized(self, rng):
        small = router_z_loss(Tensor(rng.standard_normal((4, 3))))
        big = router_z_loss(Tensor(10 + rng.standard_normal((4, 3))))
        assert float(big.data) > float(small.data)


class TestRouter:
    def _router(self, **kw):
        args = dict(hidden_size=8, num_experts=4, top_k=1, rng=0)
        args.update(kw)
        return Router(**args)

    def test_routing_result_shapes(self, rng):
        r = self._router(top_k=2)
        res = r(Tensor(rng.standard_normal((10, 8)).astype(np.float32)))
        assert res.expert_indices.shape == (10, 2)
        assert res.expert_weights.shape == (10, 2)
        assert res.scores.shape == (10, 4)

    def test_weights_are_selected_probabilities(self, rng):
        r = self._router(top_k=2)
        res = r(Tensor(rng.standard_normal((6, 8)).astype(np.float32)))
        rows = np.arange(6)[:, None]
        np.testing.assert_allclose(
            res.expert_weights.data, res.scores.data[rows, res.expert_indices]
        )

    def test_scores_rows_sum_to_one(self, rng):
        r = self._router()
        res = r(Tensor(rng.standard_normal((6, 8)).astype(np.float32)))
        np.testing.assert_allclose(res.scores.data.sum(axis=1), 1.0, rtol=1e-5)

    def test_aux_loss_composition(self, rng):
        r = self._router(load_balance_coef=0.1, z_loss_coef=0.01)
        res = r(Tensor(rng.standard_normal((6, 8)).astype(np.float32)))
        assert res.load_balancing_loss is not None
        assert res.z_loss is not None
        total = float(res.aux_loss.data)
        assert abs(
            total - float(res.load_balancing_loss.data) - float(res.z_loss.data)
        ) < 1e-6

    def test_aux_none_when_disabled(self, rng):
        r = self._router(load_balance_coef=0.0)
        res = r(Tensor(rng.standard_normal((6, 8)).astype(np.float32)))
        assert res.load_balancing_loss is None
        assert res.aux_loss is None

    def test_jitter_only_in_training(self, rng):
        r = self._router(jitter_eps=0.3, load_balance_coef=0.0)
        x = Tensor(rng.standard_normal((6, 8)).astype(np.float32))
        r.eval()
        a = r(x).scores.data
        b = r(x).scores.data
        np.testing.assert_array_equal(a, b)  # no jitter in eval

    def test_rejects_2d_violation(self, rng):
        r = self._router()
        with pytest.raises(ValueError):
            r(Tensor(rng.standard_normal((2, 3, 8)).astype(np.float32)))

    def test_invalid_top_k(self):
        with pytest.raises(ValueError):
            self._router(top_k=5)

    def test_router_weight_gets_gradient(self, rng):
        r = self._router(load_balance_coef=0.0)
        x = Tensor(rng.standard_normal((6, 8)).astype(np.float32))
        res = r(x)
        res.expert_weights.sum().backward()
        assert r.proj.weight.grad is not None


class TestRouterFallback:
    """Non-finite logits degrade to uniform routing, never NaN topology."""

    def _poisoned(self, **kw):
        args = dict(hidden_size=8, num_experts=4, top_k=1, rng=0)
        args.update(kw)
        r = Router(**args)
        r.proj.weight.data[0, 0] = np.nan
        return r

    def test_fallback_routes_uniformly(self, rng):
        from repro.resilience import counters

        counters.reset()
        r = self._poisoned()
        x = Tensor(rng.standard_normal((8, 8)).astype(np.float32))
        res = r(x)
        assert counters.get("router_fallback") == 1
        # Round-robin: every expert receives tokens, indices are valid.
        assert res.expert_indices.shape == (8, 1)
        assert set(res.expert_indices.reshape(-1)) == {0, 1, 2, 3}
        # Constant uniform weights, finite scores, no aux loss from garbage.
        np.testing.assert_allclose(res.expert_weights.data, 0.25)
        assert np.isfinite(res.scores.data).all()
        assert res.aux_loss is None

    def test_fallback_weights_normalized_for_top2(self, rng):
        r = self._poisoned(top_k=2, normalize_weights=True)
        res = r(Tensor(rng.standard_normal((6, 8)).astype(np.float32)))
        np.testing.assert_allclose(res.expert_weights.data.sum(axis=-1), 1.0)

    def test_fallback_does_not_train_router(self, rng):
        r = self._poisoned(load_balance_coef=0.0)
        res = r(Tensor(rng.standard_normal((6, 8)).astype(np.float32)))
        assert not res.expert_weights.requires_grad

    def test_healthy_router_does_not_fall_back(self, rng):
        from repro.resilience import counters

        counters.reset()
        r = Router(hidden_size=8, num_experts=4, rng=0)
        r(Tensor(rng.standard_normal((6, 8)).astype(np.float32)))
        assert counters.get("router_fallback") == 0

    def test_dmoe_forward_stays_finite_with_poisoned_router(self, rng):
        from repro.core import dMoE
        from repro.resilience import counters

        counters.reset()
        layer = dMoE(16, 32, num_experts=4, block_size=8, rng=0)
        layer.router.proj.weight.data[:] = np.inf
        x = Tensor(rng.standard_normal((12, 16)).astype(np.float32))
        out, aux = layer(x)
        assert np.isfinite(out.data).all()
        assert aux is None
        assert counters.get("router_fallback") == 1

"""Convolutional MoE (§2.3): grouped-conv expert computation."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.ops_conv import conv1d
from repro.moe.conv_moe import ConvExpertWeights, ConvMoELayer


class TestConvExpertWeights:
    def test_shapes(self):
        e = ConvExpertWeights(4, channels=3, hidden_channels=6, rng=0)
        assert e.w1.shape == (24, 3, 3)
        assert e.w2.shape == (12, 6, 3)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            ConvExpertWeights(2, 3, 4, kernel_size=2)


class TestConvMoELayer:
    def _layer(self, **kw):
        args = dict(
            channels=4, hidden_channels=8, num_experts=4,
            capacity_factor=2.0, rng=0,
        )
        args.update(kw)
        return ConvMoELayer(**args)

    def test_shape_preserved(self, rng):
        layer = self._layer()
        x = Tensor(rng.standard_normal((8, 4, 12)).astype(np.float32))
        out, aux = layer(x)
        assert out.shape == (8, 4, 12)
        assert aux is None

    def test_channel_mismatch_raises(self, rng):
        layer = self._layer()
        with pytest.raises(ValueError):
            layer(Tensor(rng.standard_normal((2, 3, 12)).astype(np.float32)))

    def test_grouped_conv_equals_per_expert_loop(self, rng):
        """The §2.3 equivalence at the layer level: replaying dispatched
        sequences through each expert's filters individually must match
        the single grouped-conv pass."""
        layer = self._layer(capacity_factor=4.0)
        x = rng.standard_normal((8, 4, 10))
        out, _ = layer(Tensor(x.copy(), dtype=np.float64))

        plan = layer.last_plan
        e = layer.experts
        pad = layer.kernel_size // 2
        want = np.zeros_like(x)
        act = lambda v: 0.5 * v * (
            1 + np.tanh(np.sqrt(2 / np.pi) * (v + 0.044715 * v**3))
        )
        # Recompute per sequence with its expert's weights directly.
        indices, weights = layer._route(Tensor(x.copy(), dtype=np.float64))
        for ex in range(4):
            w1 = e.w1.data[ex * 8 : (ex + 1) * 8].astype(np.float64)
            b1 = e.b1.data[ex * 8 : (ex + 1) * 8].astype(np.float64)
            w2 = e.w2.data[ex * 4 : (ex + 1) * 4].astype(np.float64)
            b2 = e.b2.data[ex * 4 : (ex + 1) * 4].astype(np.float64)
            for slot, token in enumerate(plan.dispatch_tokens[ex]):
                if token < 0:
                    continue
                xi = x[token : token + 1]
                h = conv1d(Tensor(xi, dtype=np.float64), Tensor(w1, dtype=np.float64),
                           Tensor(b1, dtype=np.float64), padding=pad).data
                y = conv1d(Tensor(act(h), dtype=np.float64), Tensor(w2, dtype=np.float64),
                           Tensor(b2, dtype=np.float64), padding=pad).data
                want[token] += float(weights.data[token, 0]) * y[0]
        np.testing.assert_allclose(out.data, want, atol=1e-8)

    def test_dropped_sequences_get_zero(self, rng):
        layer = self._layer(capacity_factor=0.5)
        x = Tensor(rng.standard_normal((8, 4, 10)).astype(np.float32))
        out, _ = layer(x)
        assert layer.last_plan.num_dropped > 0
        dropped = layer.last_plan.dropped_copies[0]  # top_k=1: copy==seq
        np.testing.assert_array_equal(out.data[dropped], 0.0)

    def test_backward_reaches_all_params(self, rng):
        layer = self._layer()
        x = Tensor(rng.standard_normal((8, 4, 10)).astype(np.float32))
        out, _ = layer(x)
        (out * out).sum().backward()
        missing = [n for n, p in layer.named_parameters() if p.grad is None]
        assert missing == []

    def test_trains(self, rng):
        from repro.training import Adam

        layer = self._layer(capacity_factor=4.0)
        opt = Adam(layer.parameters(), lr=3e-3)
        x = Tensor(rng.standard_normal((8, 4, 10)).astype(np.float32))
        tgt = Tensor(rng.standard_normal((8, 4, 10)).astype(np.float32) * 0.1)
        losses = []
        for _ in range(25):
            opt.zero_grad()
            out, _ = layer(x)
            diff = out - tgt
            loss = (diff * diff).mean()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]

import numpy as np
import pytest

from repro.moe.analysis import (
    BalanceTimeline,
    balance_timeline,
    dominant_domain_per_expert,
    expert_domain_counts,
    mutual_information,
    specialization_score,
)


class TestExpertDomainCounts:
    def test_basic_histogram(self):
        idx = np.array([[0], [1], [0]])
        dom = np.array([2, 0, 2])
        counts = expert_domain_counts(idx, dom, 2, 3)
        assert counts[0, 2] == 2 and counts[1, 0] == 1
        assert counts.sum() == 3

    def test_top_k_broadcasts_domain(self):
        idx = np.array([[0, 1]])
        counts = expert_domain_counts(idx, np.array([1]), 2, 2)
        assert counts[0, 1] == 1 and counts[1, 1] == 1

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            expert_domain_counts(np.array([[0]]), np.array([0, 1]), 1, 2)


class TestMutualInformation:
    def test_independent_is_zero(self):
        counts = np.full((4, 4), 25)
        assert mutual_information(counts) == pytest.approx(0.0, abs=1e-12)

    def test_perfect_specialization_is_log_n(self):
        counts = np.diag([10, 10, 10, 10])
        assert mutual_information(counts) == pytest.approx(np.log(4))

    def test_empty_counts(self):
        assert mutual_information(np.zeros((2, 2))) == 0.0

    def test_score_normalized(self):
        assert specialization_score(np.diag([5, 5, 5])) == pytest.approx(1.0)
        assert specialization_score(np.full((3, 3), 7)) == pytest.approx(0.0, abs=1e-9)

    def test_dominant_domains(self):
        counts = np.array([[5, 1], [0, 9]])
        np.testing.assert_array_equal(dominant_domain_per_expert(counts), [0, 1])


class TestBalanceTimeline:
    def _stats(self):
        class S:
            def __init__(self, step, cf):
                self.step = step
                self.max_dynamic_capacity_factor = cf

        return [S(0, 1.5), S(1, 2.0), S(2, 11.0), S(3, 1.8)]

    def test_mean_and_peak(self):
        tl = balance_timeline(self._stats())
        assert tl.peak == 11.0
        assert tl.mean == pytest.approx((1.5 + 2 + 11 + 1.8) / 4)

    def test_spike_detection(self):
        """Hwang et al.: factors spike unpredictably (observed up to 11)."""
        tl = balance_timeline(self._stats())
        np.testing.assert_array_equal(tl.spikes(10.0), [2])


class TestSpecializationEmergesInTraining:
    def test_trained_dmoe_specializes_on_domains(self):
        """After training on the multi-domain Pile, routing carries more
        domain information than at initialization."""
        from repro.autograd import no_grad
        from repro.core import dMoE
        from repro.data import LMDataset, PileConfig, SyntheticPile
        from repro.nn import TransformerLM
        from repro.training import Adam, Trainer, TrainerConfig
        from repro.utils.rng import seed_all

        seed_all(0)
        pile = SyntheticPile(
            PileConfig(vocab_size=64, num_domains=4, branching=4), seed=3
        )
        layer_holder = {}

        def factory(i):
            layer = dMoE(16, 32, 4, block_size=8, rng=50 + i)
            layer_holder[i] = layer
            return layer

        model = TransformerLM(64, 16, 1, 2, 16, ffn_factory=factory, rng=1)
        tokens, domains = pile.sample_sequences(96, 16, return_domains=True, rng=5)

        def measure():
            with no_grad():
                model(tokens)
            layer = layer_holder[0]
            idx = layer.last_routing.expert_indices
            dom = np.repeat(domains, 16)  # per-token domain labels
            return specialization_score(expert_domain_counts(idx, dom, 4, 4))

        before = measure()
        ds = LMDataset(pile.token_stream(30_000, 32), seq_len=16)
        train, val = ds.split(0.1)
        cfg = TrainerConfig(
            global_batch=8, micro_batch=8, max_steps=40, eval_every=0, log_every=0
        )
        Trainer(model, train, val, cfg, optimizer=Adam(model.parameters(), lr=3e-3)).train()
        after = measure()
        assert np.isfinite(before) and np.isfinite(after)
        assert after >= before - 0.02  # specialization does not collapse

"""Native-code lowering: ``backend="cc"`` must be invisible to training.

``TrainerConfig(backend="cc")`` compiles each captured step graph to
generated C (``repro.autograd.lower``) and installs the fused Adam and
grad-clip kernels.  Lowering is a pure dispatch optimization, so every
test here asserts **bit-identity** against the eager run — losses by
float equality, parameters and optimizer moments by ``array_equal`` —
across steady-state and GradScaler combinations, through guardrail
rewinds, and across a checkpoint/resume round trip.  The no-toolchain
path (``REPRO_NO_CC=1``) must degrade to plain replay with exactly one
warning and the fallback counter ticked.
"""

import numpy as np
import pytest

from repro.autograd import lower
from repro.autograd.lower import toolchain
from repro.observability import registry
from repro.resilience.faults import (
    NAN_GRAD,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    inject_faults,
)
from repro.resilience.guardrails import GuardrailConfig

from tests.integration.test_step_graph import (
    _assert_same,
    _fingerprint,
    _trainer,
)


@pytest.fixture(autouse=True)
def _lower_cache(tmp_path, monkeypatch):
    """Isolate the compile cache per test and re-probe the toolchain."""
    monkeypatch.setenv("REPRO_LOWER_CACHE", str(tmp_path / "lower-cache"))
    toolchain._reset_for_tests()
    yield
    toolchain._reset_for_tests()


needs_cc = pytest.mark.skipif(
    not lower.cc_available(), reason="no C toolchain in this environment"
)


@needs_cc
@pytest.mark.parametrize("use_scaler", [False, True], ids=["fp32", "scaler"])
@pytest.mark.parametrize("steady", [False, True], ids=["eager-alloc", "steady"])
class TestLoweredBitIdentity:
    def test_matches_eager_run(self, steady, use_scaler):
        eager = _trainer(False, steady=steady, use_scaler=use_scaler)
        ref = _fingerprint(eager, eager.train())

        reg = registry()
        before = reg.counter("lower_segment_fallbacks").value
        lowered = _trainer(
            True, steady=steady, use_scaler=use_scaler, backend="cc"
        )
        got = _fingerprint(lowered, lowered.train())

        _assert_same(ref, got)
        assert lowered.step_graph is not None
        assert lowered.step_graph._lowered is not None
        # Guards held: this workload's live shapes never left the plan.
        assert reg.counter("lower_segment_fallbacks").value == before


@needs_cc
class TestLoweredResilience:
    def test_guardrail_rewind_stays_bit_identical(self):
        """NaN-grad skips + snapshot rewind with lowering on must
        converge to the exact same state as the eager guardrail run
        (rewind drops the graph; the recapture re-lowers from cache)."""

        def run(backend):
            schedule = FaultSchedule(
                [FaultEvent(NAN_GRAD, step=2), FaultEvent(NAN_GRAD, step=3)]
            )
            guard = GuardrailConfig(max_consecutive_bad=2, snapshot_every=1)
            tr = _trainer(
                backend == "cc",
                steady=True,
                injector=FaultInjector(schedule),
                guardrails=guard,
                max_steps=6,
                eval_every=3,
                backend=backend,
            )
            with inject_faults(tr.fault_injector):
                hist = tr.train()
            assert tr.skipped_steps == 2
            assert tr.guard.rewinds >= 1
            return tr, hist

        eager_tr, eager_hist = run("eager")
        cc_tr, cc_hist = run("cc")
        _assert_same(
            _fingerprint(eager_tr, eager_hist), _fingerprint(cc_tr, cc_hist)
        )
        for p in cc_tr.model.parameters():
            assert np.isfinite(p.data).all()

    def test_checkpoint_roundtrip_mid_run(self, tmp_path):
        """save() mid-run + resume with backend="cc" reproduces the
        uninterrupted lowered run — and the eager run — bit for bit."""
        n, total = 2, 4

        def make(backend):
            return _trainer(
                backend == "cc",
                dropout_p=0.0,
                max_steps=total,
                eval_every=0,
                backend=backend,
            )

        eager = make("eager")
        eager.train()
        straight = make("cc")
        straight.train()

        first = make("cc")
        first.config.max_steps = n
        first.train()
        assert first.step_graph is not None
        path = str(tmp_path / "mid.npz")
        first.save(path, step=n)

        resumed = make("cc")
        resumed.fit(resume=path)

        want = {r.step: r.loss for r in straight.history.records}
        got = {r.step: r.loss for r in resumed.history.records}
        for step in range(n, total):
            assert got[step] == want[step], f"loss diverged at step {step}"
        for ref in (straight, eager):
            for a, b in zip(ref.model.parameters(), resumed.model.parameters()):
                np.testing.assert_array_equal(a.data, b.data)


class TestNoToolchain:
    def test_no_cc_matches_plain_replay(self, monkeypatch, caplog):
        """REPRO_NO_CC=1: backend="cc" must complete bit-identical to
        capture-only training, warn exactly once, and count the
        declined lowering."""
        monkeypatch.setenv("REPRO_NO_CC", "1")
        toolchain._reset_for_tests()

        replay = _trainer(True, steady=True)
        ref = _fingerprint(replay, replay.train())

        reg = registry()
        before = reg.counter("lower_toolchain_fallbacks").value
        with caplog.at_level("WARNING", logger="repro.autograd.lower.toolchain"):
            lowered = _trainer(True, steady=True, backend="cc")
            got = _fingerprint(lowered, lowered.train())

        _assert_same(ref, got)
        assert lowered.step_graph is not None
        assert lowered.step_graph._lowered is None  # never attached
        warnings = [
            r for r in caplog.records
            if "native lowering unavailable" in r.getMessage()
        ]
        assert len(warnings) == 1, "must warn exactly once"
        assert reg.counter("lower_toolchain_fallbacks").value > before

    def test_no_cc_gemm_moe_units_degrade_to_replay(self, monkeypatch, caplog):
        """The GEMM and MoE-dispatch units (linbias/mm/softmax, grouped
        sdd/dsd, router topk1/lbfrac/finite) must obey the same
        degradation contract as the original segments: the pure-Python
        segmenter still classifies them, attach declines with the single
        toolchain warning, and the replay math is untouched."""
        monkeypatch.setenv("REPRO_NO_CC", "1")
        toolchain._reset_for_tests()

        replay = _trainer(True, steady=True)
        ref = _fingerprint(replay, replay.train())

        with caplog.at_level("WARNING", logger="repro.autograd.lower.toolchain"):
            lowered = _trainer(True, steady=True, backend="cc")
            got = _fingerprint(lowered, lowered.train())

        _assert_same(ref, got)
        graph = lowered.step_graph
        assert graph is not None and graph._lowered is None

        # Classification is toolchain-independent: the units the native
        # path would have claimed are all visible to the segmenter.
        analysis = lower.analyze(graph, False)
        kinds = {getattr(u, "kind", None) for u in analysis.units}
        assert {"softmax", "topk1", "lbfrac", "finite"} <= kinds
        bwd_kinds = {entry[0] for entry in analysis.bwd.values()}
        assert "softmax2" in bwd_kinds
        from repro.autograd.lower import blas

        if blas.available():  # GEMM units need the sgemm symbol, not cc
            assert {"linbias", "mm", "sdd", "dsd"} <= kinds
            assert {"sdd", "dsd"} <= bwd_kinds

        warnings = [
            r for r in caplog.records
            if "native lowering unavailable" in r.getMessage()
        ]
        assert len(warnings) == 1, "must warn exactly once"

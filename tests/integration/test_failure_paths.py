"""Failure injection: corrupted inputs fail loudly, not silently."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential
from repro.training import Adam, load_checkpoint, save_checkpoint


class TestCheckpointFailures:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(str(tmp_path / "nope.npz"), Sequential(Linear(2, 2, rng=0)))

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "broken.npz"
        m = Sequential(Linear(2, 2, rng=0))
        save_checkpoint(str(path), m)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            load_checkpoint(str(path), Sequential(Linear(2, 2, rng=0)))

    def test_wrong_architecture_raises(self, tmp_path):
        path = str(tmp_path / "a.npz")
        save_checkpoint(path, Sequential(Linear(2, 2, rng=0)))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(path, Sequential(Linear(3, 3, rng=0)))


class TestShapeErrorsSurface:
    def test_dmoe_wrong_hidden_raises(self, rng):
        from repro.autograd import Tensor
        from repro.core import dMoE

        layer = dMoE(16, 32, 4, block_size=8, rng=0)
        with pytest.raises(Exception):
            layer(Tensor(rng.standard_normal((8, 17)).astype(np.float32)))

    def test_sparse_values_shape_enforced(self, rng):
        from repro.sparse import BlockSparseMatrix, Topology

        topo = Topology.dense(8, 8, 4)
        with pytest.raises(ValueError):
            BlockSparseMatrix(topo, np.zeros((topo.nnz_blocks, 4, 5)))

    def test_optimizer_handles_partial_graph(self, rng):
        """Parameters untouched by the loss simply keep grad None."""
        from repro.autograd import Tensor

        net = Sequential(Linear(4, 4, rng=0), Linear(4, 4, rng=1))
        opt = Adam(net.parameters(), lr=0.1)
        # Only the first layer participates.
        out = net.layers[0](Tensor(rng.standard_normal((2, 4)).astype(np.float32)))
        out.sum().backward()
        before = net.layers[1].weight.data.copy()
        opt.step()
        np.testing.assert_array_equal(net.layers[1].weight.data, before)

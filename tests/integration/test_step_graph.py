"""Captured step graphs: compiled replay must be invisible to training.

``TrainerConfig(capture=True)`` records the first micro batch of each
signature into a :class:`repro.autograd.StepGraph` and replays the
compiled op schedule on every matching step.  Replay is a pure dispatch
optimization, so every test here asserts **bit-identity** against the
eager run — losses by float equality, parameters and optimizer moments
by ``array_equal`` — across steady-state and GradScaler combinations,
through guardrail rewinds, and across a checkpoint/resume round trip.
Structural tests cover signature-change recapture, the double-backward
guard that capture's ``retain_graph`` hook relies on, and the memoized
per-topology dispatch metadata the replayed kernels lean on.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, stats as ag_stats
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.nn import TransformerLM
from repro.observability import registry, tracing
from repro.resilience.faults import (
    NAN_GRAD,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    inject_faults,
)
from repro.resilience.guardrails import GuardrailConfig
from repro.sparse import Topology, dispatch
from repro.sparse.ops import segment_meta
from repro.training import Adam, Trainer, TrainerConfig

STEPS = 4


def _trainer(
    capture,
    steady=False,
    use_scaler=False,
    injector=None,
    guardrails=None,
    dropout_p=0.1,
    max_steps=STEPS,
    eval_every=2,
    backend=None,
):
    from repro.core import dMoE

    pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=3, branching=4), seed=1)
    ds = LMDataset(pile.token_stream(6_000, 32), seq_len=16)
    train, val = ds.split(0.1)
    ffn = lambda i: dMoE(16, 32, num_experts=4, block_size=8, rng=i)
    model = TransformerLM(64, 16, 2, 2, 16, ffn_factory=ffn, dropout_p=dropout_p, rng=0)
    cfg = TrainerConfig(
        global_batch=8,
        micro_batch=4,
        max_steps=max_steps,
        eval_every=eval_every,
        eval_batches=2,
        log_every=1,
        guardrails=guardrails,
        steady_state=steady,
        use_grad_scaler=use_scaler,
        capture=capture,
        backend=backend,
    )
    return Trainer(
        model,
        train,
        val,
        cfg,
        optimizer=Adam(model.parameters(), lr=1e-3),
        rng=9,
        fault_injector=injector,
    )


def _counters():
    reg = registry()
    return {
        name: reg.counter(f"graph_{name}").value
        for name in ("captures", "replays", "fallbacks")
    }


def _fingerprint(tr, hist):
    return (
        [r.loss for r in hist.records],
        [r.val_loss for r in hist.records],
        [p.data.copy() for p in tr.optimizer.params],
        [m.copy() for m in tr.optimizer._m],
    )


def _assert_same(ref, got):
    assert ref[0] == got[0]  # float equality: bitwise, not approx
    assert ref[1] == got[1]
    for a, b in zip(ref[2], got[2]):
        np.testing.assert_array_equal(a, b)
    for a, b in zip(ref[3], got[3]):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("use_scaler", [False, True], ids=["fp32", "scaler"])
@pytest.mark.parametrize("steady", [False, True], ids=["eager-alloc", "steady"])
class TestReplayBitIdentity:
    def test_matches_eager_run(self, steady, use_scaler):
        eager = _trainer(False, steady=steady, use_scaler=use_scaler)
        ref = _fingerprint(eager, eager.train())

        before = _counters()
        captured = _trainer(True, steady=steady, use_scaler=use_scaler)
        got = _fingerprint(captured, captured.train())
        after = _counters()

        _assert_same(ref, got)
        # One capture (first micro batch), replays for the rest: 2 micro
        # batches per step x STEPS steps, minus the recorded one.
        assert after["captures"] - before["captures"] == 1
        assert after["replays"] - before["replays"] == 2 * STEPS - 1
        assert after["fallbacks"] == before["fallbacks"]
        assert captured.step_graph is not None


class TestReplayTelemetry:
    def test_tape_nodes_zero_on_replayed_steps(self):
        tr = _trainer(True, eval_every=0)
        hist = tr.train()
        nodes = [r.tape_nodes for r in hist.records if r.tape_nodes is not None]
        assert len(nodes) == STEPS
        assert nodes[0] > 0  # capture step builds a real tape
        assert all(n == 0 for n in nodes[1:])  # replays never touch it

    def test_replay_span_in_step_breakdown(self):
        tr = _trainer(True, eval_every=0, max_steps=2)
        with tracing():
            tr.train_step(0)
            assert "forward" in tr.last_phase_times  # capture step is eager
            tr.train_step(1)
            assert "replay" in tr.last_phase_times
            assert "forward" not in tr.last_phase_times


class TestRecapture:
    def test_micro_batch_shape_change_falls_back_and_recaptures(self):
        tr = _trainer(True, eval_every=0)
        tr.train_step(0)
        first_graph = tr.step_graph
        assert first_graph is not None

        before = _counters()
        tr._micro_batch_captured(tr._next_batch(2))  # micro batch 2 != 4
        after = _counters()
        assert after["fallbacks"] - before["fallbacks"] == 1
        assert after["captures"] - before["captures"] == 1
        assert tr.step_graph is not first_graph
        assert tr.step_graph.signature != first_graph.signature

    def test_guardrail_rewind_invalidates_and_stays_bit_identical(self):
        """NaN-grad skips + snapshot rewind with replay on must converge
        to the exact same state as the eager guardrail run."""

        def run(capture):
            schedule = FaultSchedule(
                [FaultEvent(NAN_GRAD, step=2), FaultEvent(NAN_GRAD, step=3)]
            )
            guard = GuardrailConfig(max_consecutive_bad=2, snapshot_every=1)
            tr = _trainer(
                capture,
                steady=True,
                injector=FaultInjector(schedule),
                guardrails=guard,
                max_steps=6,
                eval_every=3,
            )
            with inject_faults(tr.fault_injector):
                hist = tr.train()
            assert tr.skipped_steps == 2
            assert tr.guard.rewinds >= 1
            return tr, hist

        eager_tr, eager_hist = run(False)
        cap_tr, cap_hist = run(True)
        _assert_same(
            _fingerprint(eager_tr, eager_hist), _fingerprint(cap_tr, cap_hist)
        )
        for p in cap_tr.model.parameters():
            assert np.isfinite(p.data).all()


class TestResumeWithCapture:
    def test_checkpoint_roundtrip_mid_replay(self, tmp_path):
        """save() mid-run + fit(resume=...) with capture on reproduces the
        uninterrupted captured run — and the eager run — bit for bit.

        dropout_p=0 and eval_every=0 because per-module dropout RNGs and
        the trailing eval draw are not checkpointed (pre-existing; the
        repo's resume tests run the same way).
        """
        n, total = 2, 4

        def make(capture):
            return _trainer(capture, dropout_p=0.0, max_steps=total, eval_every=0)

        eager = make(False)
        eager.train()
        straight = make(True)
        straight.train()

        first = make(True)
        first.config.max_steps = n
        first.train()
        assert first.step_graph is not None
        path = str(tmp_path / "mid.npz")
        first.save(path, step=n)

        resumed = make(True)
        resumed.fit(resume=path)

        want = {r.step: r.loss for r in straight.history.records}
        got = {r.step: r.loss for r in resumed.history.records}
        for step in range(n, total):
            assert got[step] == want[step], f"loss diverged at step {step}"
        for ref in (straight, eager):
            for a, b in zip(ref.model.parameters(), resumed.model.parameters()):
                np.testing.assert_array_equal(a.data, b.data)
        for a, b in zip(straight.optimizer._m, resumed.optimizer._m):
            np.testing.assert_array_equal(a, b)
        assert straight.rng.random() == resumed.rng.random()

    def test_restore_drops_the_compiled_graph(self, tmp_path):
        tr = _trainer(True, dropout_p=0.0, max_steps=2, eval_every=0)
        tr.train()
        path = str(tmp_path / "ck.npz")
        tr.save(path, step=2)
        assert tr.step_graph is not None
        tr.restore(path)
        assert tr.step_graph is None  # replay never crosses a restore


class TestDoubleBackwardGuard:
    """Capture compiles the backward schedule from a still-intact tape
    via ``backward(retain_graph=True)``; without it a second walk reads
    contexts whose buffers may be back in the arena, so it must raise."""

    @staticmethod
    def _loss():
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((4, 4)).astype(np.float32), requires_grad=True)
        y = Tensor(rng.standard_normal((4, 4)).astype(np.float32), requires_grad=True)
        return x, y, ((x @ y) * x).sum()

    def test_second_backward_raises(self):
        x, _, loss = self._loss()
        loss.backward()
        with pytest.raises(RuntimeError, match="consumed|retain_graph"):
            loss.backward()

    def test_retain_graph_allows_and_accumulates(self):
        x, _, loss = self._loss()
        loss.backward(retain_graph=True)
        once = x.grad.copy()
        loss.backward()  # second walk over the retained tape
        np.testing.assert_allclose(x.grad, 2 * once, rtol=1e-6)


class TestDispatchMemoization:
    """Satellite: per-topology kernel metadata is computed once and then
    served from the topology instance on every subsequent kernel call."""

    @staticmethod
    def _topo():
        return Topology.block_diagonal(np.array([2, 1, 3]), np.array([2, 2, 2]), 8)

    def test_plan_groups_memoized_as_plain_ints(self):
        topo = self._topo()
        plan = dispatch.analyze(topo)
        assert plan is not None
        assert dispatch.analyze(topo) is plan  # stashed on the topology
        groups = plan.groups
        assert plan.groups is groups  # cached_property: built once
        assert groups == tuple(
            zip(
                plan.row_start.tolist(),
                plan.row_count.tolist(),
                plan.col_start.tolist(),
                plan.col_count.tolist(),
                plan.val_start.tolist(),
            )
        )
        for entry in groups:
            assert all(type(v) is int for v in entry)

    @pytest.mark.parametrize("transpose", [False, True], ids=["bcsr", "transpose"])
    def test_segment_meta_memoized_and_correct(self, transpose):
        topo = self._topo()
        meta = segment_meta(topo, transpose)
        assert segment_meta(topo, transpose) is meta
        offsets = topo.transpose_row_offsets if transpose else topo.row_offsets
        nonempty, starts = meta
        np.testing.assert_array_equal(
            nonempty, np.flatnonzero(np.diff(offsets) > 0)
        )
        np.testing.assert_array_equal(starts, offsets[nonempty])

    def test_segment_meta_orders_are_independent(self):
        topo = self._topo()
        assert segment_meta(topo, False) is not segment_meta(topo, True)

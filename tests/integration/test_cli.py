"""The training CLI: argument handling, short runs, checkpoint/resume."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.model == "XS" and args.system == "dmoe"

    def test_rejects_bad_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--system", "gshard"])

    def test_distributed_flags(self):
        args = build_parser().parse_args([])
        assert args.dp_world == 0 and args.dist_backend == "sim"
        args = build_parser().parse_args(
            ["--dp-world", "2", "--dist-backend", "mp"]
        )
        assert args.dp_world == 2 and args.dist_backend == "mp"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dist-backend", "nccl"])


class TestMain:
    COMMON = [
        "--scale", "0.05", "--steps", "3", "--vocab-size", "64",
        "--tokens", "8000", "--global-batch", "8", "--micro-batch", "4",
    ]

    def test_dense_run(self):
        assert main(["--system", "dense"] + self.COMMON) == 0

    def test_dmoe_run(self):
        assert main(["--system", "dmoe"] + self.COMMON) == 0

    def test_moe_with_capacity(self):
        assert main(
            ["--system", "moe", "--capacity-factor", "1.5"] + self.COMMON
        ) == 0

    def test_amp_flag(self):
        assert main(["--system", "dmoe", "--amp"] + self.COMMON) == 0

    @pytest.mark.parametrize("backend", ["sim", "mp"])
    def test_data_parallel_run(self, backend):
        """--dp-world routes the step through the sharded data-parallel
        path on either transport (mp forks real echo workers)."""
        assert main(
            ["--system", "dmoe", "--dp-world", "2",
             "--dist-backend", backend] + self.COMMON
        ) == 0

    def test_checkpoint_and_resume(self, tmp_path):
        ckpt = str(tmp_path / "run.npz")
        assert main(["--system", "dmoe", "--checkpoint", ckpt] + self.COMMON) == 0
        assert os.path.exists(ckpt)
        assert main(["--system", "dmoe", "--resume", ckpt] + self.COMMON) == 0


class TestLowerReport:
    COMMON = [
        "report", "--steps", "3", "--tokens", "8000",
        "--global-batch", "8", "--micro-batch", "4",
    ]

    def test_report_table(self, capsys):
        assert main(["lower"] + self.COMMON) == 0
        out = capsys.readouterr().out
        assert "lowering report" in out
        assert "replay records native" in out
        assert "host remainder" in out

    def test_report_json_structure(self, capsys):
        import json

        assert main(["lower"] + self.COMMON + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["records_total"] > 0
        assert 0.0 <= report["coverage"] <= 1.0
        assert report["records_lowered"] <= report["records_total"]
        # The segmenter's view is toolchain-independent; the plan only
        # attaches when cc is available.
        from repro.autograd import lower

        assert report["attached"] == lower.cc_available()
        assert isinstance(report["kernel_units"], dict)
        assert isinstance(report["host_records"], dict)

"""Elastic resume + async checkpointing, end to end through the Trainer.

The PR 7 acceptance contract:

- a run saved at world size N resumes at world size M (both directions)
  and at N *bit-identically* — losses, parameters, optimizer state, and
  RNG streams all match the uninterrupted run;
- checkpoints written by the async background writer are byte-identical
  to synchronous ones, and the write really happens off the training
  thread;
- a write killed mid-shard (injected ``TORN_WRITE`` fault) leaves a
  torn directory that direct loads reject and ``load_latest`` skips.
"""

import os
import threading

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointCorruptError,
    CheckpointManager,
    MANIFEST_NAME,
    load_checkpoint,
    save_checkpoint,
)
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.distributed import DeviceMesh
from repro.nn import TransformerLM
from repro.resilience import (
    TORN_WRITE,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
)
from repro.training import Adam, Trainer, TrainerConfig, WarmupCosineLR


def _trainer(max_steps, mesh=None, async_ckpt=False, fault_injector=None):
    pile = SyntheticPile(
        PileConfig(vocab_size=64, num_domains=3, branching=4), seed=1
    )
    ds = LMDataset(pile.token_stream(10_000, 32), seq_len=16)
    train, val = ds.split(0.1)
    from repro.core import dMoE

    ffn = lambda i: dMoE(16, 32, num_experts=4, block_size=8, rng=i)
    model = TransformerLM(64, 16, 2, 2, 16, ffn_factory=ffn, rng=0)
    cfg = TrainerConfig(
        global_batch=8,
        micro_batch=4,
        max_steps=max_steps,
        eval_every=0,
        log_every=1,
        async_checkpoint=async_ckpt,
    )
    return Trainer(
        model,
        train,
        val,
        cfg,
        optimizer=Adam(model.parameters(), lr=2e-3),
        schedule=WarmupCosineLR(2e-3, total_steps=max_steps, warmup_steps=2),
        rng=11,
        mesh=mesh,
        fault_injector=fault_injector,
    )


def _losses(history):
    return {r.step: r.loss for r in history.records}


def _dir_bytes(path):
    out = {}
    for root, _, files in os.walk(path):
        for f in files:
            p = os.path.join(root, f)
            out[os.path.relpath(p, path)] = open(p, "rb").read()
    return out


class TestElasticResume:
    @pytest.mark.parametrize("resume_world", [4, 2, 1], ids=["same", "shrink", "gather"])
    def test_resume_at_other_world_is_bit_exact(self, tmp_path, resume_world):
        """Train 3 + save at world 4 + resume at world M + train 3 ==
        train 6 straight, bit for bit."""
        n, total = 3, 6
        straight = _trainer(total, mesh=DeviceMesh(4, 4))
        straight.train()

        first = _trainer(total, mesh=DeviceMesh(4, 4))
        first.config.max_steps = n
        first.train()
        path = str(tmp_path / "elastic-ckpt")
        first.save(path, step=n)

        second = _trainer(total, mesh=DeviceMesh(resume_world, resume_world))
        hist = second.fit(resume=path)

        s, r = _losses(straight.history), _losses(hist)
        for step in range(n, total):
            assert s[step] == r[step], f"loss diverged at step {step}"
        for (n1, p1), (n2, p2) in zip(
            straight.model.named_parameters(), second.model.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=n1)
        for a, b in zip(straight.optimizer._m, second.optimizer._m):
            np.testing.assert_array_equal(a, b)
        assert (
            straight.rng.bit_generator.state == second.rng.bit_generator.state
        )

    def test_n_to_m_to_n_round_trip_is_identity(self, tmp_path):
        """Save at 4, load at 2, re-save at 2, load back at 4: every
        array bit-identical to the original."""
        t4 = _trainer(3, mesh=DeviceMesh(4, 4))
        t4.train()
        p4 = str(tmp_path / "at4")
        t4.save(p4, step=3)

        t2 = _trainer(3, mesh=DeviceMesh(2, 2))
        t2.restore(p4)
        p2 = str(tmp_path / "at2")
        t2.save(p2, step=3)

        t4b = _trainer(3, mesh=DeviceMesh(4, 4))
        t4b.restore(p2)
        for (n1, p1), (n2, p2_) in zip(
            t4.model.named_parameters(), t4b.model.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2_.data, err_msg=n1)
        for a, b in zip(t4.optimizer._m, t4b.optimizer._m):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(t4.optimizer._v, t4b.optimizer._v):
            np.testing.assert_array_equal(a, b)
        assert t4.rng.bit_generator.state == t4b.rng.bit_generator.state


class TestAsyncCheckpointing:
    def test_async_checkpoints_byte_identical_to_sync(self, tmp_path):
        mesh = DeviceMesh(4, 4)
        sync_t = _trainer(4, mesh=mesh)
        sync_mgr = CheckpointManager(
            str(tmp_path / "sync"), keep_last=5, fmt="sharded"
        )
        sync_t.fit(checkpoint_manager=sync_mgr, checkpoint_every=2)

        async_t = _trainer(4, mesh=mesh, async_ckpt=True)
        async_mgr = CheckpointManager(
            str(tmp_path / "async"), keep_last=5, fmt="sharded"
        )
        async_t.fit(checkpoint_manager=async_mgr, checkpoint_every=2)

        # Identical training on both sides...
        assert _losses(sync_t.history) == _losses(async_t.history)
        assert sync_mgr.steps == async_mgr.steps == [2, 4]
        # ...and identical bytes on disk, shard for shard.
        for step in (2, 4):
            a = _dir_bytes(sync_mgr.path_for(step))
            b = _dir_bytes(async_mgr.path_for(step))
            assert a.keys() == b.keys()
            for name in a:
                assert a[name] == b[name], f"step {step}: {name} differs"

        # The writes really overlapped training: they ran on the worker
        # thread, not the training thread.
        w = async_t.ckpt_writer
        assert w is not None and w.written == 2 and w.failed == 0
        assert w.worker_ident is not None
        assert w.worker_ident != threading.get_ident()

    def test_async_checkpoint_resumes_bit_exact(self, tmp_path):
        straight = _trainer(6, mesh=DeviceMesh(4, 4))
        straight.train()

        part = _trainer(6, mesh=DeviceMesh(4, 4), async_ckpt=True)
        part.config.max_steps = 4
        mgr = CheckpointManager(str(tmp_path / "run"), fmt="sharded")
        part.fit(checkpoint_manager=mgr, checkpoint_every=2)

        resumed = _trainer(6, mesh=DeviceMesh(4, 4))
        hist = resumed.fit(resume=mgr)
        s, r = _losses(straight.history), _losses(hist)
        for step in (4, 5):
            assert s[step] == r[step]


class TestTornWriteChaos:
    def test_sync_torn_write_falls_back_to_previous(self, tmp_path):
        """Kill the step-4 checkpoint write mid-shard (the synchronous
        path, so the kill is a hard crash at a known step): the step-2
        checkpoint must remain the recovery point."""
        from repro.resilience import CheckpointWriteFault

        schedule = FaultSchedule([FaultEvent(TORN_WRITE, step=3)])
        injector = FaultInjector(schedule)
        t = _trainer(4, mesh=DeviceMesh(4, 4), fault_injector=injector)
        mgr = CheckpointManager(str(tmp_path / "run"), fmt="sharded")
        with pytest.raises(CheckpointWriteFault):
            t.fit(checkpoint_manager=mgr, checkpoint_every=2)

        assert schedule.pending == 0, "the torn_write fault must have fired"
        # The torn directory exists (manifest never published) and was
        # never registered...
        torn = mgr.path_for(4)
        assert os.path.isdir(torn)
        assert not os.path.exists(os.path.join(torn, MANIFEST_NAME))
        assert mgr.steps == [2]
        # ...direct loads reject it...
        fresh = _trainer(4, mesh=DeviceMesh(4, 4))
        with pytest.raises(CheckpointCorruptError, match="torn"):
            load_checkpoint(torn, fresh.model, fresh.optimizer)
        # ...and the rebuilt manager (a restarted job) skips it: the
        # directory listing picks the torn dir up again, load_latest
        # falls back past it to step 2.
        os.remove(os.path.join(str(tmp_path / "run"), "index.json"))
        mgr2 = CheckpointManager(str(tmp_path / "run"), fmt="sharded")
        assert mgr2.steps == [2, 4]
        meta = mgr2.load_latest(fresh.model, fresh.optimizer)
        assert meta["step"] == 2

    def test_async_torn_write_is_surfaced_not_fatal(self, tmp_path):
        """The same kill on the background writer: training finishes,
        the failure is counted and surfaced, and the torn directory
        never enters the rotation."""
        schedule = FaultSchedule([FaultEvent(TORN_WRITE)])
        injector = FaultInjector(schedule)
        t = _trainer(4, mesh=DeviceMesh(4, 4), async_ckpt=True,
                     fault_injector=injector)
        mgr = CheckpointManager(str(tmp_path / "run"), fmt="sharded")
        hist = t.fit(checkpoint_manager=mgr, checkpoint_every=2)
        assert len(hist.records) > 0, "training must complete"

        w = t.ckpt_writer
        assert w.failed == 1 and w.written == 1
        assert schedule.pending == 0
        # The first write died torn and was never registered; the second
        # landed, so recovery resumes from step 4.
        torn = mgr.path_for(2)
        assert os.path.isdir(torn)
        assert not os.path.exists(os.path.join(torn, MANIFEST_NAME))
        assert mgr.steps == [4]
        fresh = _trainer(4, mesh=DeviceMesh(4, 4))
        assert mgr.load_latest(fresh.model, fresh.optimizer)["step"] == 4

    def test_mid_write_kill_leaves_earlier_shards(self, tmp_path):
        """An op-targeted fault dies *mid-stream*: shards written before
        the kill exist on disk, the manifest does not."""
        t = _trainer(2, mesh=DeviceMesh(4, 4))
        t.train()
        state = t._build_save_state(step=2)
        victim_key = list(state.arrays)[5]
        schedule = FaultSchedule([FaultEvent(TORN_WRITE, op=victim_key)])
        injector = FaultInjector(schedule)
        from repro.resilience import CheckpointWriteFault
        from repro.checkpoint import write_state

        path = str(tmp_path / "torn")
        with pytest.raises(CheckpointWriteFault):
            write_state(path, state, fault_hook=injector.checkpoint_fault)
        shards = os.listdir(os.path.join(path, "shards"))
        assert len(shards) > 0, "earlier shards must have landed"
        assert not os.path.exists(os.path.join(path, MANIFEST_NAME))
        with pytest.raises(CheckpointCorruptError, match="torn"):
            load_checkpoint(path, t.model, t.optimizer)


class TestCliInspect:
    def test_ckpt_inspect_smoke(self, tmp_path, capsys):
        from repro import cli

        t = _trainer(2, mesh=DeviceMesh(4, 4))
        t.train()
        path = str(tmp_path / "ckpt-dir")
        t.save(path, step=2)
        assert cli.main(["ckpt", "inspect", path, "--verify", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "format_version=3" in out
        assert "world=4" in out
        assert "verify: OK" in out
        assert "crc32=" in out

    def test_ckpt_inspect_rejects_torn(self, tmp_path, capsys):
        from repro import cli

        t = _trainer(2, mesh=DeviceMesh(4, 4))
        path = str(tmp_path / "ckpt-dir")
        t.save(path, step=2)
        os.remove(os.path.join(path, MANIFEST_NAME))
        assert cli.main(["ckpt", "inspect", path]) == 1
        assert "torn" in capsys.readouterr().err

    def test_ckpt_migrate_smoke(self, tmp_path, capsys):
        from repro import cli

        t = _trainer(2, mesh=DeviceMesh(4, 4))
        src = str(tmp_path / "old.npz")
        save_checkpoint(src, t.model, t.optimizer, step=2)
        dst = str(tmp_path / "new-dir")
        assert cli.main(["ckpt", "migrate", src, dst]) == 0
        fresh = _trainer(2, mesh=DeviceMesh(4, 4))
        meta = load_checkpoint(dst, fresh.model, fresh.optimizer)
        assert meta["step"] == 2
        for p1, p2 in zip(t.model.parameters(), fresh.model.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

"""Cross-feature compositions: the extensions must work *together*."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import VariableSizedDMoE, dMoE
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.moe import BaseLayerRouter, SinkhornRouter
from repro.nn import TransformerLM
from repro.nn.sparse_attention import BlockSparseCausalSelfAttention
from repro.training import Adam, Trainer, TrainerConfig
from repro.utils.rng import seed_all


def _data():
    pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=4), seed=3)
    return LMDataset(pile.token_stream(10_000, 32), seq_len=16).split(0.1)


class TestVariableExpertsInTransformer:
    def test_lm_with_variable_experts_trains(self):
        seed_all(0)
        train, val = _data()
        model = TransformerLM(
            64, 16, 1, 2, 16,
            ffn_factory=lambda i: VariableSizedDMoE(
                16, [8, 16, 24, 32], block_size=8, rng=10 + i
            ),
            rng=0,
        )
        cfg = TrainerConfig(global_batch=8, micro_batch=4, max_steps=10,
                            eval_every=0, log_every=5)
        hist = Trainer(model, train, val, cfg,
                       optimizer=Adam(model.parameters(), lr=3e-3)).train()
        assert hist.records[-1].loss < hist.records[0].loss


class TestAlternativeRoutersInTransformer:
    @pytest.mark.parametrize(
        "router_cls", [BaseLayerRouter, SinkhornRouter], ids=["base", "sinkhorn"]
    )
    def test_lm_with_alt_router_trains(self, router_cls):
        seed_all(0)
        train, val = _data()
        model = TransformerLM(
            64, 16, 1, 2, 16,
            ffn_factory=lambda i: dMoE(
                16, 32, 4, block_size=8, rng=10 + i,
                router=router_cls(16, 4, rng=20 + i),
            ),
            rng=0,
        )
        cfg = TrainerConfig(global_batch=8, micro_batch=4, max_steps=8,
                            eval_every=0, log_every=4)
        hist = Trainer(model, train, val, cfg,
                       optimizer=Adam(model.parameters(), lr=3e-3)).train()
        assert np.isfinite(hist.losses).all()


class TestSparseAttentionWithDMoE:
    def test_fully_block_sparse_transformer(self):
        """Both halves of the block — attention AND experts — running on
        the block-sparse kernels, trained end to end."""
        seed_all(0)
        train, val = _data()
        model = TransformerLM(
            64, 16, 1, 2, 16,
            ffn_factory=lambda i: dMoE(16, 32, 4, block_size=8, rng=10 + i),
            rng=0,
        )
        for block in model.blocks:
            block.attn = BlockSparseCausalSelfAttention(
                16, 2, block_size=8, window_blocks=2, rng=5
            )
        cfg = TrainerConfig(global_batch=8, micro_batch=4, max_steps=10,
                            eval_every=0, log_every=5)
        hist = Trainer(model, train, val, cfg,
                       optimizer=Adam(model.parameters(), lr=3e-3)).train()
        assert hist.records[-1].loss < hist.records[0].loss


class TestCheckpointWithMoE:
    def test_dmoe_checkpoint_roundtrip(self, tmp_path):
        from repro.training import load_checkpoint, save_checkpoint

        seed_all(0)
        a = dMoE(16, 32, 4, block_size=8, rng=0)
        path = str(tmp_path / "dmoe.npz")
        save_checkpoint(path, a, step=1)
        b = dMoE(16, 32, 4, block_size=8, rng=99)
        load_checkpoint(path, b)
        x = Tensor(np.random.default_rng(1).standard_normal((16, 16)), dtype=np.float64)
        out_a, _ = a(x)
        out_b, _ = b(x)
        np.testing.assert_allclose(out_a.data, out_b.data, atol=1e-12)


class TestAmpWithDMoE:
    def test_dmoe_trains_under_grad_scaler(self):
        seed_all(0)
        train, val = _data()
        model = TransformerLM(
            64, 16, 1, 2, 16,
            ffn_factory=lambda i: dMoE(16, 32, 4, block_size=8, rng=10 + i),
            rng=0,
        )
        cfg = TrainerConfig(global_batch=8, micro_batch=4, max_steps=10,
                            eval_every=0, log_every=5, use_grad_scaler=True)
        tr = Trainer(model, train, val, cfg,
                     optimizer=Adam(model.parameters(), lr=3e-3))
        hist = tr.train()
        assert tr.skipped_steps == 0
        assert hist.records[-1].loss < hist.records[0].loss

"""Tier-1 chaos smoke test: dMoE training survives a seeded fault schedule.

A tiny dMoE model trains under fault injection — one NaN-gradient step
and one (transient) collective failure in the simulated data-parallel
all-reduce.  The guardrails skip the poisoned step, the retry policy
recovers the collective, and the run must finish with a finite final
loss close to the fault-free run's.
"""

import numpy as np
import pytest

from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.nn import TransformerLM
from repro.resilience import counters
from repro.resilience.faults import (
    NAN_GRAD,
    RANK_FAILURE,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    RetryPolicy,
    inject_faults,
)
from repro.resilience.guardrails import GuardrailConfig
from repro.training import Adam, Trainer, TrainerConfig

STEPS = 10
NAN_STEP = 3
FAIL_STEP = 6


def _trainer(injector=None):
    from repro.core import dMoE

    pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=3, branching=4), seed=1)
    ds = LMDataset(pile.token_stream(8_000, 32), seq_len=16)
    train, val = ds.split(0.1)
    ffn = lambda i: dMoE(16, 32, num_experts=4, block_size=8, rng=i)
    model = TransformerLM(64, 16, 2, 2, 16, ffn_factory=ffn, rng=0)
    cfg = TrainerConfig(
        global_batch=4,
        micro_batch=4,
        max_steps=STEPS,
        eval_every=0,
        log_every=1,
        guardrails=GuardrailConfig(max_consecutive_bad=3),
        dp_world=2,  # gradients round-trip through all_reduce each step
    )
    return Trainer(
        model,
        train,
        val,
        cfg,
        optimizer=Adam(model.parameters(), lr=1e-3),
        rng=9,
        fault_injector=injector,
    )


class TestChaosSmoke:
    def test_seeded_chaos_run_recovers_and_converges(self):
        counters.reset()
        # Baseline: identical seeds, no faults.
        clean = _trainer()
        clean_hist = clean.train()
        clean_final = clean_hist.records[-1].loss

        # Chaos: 1 NaN-gradient step + 1 transient collective failure
        # (fails twice, recovered on the third attempt by the policy).
        schedule = FaultSchedule(
            [
                FaultEvent(NAN_GRAD, step=NAN_STEP),
                FaultEvent(RANK_FAILURE, step=FAIL_STEP, op="all_reduce", count=2),
            ]
        )
        policy = RetryPolicy(max_retries=3)
        injector = FaultInjector(schedule, policy=policy)
        chaos = _trainer(injector)
        with inject_faults(injector):
            chaos_hist = chaos.train()
        chaos_final = chaos_hist.records[-1].loss

        # Both faults fired and both recovery paths ran.
        assert schedule.pending == 0
        assert counters.get("injected_nan_grad") == 1
        assert counters.get("injected_rank_failure") == 2
        assert policy.retries == 2, "collective failure was not retried"
        assert chaos.skipped_steps == 1, "NaN step was not skipped"
        assert chaos.guard.bad_steps == 1

        # The run completed: finite loss, finite parameters, and close
        # to the fault-free trajectory (one skipped update of tolerance).
        assert np.isfinite(chaos_final)
        for p in chaos.model.parameters():
            assert np.isfinite(p.data).all()
        assert np.isfinite([r.loss for r in chaos_hist.records]).all()
        assert chaos_final == pytest.approx(clean_final, rel=0.15)
        # Training still made progress under chaos.
        assert chaos_final < chaos_hist.records[0].loss

    def test_permanent_collective_failure_is_skipped_not_fatal(self):
        """A failure outlasting the retry budget degrades to a skipped
        step instead of killing the run."""
        counters.reset()
        schedule = FaultSchedule(
            [FaultEvent(RANK_FAILURE, step=2, op="all_reduce", count=10)]
        )
        injector = FaultInjector(schedule, policy=RetryPolicy(max_retries=2))
        tr = _trainer(injector)
        with inject_faults(injector):
            hist = tr.train()
        assert counters.get("guardrail_collective_fault") >= 1
        assert np.isfinite(hist.records[-1].loss)
        for p in tr.model.parameters():
            assert np.isfinite(p.data).all()

"""Traced-training smoke: the observability layer's three contracts at
integration scale (see ``docs/observability.md``).

1. **Tracing is free**: a traced run and an untraced run from the same
   seed produce bit-identical losses and final parameters — spans read
   ``time.perf_counter`` only, never RNG or tensor data.
2. **The breakdown is complete**: every training step's ``phase_times``
   sum to within 10% of its ``step_time``.
3. **Disabled means off**: with no tracer installed the hooks record
   nothing and the step still surfaces ``step_time``.
"""

import numpy as np
import pytest

from repro.core import dMoE
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.nn import TransformerLM
from repro.observability.export import chrome_trace, validate_chrome_trace
from repro.observability.tracing import Tracer, get_tracer, tracing
from repro.training import Adam, Trainer, TrainerConfig
from repro.utils.rng import seed_all

VOCAB = 64
HID = 16
SEQ = 16
STEPS = 4


def _data():
    pile = SyntheticPile(
        PileConfig(vocab_size=VOCAB, num_domains=4, branching=4), seed=11
    )
    ds = LMDataset(pile.token_stream(12_000, 32), seq_len=SEQ)
    return ds.split(0.1)


def _train(tracer=None):
    seed_all(0)
    model = TransformerLM(
        VOCAB, HID, num_layers=2, num_heads=2, max_seq_len=SEQ,
        ffn_factory=lambda i: dMoE(HID, 32, 4, block_size=8, rng=i),
        rng=0,
    )
    train, val = _data()
    cfg = TrainerConfig(
        global_batch=8, micro_batch=4, max_steps=STEPS,
        eval_every=0, log_every=1,
    )
    tr = Trainer(model, train, val, cfg, optimizer=Adam(model.parameters(), lr=3e-3))
    if tracer is None:
        hist = tr.train()
    else:
        with tracing(tracer):
            hist = tr.train()
    params = [p.data.copy() for p in model.parameters()]
    return hist, params


@pytest.fixture(scope="module")
def runs():
    plain_hist, plain_params = _train()
    tracer = Tracer()
    traced_hist, traced_params = _train(tracer)
    return plain_hist, plain_params, traced_hist, traced_params, tracer


class TestTracingIsFree:
    def test_bit_identical_losses(self, runs):
        plain_hist, _, traced_hist, _, _ = runs
        assert list(plain_hist.losses) == list(traced_hist.losses)

    def test_bit_identical_parameters(self, runs):
        _, plain_params, _, traced_params, _ = runs
        assert len(plain_params) == len(traced_params)
        for a, b in zip(plain_params, traced_params):
            assert np.array_equal(a, b)


class TestBreakdown:
    def test_one_root_span_per_step(self, runs):
        *_, tracer = runs
        steps = tracer.roots("step")
        assert len(steps) == STEPS >= 3
        assert [s.args["step"] for s in steps] == list(range(STEPS))

    def test_phase_times_cover_step_time(self, runs):
        _, _, traced_hist, _, _ = runs
        step_records = [r for r in traced_hist.records if r.step < STEPS]
        assert len(step_records) == STEPS
        for rec in step_records:
            assert rec.step_time is not None and rec.phase_times
            covered = sum(rec.phase_times.values())
            assert covered <= rec.step_time * (1 + 1e-6)
            assert covered > 0.9 * rec.step_time, (
                f"step {rec.step}: phases cover only "
                f"{covered / rec.step_time * 100:.1f}% of the step"
            )

    def test_expected_phases_present(self, runs):
        _, _, traced_hist, _, _ = runs
        phases = set(traced_hist.records[0].phase_times)
        assert {"forward", "backward", "optimizer"} <= phases

    def test_moe_spans_nested_under_forward(self, runs):
        *_, tracer = runs
        step_moe = [
            s for s in tracer.spans
            if s.name == "moe" and s.path.startswith("step/")
        ]
        assert step_moe
        assert all(s.path == "step/forward/moe" for s in step_moe)
        assert tracer.total("step/forward/moe/route") > 0.0
        # The closing evaluation traces too, under its own root.
        assert tracer.total("eval/moe") > 0.0

    def test_chrome_export_schema_valid(self, runs):
        *_, tracer = runs
        events = validate_chrome_trace(chrome_trace(tracer))
        assert len(events) == len(tracer.spans)


class TestDisabledIsOff:
    def test_untraced_run_recorded_no_spans(self, runs):
        # The plain run in the fixture executed with no tracer installed;
        # a fresh tracer installed *after* it must stay empty.
        assert get_tracer() is None
        t = Tracer()
        assert t.spans == [] and t.event_counts == {}

    def test_untraced_records_still_have_step_time(self, runs):
        plain_hist, *_ = runs
        step_records = [r for r in plain_hist.records if r.step < STEPS]
        assert all(r.step_time is not None for r in step_records)
        assert all(r.phase_times is None for r in step_records)

"""The report generator runs end to end and embeds the key results."""

import os

from repro.report import generate_report, main


class TestReport:
    def test_contains_all_sections(self):
        report = generate_report()
        for section in (
            "Table 1",
            "Table 2",
            "Table 3",
            "Figure 4",
            "Figure 7",
            "Figure 9",
            "Ablations",
        ):
            assert section in report

    def test_table_values_present(self):
        report = generate_report()
        assert "45.7" in report  # XS weights
        assert "13048.7" in report  # dMoE-Medium weights

    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "out.md")
        assert main([path]) == 0
        assert os.path.exists(path)
        with open(path) as f:
            assert f.read().startswith("# MegaBlocks reproduction report")

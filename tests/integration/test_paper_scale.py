"""Paper-exact dimensions: one forward pass of a full-size dMoE layer.

Everything else in the suite runs scaled-down; this test proves the
implementation handles the *actual* dMoE-XS layer dimensions (hidden
512, 64 experts of ffn 2048, 128x128 blocks, a 1024-token micro batch)
and that the topology matches the paper's arithmetic.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core import dMoE
from repro.utils.rng import seed_all


class TestPaperScaleDMoE:
    def test_full_size_xs_layer_forward(self):
        seed_all(0)
        layer = dMoE(
            hidden_size=512,
            ffn_hidden_size=2048,
            num_experts=64,
            block_size=128,  # the paper's block size
            rng=0,
        )
        layer.eval()
        x = Tensor(
            np.random.default_rng(1).standard_normal((1024, 512)).astype(np.float32)
        )
        with no_grad():
            out, aux = layer(x)
        assert out.shape == (1024, 512)
        assert np.isfinite(out.data).all()

        topo = layer.last_topology
        topo.validate()
        # ffn 2048 / 128 = 16 block columns per expert; 64 experts.
        assert topo.shape[1] == 64 * 2048
        assert topo.block_cols == 64 * 16
        # Every routed token sits in some expert's padded group.
        plan = layer.last_plan
        assert plan.tokens_per_expert.sum() == 1024
        assert np.all(plan.padded_tokens_per_expert % 128 == 0)
        # Block padding overhead at 1024 tokens over 64 experts is large
        # (most experts round up to one full block) — the regime where
        # the paper expects thousands of tokens per expert instead.
        assert topo.nnz_blocks == plan.blocks_per_expert.sum() * 16

"""Tier-1 equivalence smoke for the zero-allocation steady-state step.

The buffer arena and fused elementwise ops are pure performance features:
a small dMoE trained for N steps with ``steady_state=True`` must produce
**bit-identical** losses and parameters to the reference run with the
flag off.  A second test drives the guardrail rewind path (NaN-gradient
fault, snapshot restore) with the arena enabled, since rewind touches
pooled gradient buffers.
"""

import numpy as np

from repro.autograd import get_arena
from repro.autograd import stats as ag_stats
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.nn import TransformerLM
from repro.resilience.faults import (
    NAN_GRAD,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    inject_faults,
)
from repro.resilience.guardrails import GuardrailConfig
from repro.training import Adam, Trainer, TrainerConfig

STEPS = 6


def _trainer(steady, injector=None, guardrails=None, dropout_p=0.1):
    from repro.core import dMoE

    pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=3, branching=4), seed=1)
    ds = LMDataset(pile.token_stream(6_000, 32), seq_len=16)
    train, val = ds.split(0.1)
    ffn = lambda i: dMoE(16, 32, num_experts=4, block_size=8, rng=i)
    model = TransformerLM(64, 16, 2, 2, 16, ffn_factory=ffn, dropout_p=dropout_p, rng=0)
    cfg = TrainerConfig(
        global_batch=8,
        micro_batch=4,
        max_steps=STEPS,
        eval_every=3,
        eval_batches=2,
        log_every=1,
        guardrails=guardrails,
        steady_state=steady,
    )
    return Trainer(
        model,
        train,
        val,
        cfg,
        optimizer=Adam(model.parameters(), lr=1e-3),
        rng=9,
        fault_injector=injector,
    )


class TestSteadyStateEquivalence:
    def test_bit_identical_losses_and_params(self):
        results = {}
        for steady in (False, True):
            tr = _trainer(steady)
            hist = tr.train()
            results[steady] = (
                [r.loss for r in hist.records],
                [r.val_loss for r in hist.records],
                [p.data.copy() for p in tr.optimizer.params],
                [m.copy() for m in tr.optimizer._m],
            )

        loss_off, val_off, params_off, m_off = results[False]
        loss_on, val_on, params_on, m_on = results[True]
        assert loss_off == loss_on  # float equality: bitwise, not approx
        assert val_off == val_on
        for a, b in zip(params_off, params_on):
            assert np.array_equal(a, b)
        for a, b in zip(m_off, m_on):
            assert np.array_equal(a, b)

    def test_telemetry_reports_fusion_and_reuse(self):
        tr = _trainer(True)
        hist = tr.train()
        recs = [r for r in hist.records if r.tape_nodes is not None]
        assert recs, "steady-state run logged no telemetry"
        last = recs[-1]
        assert last.tape_nodes > 0
        assert last.nodes_fused > 0  # fused ops actually dispatched
        assert last.arena_hit_rate is not None
        # After warmup the pool serves essentially every fixed-shape
        # request; cumulative hit rate over a short run is still high.
        assert last.arena_hit_rate > 0.5
        ref = _trainer(False).train()
        ref_last = [r for r in ref.records if r.tape_nodes is not None][-1]
        assert last.tape_nodes < ref_last.tape_nodes  # shorter tape

    def test_rewind_roundtrip_with_arena(self):
        """Guardrail skip + snapshot rewind must work on pooled buffers."""
        schedule = FaultSchedule(
            [FaultEvent(NAN_GRAD, step=2), FaultEvent(NAN_GRAD, step=3)]
        )
        injector = FaultInjector(schedule)
        guard = GuardrailConfig(max_consecutive_bad=2, snapshot_every=1)
        tr = _trainer(True, injector=injector, guardrails=guard)
        with inject_faults(injector):
            hist = tr.train()
        assert tr.skipped_steps == 2
        assert tr.guard.rewinds >= 1
        assert np.isfinite(hist.records[-1].loss)
        for p in tr.model.parameters():
            assert np.isfinite(p.data).all()

    def test_arena_pool_is_bounded(self):
        """Generations retire buffers: the pool stops growing after the
        shapes stabilize instead of accumulating per-step garbage."""
        tr = _trainer(True, dropout_p=0.0)
        ar = get_arena()
        tr.train_step(0)
        tr.train_step(1)
        bytes_after_warmup = ar.pooled_bytes
        for step in range(2, STEPS):
            tr.train_step(step)
        assert ar.pooled_bytes == bytes_after_warmup
        assert ag_stats.tape_nodes > 0

"""Benchmark smoke canaries: run the Fig-7 / Fig-9 benchmarks at tiny
sizes inside tier-1 pytest.

The full benchmark sweeps under ``benchmarks/`` take minutes and are not
collected by tier-1 (``testpaths = tests``), so a kernel regression that
only manifests on the benchmark code paths — the dispatch layer, the
step-time model, the end-to-end dMoE training loop — would otherwise go
unnoticed until someone runs the sweep.  These tests import the
benchmark modules with ``REPRO_BENCH_SMOKE=1`` (the same switch as
``pytest --smoke`` in the benchmarks suite) and execute each test
function with a stub ``benchmark`` fixture that just calls through.
"""

import importlib
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")


class _PassthroughBenchmark:
    """Minimal stand-in for the pytest-benchmark fixture: one plain call."""

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
        return fn(*args, **(kwargs or {}))


@pytest.fixture(scope="module")
def bench(request):
    """Import benchmark modules in smoke mode, restoring state afterwards."""
    os.environ["REPRO_BENCH_SMOKE"] = "1"
    sys.path.insert(0, BENCH_DIR)
    # Benchmark modules must see the smoke flag at import time; drop any
    # previously imported copies (and the harness run caches with them).
    stale = [
        m
        for m in sys.modules
        if m.startswith(
            (
                "harness",
                "test_fig",
                "test_step",
                "test_ckpt",
                "test_serving",
                "test_dist",
            )
        )
    ]
    for m in stale:
        del sys.modules[m]

    def load(name):
        return importlib.import_module(name)

    yield load
    sys.path.remove(BENCH_DIR)
    os.environ.pop("REPRO_BENCH_SMOKE", None)
    for m in [
        m
        for m in sys.modules
        if m.startswith(
            (
                "harness",
                "test_fig",
                "test_step",
                "test_ckpt",
                "test_serving",
                "test_dist",
            )
        )
    ]:
        del sys.modules[m]


def test_fig9_modeled_relative_throughput_smoke(bench):
    mod = bench("test_fig9_blocksparse_throughput")
    mod.test_fig9_modeled_relative_throughput(_PassthroughBenchmark())


def test_fig9_wallclock_kernels_smoke(bench):
    mod = bench("test_fig9_blocksparse_throughput")
    mod.test_fig9_wallclock_numpy_kernels(_PassthroughBenchmark())


def test_fig9_grouped_vs_blocked_smoke(bench):
    mod = bench("test_fig9_blocksparse_throughput")
    assert mod.SMOKE
    mod.test_fig9_wallclock_grouped_vs_blocked(_PassthroughBenchmark())


def test_fig7_step_time_model_smoke(bench):
    mod = bench("test_fig7_e2e_dmoe")
    mod.test_fig7_tutel_speedups(_PassthroughBenchmark())


def test_fig7_quality_training_smoke(bench):
    mod = bench("test_fig7_e2e_dmoe")
    assert mod.STEPS <= 10, "smoke mode must shrink the training sweep"
    mod.test_fig7_dmoe_vs_dense_quality_speedup(_PassthroughBenchmark())


def test_step_memory_smoke(bench):
    """Steady-state step benchmark: bit-identical losses and the
    allocation-reduction floor must hold at smoke sizes."""
    mod = bench("test_step_memory")
    assert mod.SMOKE
    mod.test_step_latency_and_allocations(_PassthroughBenchmark())


def test_step_replay_smoke(bench):
    """Captured-step-graph benchmark: replay must be bit-identical,
    tape-free on replayed steps, and faster than the interleaved eager
    run; emits BENCH_replay.json."""
    mod = bench("test_step_replay")
    assert mod.SMOKE
    mod.test_step_replay(_PassthroughBenchmark())
    out = os.path.join(BENCH_DIR, "BENCH_replay.json")
    assert os.path.exists(out)


def test_step_lower_smoke(bench):
    """Native-lowering benchmark: generated-C execution must stay
    bit-identical to eager and replay, cover >= 90% of the replay
    records (grouped-GEMM, dense-GEMM, and router kernels included),
    hold the load-compensated speedup floors over both the PR 5 replay
    interpreter and PR 6's lowered path, and emit BENCH_lower.json."""
    mod = bench("test_step_lower")
    assert mod.SMOKE
    mod.test_step_lower(_PassthroughBenchmark())
    out = os.path.join(BENCH_DIR, "BENCH_lower.json")
    assert os.path.exists(out)


def test_ckpt_stream_smoke(bench):
    """Streaming checkpoint benchmark: async checkpoints must be
    byte-identical to synchronous ones, written off the training thread,
    with losses bit-equal; emits BENCH_ckpt.json with the measured
    step-boundary stall delta."""
    mod = bench("test_ckpt_stream")
    assert mod.SMOKE
    mod.test_ckpt_stream(_PassthroughBenchmark())
    out = os.path.join(BENCH_DIR, "BENCH_ckpt.json")
    assert os.path.exists(out)


def test_serving_smoke(bench):
    """Serving benchmark: KV-cached decode must emit the same greedy
    tokens as the uncached baseline at >= the tokens/s speedup floor,
    the scheduler must drain a mixed-length stream with ordered latency
    percentiles, and int8 experts must hold the byte-ratio and
    perplexity-delta bounds; emits BENCH_serving.json."""
    mod = bench("test_serving")
    assert mod.SMOKE
    mod.test_serving(_PassthroughBenchmark())
    out = os.path.join(BENCH_DIR, "BENCH_serving.json")
    assert os.path.exists(out)


def test_dist_overlap_smoke(bench):
    """Comm–compute overlap benchmark over real forked ranks: the
    overlapped dispatch must be bit-identical to the serialized one and
    hide the straggler's token-exchange wait behind the local plan
    build; emits BENCH_dist.json."""
    mod = bench("test_dist_overlap")
    assert mod.SMOKE
    mod.test_dist_overlap(_PassthroughBenchmark())
    out = os.path.join(BENCH_DIR, "BENCH_dist.json")
    assert os.path.exists(out)


def test_step_trace_smoke(bench):
    """Traced step benchmark: emits BENCH_trace.json with the per-phase
    breakdown and asserts the Chrome-trace exporter produces schema-valid
    JSON (ph/ts/dur on every complete event, strictly nested spans) while
    leaving losses and parameters bit-identical."""
    mod = bench("test_step_trace")
    assert mod.SMOKE
    mod.test_traced_step_breakdown(_PassthroughBenchmark())
    out = os.path.join(BENCH_DIR, "BENCH_trace.json")
    assert os.path.exists(out)

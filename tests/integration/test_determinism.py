"""Whole-pipeline determinism: identical seeds give identical runs.

Reproducibility is a release requirement — the EXPERIMENTS.md numbers
must be regenerable bit-for-bit on the same platform.
"""

import numpy as np
import pytest

from repro.core import dMoE
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.nn import TransformerLM
from repro.training import Adam, Trainer, TrainerConfig
from repro.utils.rng import seed_all


def _run(seed: int):
    seed_all(seed)
    pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=4), seed=3)
    train, val = LMDataset(pile.token_stream(10_000, 32), seq_len=16).split(0.1)
    model = TransformerLM(
        64, 16, 1, 2, 16,
        ffn_factory=lambda i: dMoE(16, 32, 4, block_size=8, rng=10 + i),
        rng=0,
    )
    cfg = TrainerConfig(global_batch=8, micro_batch=4, max_steps=8,
                        eval_every=4, log_every=2)
    trainer = Trainer(model, train, val, cfg,
                      optimizer=Adam(model.parameters(), lr=3e-3), rng=seed)
    hist = trainer.train()
    return hist.losses, model.state_dict()


class TestDeterminism:
    def test_identical_seed_identical_run(self):
        losses_a, state_a = _run(5)
        losses_b, state_b = _run(5)
        np.testing.assert_array_equal(losses_a, losses_b)
        for k in state_a:
            np.testing.assert_array_equal(state_a[k], state_b[k])

    def test_different_seed_differs(self):
        losses_a, _ = _run(5)
        losses_b, _ = _run(6)
        assert not np.array_equal(losses_a, losses_b)

    def test_data_generation_platform_stable(self):
        """Pin a few generated tokens so silent generator changes fail."""
        pile = SyntheticPile(PileConfig(vocab_size=64, num_domains=4), seed=3)
        stream = pile.token_stream(8, seq_len=8)
        assert stream.shape == (8,)
        assert stream.min() >= 0 and stream.max() < 64
        # Re-generation is identical.
        np.testing.assert_array_equal(
            stream,
            SyntheticPile(PileConfig(vocab_size=64, num_domains=4), seed=3)
            .token_stream(8, seq_len=8),
        )

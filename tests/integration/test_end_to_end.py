"""End-to-end integration: full training runs with each MoE formulation
on the synthetic Pile, and the cross-system equivalences the paper's
claims rest on."""

import numpy as np
import pytest

from repro.core import dMoE
from repro.data import LMDataset, PileConfig, SyntheticPile
from repro.moe import DynamicCapacityMoELayer, MoELayer
from repro.nn import TransformerLM
from repro.training import Adam, Trainer, TrainerConfig
from repro.utils.rng import seed_all

VOCAB = 64
HID = 16
SEQ = 16


def _data():
    pile = SyntheticPile(
        PileConfig(vocab_size=VOCAB, num_domains=4, branching=4), seed=11
    )
    ds = LMDataset(pile.token_stream(16_000, 32), seq_len=SEQ)
    return ds.split(0.1)


def _model(ffn_factory=None, seed=0):
    return TransformerLM(
        VOCAB, HID, num_layers=2, num_heads=2, max_seq_len=SEQ,
        ffn_factory=ffn_factory, rng=seed,
    )


def _run(model, steps=20, lr=3e-3):
    train, val = _data()
    cfg = TrainerConfig(
        global_batch=8, micro_batch=4, max_steps=steps, eval_every=steps, log_every=5
    )
    tr = Trainer(model, train, val, cfg, optimizer=Adam(model.parameters(), lr=lr))
    return tr.train(), tr


class TestDenseTraining:
    def test_loss_drops_toward_structure(self):
        hist, _ = _run(_model(), steps=30)
        start = hist.records[0].loss
        final = hist.final_val_loss()
        assert start > 0.9 * np.log(VOCAB)
        assert final < start - 0.8  # substantial learning


class TestMoETrainingAllFormulations:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda i: dMoE(HID, 32, 4, block_size=8, rng=i),
            lambda i: MoELayer(HID, 32, 4, capacity_factor=1.0, rng=i),
            lambda i: DynamicCapacityMoELayer(
                hidden_size=HID, ffn_hidden_size=32, num_experts=4, rng=i
            ),
        ],
        ids=["megablocks-dmoe", "dropping-cf1", "tutel-dynamic"],
    )
    def test_trains_and_improves(self, factory):
        seed_all(0)
        hist, _ = _run(_model(ffn_factory=factory), steps=20)
        assert hist.records[-1].loss < hist.records[0].loss
        assert np.isfinite(hist.losses).all()

    def test_dmoe_routing_stats_reported(self):
        seed_all(0)
        model = _model(ffn_factory=lambda i: dMoE(HID, 32, 4, block_size=8, rng=i))
        _, tr = _run(model, steps=6)
        assert len(tr.routing_stats) == 6


class TestFormulationEquivalence:
    """The central correctness claim at training scale: dMoE and the
    dynamic-capacity (dropless padding) formulation are the same function,
    so identical initialization + data must give identical training."""

    def test_identical_first_step_losses(self):
        seed_all(0)
        dmoe_model = _model(
            ffn_factory=lambda i: dMoE(
                HID, 32, 4, block_size=8, rng=100 + i, load_balance_coef=0.01
            ),
            seed=5,
        )
        seed_all(0)
        dyn_model = _model(
            ffn_factory=lambda i: DynamicCapacityMoELayer(
                hidden_size=HID, ffn_hidden_size=32, num_experts=4,
                rng=200 + i, load_balance_coef=0.01,
            ),
            seed=5,
        )
        dyn_model.load_state_dict(dmoe_model.state_dict())

        train, _ = _data()
        batch = next(train.iter_batches(4, shuffle=False))
        l1, _, _ = dmoe_model.loss(batch.inputs, batch.targets)
        l2, _, _ = dyn_model.loss(batch.inputs, batch.targets)
        assert float(l1.data) == pytest.approx(float(l2.data), abs=1e-5)

    def test_identical_gradients_through_full_model(self):
        seed_all(0)
        dmoe_model = _model(
            ffn_factory=lambda i: dMoE(HID, 32, 4, block_size=8, rng=i), seed=5
        )
        seed_all(0)
        dyn_model = _model(
            ffn_factory=lambda i: DynamicCapacityMoELayer(
                hidden_size=HID, ffn_hidden_size=32, num_experts=4, rng=50 + i
            ),
            seed=5,
        )
        dyn_model.load_state_dict(dmoe_model.state_dict())
        train, _ = _data()
        batch = next(train.iter_batches(4, shuffle=False))
        for m in (dmoe_model, dyn_model):
            loss, _, _ = m.loss(batch.inputs, batch.targets)
            loss.backward()
        g1 = dict(dmoe_model.named_parameters())
        g2 = dict(dyn_model.named_parameters())
        for name in g1:
            np.testing.assert_allclose(
                g1[name].grad, g2[name].grad, atol=1e-4, err_msg=name
            )


class TestCapacityFactorQualityOrdering:
    """Figure 2's shape at micro scale: dropping tokens hurts.

    A cf=1 (heavy dropping) model should reach a higher loss than the
    dropless dMoE under identical budgets.  Short runs are noisy, so the
    assertion is on the relaxed invariant that the dMoE is no worse.
    """

    def test_dropless_no_worse_than_heavy_dropping(self):
        seed_all(0)
        drop_model = _model(
            ffn_factory=lambda i: MoELayer(
                HID, 32, 4, capacity_factor=0.5, rng=i, load_balance_coef=0.01
            ),
            seed=9,
        )
        hist_drop, tr_drop = _run(drop_model, steps=30)
        # Confirm the cf=0.5 model actually drops a lot.
        drops = [
            m.last_plan.drop_fraction
            for m in drop_model.modules()
            if hasattr(m, "last_plan") and m.last_plan is not None
        ]
        assert max(drops) > 0.2

        seed_all(0)
        dmoe_model = _model(
            ffn_factory=lambda i: dMoE(
                HID, 32, 4, block_size=8, rng=i, load_balance_coef=0.01
            ),
            seed=9,
        )
        hist_dmoe, _ = _run(dmoe_model, steps=30)
        assert hist_dmoe.final_val_loss() <= hist_drop.final_val_loss() + 0.05

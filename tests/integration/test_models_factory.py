import numpy as np
import pytest

from repro.configs import TABLE1
from repro.core import dMoE
from repro.models import build_model, scaled_config
from repro.moe import DynamicCapacityMoELayer, MoELayer


class TestScaledConfig:
    def test_full_scale_is_table1(self):
        assert scaled_config("XS", 1.0) is TABLE1["XS"]

    def test_scaled_dims_shrink(self):
        cfg = scaled_config("Small", 1 / 16)
        base = TABLE1["Small"]
        assert cfg.hidden_size < base.hidden_size
        assert cfg.num_layers <= base.num_layers
        assert cfg.hidden_size % cfg.head_size == 0

    def test_invalid_name_and_scale(self):
        with pytest.raises(ValueError):
            scaled_config("XXL")
        with pytest.raises(ValueError):
            scaled_config("XS", 0.0)

    def test_vocab_override(self):
        assert scaled_config("XS", 1 / 8, vocab_size=100).vocab_size == 100


class TestBuildModel:
    def _ffn_types(self, model):
        return {type(b.ffn).__name__ for b in model.blocks}

    def test_dense(self):
        m = build_model("XS", "dense", scale=1 / 16, rng=0)
        assert self._ffn_types(m) == {"MLP"}

    def test_dmoe(self):
        m = build_model("XS", "dmoe", scale=1 / 16, rng=0)
        assert self._ffn_types(m) == {"dMoE"}

    def test_tutel(self):
        m = build_model("XS", "tutel-dmoe", scale=1 / 16, rng=0)
        assert self._ffn_types(m) == {"DynamicCapacityMoELayer"}

    def test_moe(self):
        m = build_model("XS", "moe", scale=1 / 16, capacity_factor=1.5, rng=0)
        assert self._ffn_types(m) == {"MoELayer"}
        ffn = m.blocks[0].ffn
        assert isinstance(ffn, MoELayer)
        assert ffn.capacity_factor == 1.5

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            build_model("XS", "gshard")

    def test_block_size_divides_ffn(self):
        m = build_model("XS", "dmoe", scale=1 / 16, rng=0)
        ffn = m.blocks[0].ffn
        assert isinstance(ffn, dMoE)
        assert ffn.ffn_hidden_size % ffn.block_size == 0

    def test_scaled_model_runs(self):
        m = build_model("XS", "dmoe", scale=1 / 16, vocab_size=64, rng=0)
        ids = np.random.default_rng(0).integers(0, 64, (2, 16))
        out = m(ids)
        assert out.logits.shape[0] == 2
        assert out.aux_loss is not None

    def test_full_scale_dims_match_paper(self):
        """scale=1 builds the paper's exact dMoE-XS (structure only)."""
        m = build_model("XS", "dmoe", scale=1.0, rng=0)
        assert m.hidden_size == 512
        assert len(m.blocks) == 6
        ffn = m.blocks[0].ffn
        assert ffn.num_experts == 64
        assert ffn.block_size == 128
        assert ffn.ffn_hidden_size == 2048
